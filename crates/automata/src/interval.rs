//! Sets of time intervals over the delay axis `[0, ∞)`.
//!
//! Guards and invariants of linear-hybrid SLIM models induce, for a fixed
//! state, a set of *delays* `d ≥ 0` at which a transition is enabled (or an
//! invariant satisfied). Because the dynamics are linear and guards are
//! Boolean combinations of linear inequalities, these sets are finite unions
//! of intervals with open/closed endpoints — exactly what [`IntervalSet`]
//! represents.
//!
//! The simulator's strategies pick delays out of these sets: ASAP takes the
//! earliest point, MaxTime the supremum, Progressive/Local sample uniformly
//! by Lebesgue measure (see `slimsim-core`).

use std::fmt;

/// Tolerance used when nudging into half-open intervals (e.g. the earliest
/// representable point of `(200, 300]`).
pub const OPEN_NUDGE: f64 = 1e-9;

/// A single interval with independently open/closed endpoints.
///
/// Invariant: `lo <= hi`, and if `lo == hi` both endpoints are closed (a
/// point). `hi` may be `f64::INFINITY` (then `hi_closed` is `false`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    lo: f64,
    hi: f64,
    lo_closed: bool,
    hi_closed: bool,
}

impl Interval {
    /// Closed interval `[lo, hi]`. Returns `None` when empty (`lo > hi`).
    pub fn closed(lo: f64, hi: f64) -> Option<Interval> {
        Interval::new(lo, hi, true, true)
    }

    /// Open interval `(lo, hi)`.
    pub fn open(lo: f64, hi: f64) -> Option<Interval> {
        Interval::new(lo, hi, false, false)
    }

    /// Left-closed right-open interval `[lo, hi)`.
    pub fn closed_open(lo: f64, hi: f64) -> Option<Interval> {
        Interval::new(lo, hi, true, false)
    }

    /// Left-open right-closed interval `(lo, hi]`.
    pub fn open_closed(lo: f64, hi: f64) -> Option<Interval> {
        Interval::new(lo, hi, false, true)
    }

    /// The single point `[x, x]`.
    pub fn point(x: f64) -> Interval {
        Interval { lo: x, hi: x, lo_closed: true, hi_closed: true }
    }

    /// General constructor; normalizes infinite endpoints to open and
    /// returns `None` for empty intervals.
    pub fn new(lo: f64, hi: f64, lo_closed: bool, hi_closed: bool) -> Option<Interval> {
        if lo.is_nan() || hi.is_nan() {
            return None;
        }
        let lo_closed = lo_closed && lo.is_finite();
        let hi_closed = hi_closed && hi.is_finite();
        if lo > hi || (lo == hi && !(lo_closed && hi_closed)) {
            return None;
        }
        Some(Interval { lo, hi, lo_closed, hi_closed })
    }

    /// Lower endpoint.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper endpoint (may be `f64::INFINITY`).
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Whether the lower endpoint belongs to the interval.
    pub fn lo_closed(&self) -> bool {
        self.lo_closed
    }

    /// Whether the upper endpoint belongs to the interval.
    pub fn hi_closed(&self) -> bool {
        self.hi_closed
    }

    /// True if the interval is a single point.
    pub fn is_point(&self) -> bool {
        self.lo == self.hi
    }

    /// Lebesgue measure (length); `INFINITY` for unbounded intervals.
    pub fn measure(&self) -> f64 {
        self.hi - self.lo
    }

    /// Membership test.
    pub fn contains(&self, x: f64) -> bool {
        (x > self.lo || (x == self.lo && self.lo_closed))
            && (x < self.hi || (x == self.hi && self.hi_closed))
    }

    /// Intersection of two intervals, `None` when disjoint.
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let (lo, lo_closed) = if self.lo > other.lo {
            (self.lo, self.lo_closed)
        } else if other.lo > self.lo {
            (other.lo, other.lo_closed)
        } else {
            (self.lo, self.lo_closed && other.lo_closed)
        };
        let (hi, hi_closed) = if self.hi < other.hi {
            (self.hi, self.hi_closed)
        } else if other.hi < self.hi {
            (other.hi, other.hi_closed)
        } else {
            (self.hi, self.hi_closed && other.hi_closed)
        };
        Interval::new(lo, hi, lo_closed, hi_closed)
    }

    /// True if the two intervals overlap or touch such that their union is
    /// a single interval.
    fn merges_with(&self, other: &Interval) -> bool {
        debug_assert!(self.lo <= other.lo);
        self.hi > other.lo || (self.hi == other.lo && (self.hi_closed || other.lo_closed))
    }

    /// The earliest point of the interval that is actually attainable: the
    /// lower endpoint if closed, otherwise a point nudged in by
    /// [`OPEN_NUDGE`] (capped at the interval's midpoint for tiny intervals).
    pub fn earliest_point(&self) -> f64 {
        if self.lo_closed {
            self.lo
        } else if self.hi.is_finite() {
            let mid = 0.5 * (self.lo + self.hi);
            (self.lo + OPEN_NUDGE).min(mid)
        } else {
            self.lo + OPEN_NUDGE
        }
    }

    /// The latest attainable point: the upper endpoint if closed, otherwise
    /// nudged in; `None` for unbounded intervals.
    pub fn latest_point(&self) -> Option<f64> {
        if !self.hi.is_finite() {
            return None;
        }
        if self.hi_closed {
            Some(self.hi)
        } else {
            let mid = 0.5 * (self.lo + self.hi);
            Some((self.hi - OPEN_NUDGE).max(mid))
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let l = if self.lo_closed { '[' } else { '(' };
        let r = if self.hi_closed { ']' } else { ')' };
        write!(f, "{l}{}, {}{r}", self.lo, self.hi)
    }
}

/// A normalized finite union of disjoint, non-mergeable [`Interval`]s,
/// sorted by lower endpoint.
///
/// # Examples
///
/// ```
/// use slim_automata::interval::{Interval, IntervalSet};
///
/// let a = IntervalSet::from(Interval::closed(0.0, 2.0).unwrap());
/// let b = IntervalSet::from(Interval::closed(1.0, 3.0).unwrap());
/// let u = a.union(&b);
/// assert_eq!(u.measure(), 3.0);
/// assert!(u.contains(2.5));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IntervalSet {
    intervals: Vec<Interval>,
}

impl IntervalSet {
    /// The empty set.
    pub fn empty() -> IntervalSet {
        IntervalSet { intervals: Vec::new() }
    }

    /// The full delay axis `[0, ∞)`.
    pub fn all() -> IntervalSet {
        IntervalSet {
            intervals: vec![Interval {
                lo: 0.0,
                hi: f64::INFINITY,
                lo_closed: true,
                hi_closed: false,
            }],
        }
    }

    /// Builds a normalized set from arbitrary intervals.
    pub fn from_intervals<I: IntoIterator<Item = Interval>>(iter: I) -> IntervalSet {
        let mut v: Vec<Interval> = iter.into_iter().collect();
        v.sort_by(|a, b| {
            a.lo.partial_cmp(&b.lo)
                .expect("no NaN endpoints")
                .then_with(|| b.lo_closed.cmp(&a.lo_closed))
        });
        let mut out: Vec<Interval> = Vec::with_capacity(v.len());
        for iv in v {
            push_merged(&mut out, iv);
        }
        IntervalSet { intervals: out }
    }

    /// Empties the set in place, keeping its buffer.
    pub fn clear(&mut self) {
        self.intervals.clear();
    }

    /// Replaces the contents with a copy of `other`, reusing the buffer.
    pub fn copy_from(&mut self, other: &IntervalSet) {
        self.intervals.clear();
        self.intervals.extend_from_slice(&other.intervals);
    }

    /// Replaces the contents with the full axis `[0, ∞)` in place.
    pub fn set_all(&mut self) {
        self.intervals.clear();
        self.intervals.push(Interval {
            lo: 0.0,
            hi: f64::INFINITY,
            lo_closed: true,
            hi_closed: false,
        });
    }

    /// Replaces the contents with the single point `[x, x]` in place.
    pub fn set_point(&mut self, x: f64) {
        self.intervals.clear();
        self.intervals.push(Interval::point(x));
    }

    /// Replaces the contents with a single interval in place.
    pub fn set_interval(&mut self, iv: Interval) {
        self.intervals.clear();
        self.intervals.push(iv);
    }

    /// Appends an interval without re-normalizing. The caller must keep the
    /// sorted/disjoint/non-mergeable invariant (used by the compiled solver
    /// whose emission orders are normalization-preserving by construction).
    pub(crate) fn push_interval_unchecked(&mut self, iv: Interval) {
        self.intervals.push(iv);
    }

    /// The member intervals, sorted and disjoint.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, x: f64) -> bool {
        self.intervals.iter().any(|iv| iv.contains(x))
    }

    /// Total Lebesgue measure.
    pub fn measure(&self) -> f64 {
        self.intervals.iter().map(Interval::measure).sum()
    }

    /// Infimum of the set (`None` when empty).
    pub fn inf(&self) -> Option<f64> {
        self.intervals.first().map(Interval::lo)
    }

    /// Supremum of the set (`None` when empty, may be `INFINITY`).
    pub fn sup(&self) -> Option<f64> {
        self.intervals.last().map(Interval::hi)
    }

    /// Set union.
    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        IntervalSet::from_intervals(self.intervals.iter().chain(other.intervals.iter()).copied())
    }

    /// Set intersection.
    pub fn intersect(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = Vec::new();
        for a in &self.intervals {
            for b in &other.intervals {
                if b.lo > a.hi {
                    break;
                }
                if let Some(iv) = a.intersect(b) {
                    out.push(iv);
                }
            }
        }
        IntervalSet::from_intervals(out)
    }

    /// Complement with respect to `[0, ∞)`.
    pub fn complement(&self) -> IntervalSet {
        let mut out = Vec::new();
        let mut cursor = 0.0f64;
        let mut cursor_closed = true; // whether `cursor` itself is still outside the set
        for iv in &self.intervals {
            if iv.hi < cursor || (iv.hi == cursor && !iv.hi_closed && !cursor_closed) {
                continue;
            }
            if let Some(gap) =
                Interval::new(cursor, iv.lo.max(cursor), cursor_closed, !iv.lo_closed)
            {
                // Guard against degenerate gaps swallowed by max().
                if gap.lo < iv.lo || (gap.is_point() && !iv.contains(gap.lo)) {
                    out.push(gap);
                }
            }
            if iv.hi > cursor || (iv.hi == cursor && (iv.hi_closed || !cursor_closed)) {
                cursor = iv.hi;
                cursor_closed = !iv.hi_closed;
            }
        }
        if cursor.is_finite() {
            if let Some(tail) = Interval::new(cursor, f64::INFINITY, cursor_closed, false) {
                out.push(tail);
            }
        }
        IntervalSet::from_intervals(out)
    }

    /// Intersects the set with `[0, hi]`.
    pub fn truncate(&self, hi: f64) -> IntervalSet {
        match Interval::closed(0.0, hi) {
            Some(cap) => self.intersect(&IntervalSet::from(cap)),
            None => IntervalSet::empty(),
        }
    }

    /// Allocation-free [`intersect`](Self::intersect): writes `self ∩ other`
    /// into `out`, reusing its buffer.
    ///
    /// The pairwise intersections of two normalized sets, emitted in scan
    /// order, are already sorted and non-mergeable (sub-intervals of
    /// disjoint, non-mergeable intervals cannot merge), so no
    /// re-normalization pass is needed — the output equals
    /// `self.intersect(other)` exactly.
    pub fn intersect_into(&self, other: &IntervalSet, out: &mut IntervalSet) {
        out.intervals.clear();
        for a in &self.intervals {
            for b in &other.intervals {
                if b.lo > a.hi {
                    break;
                }
                if let Some(iv) = a.intersect(b) {
                    out.intervals.push(iv);
                }
            }
        }
    }

    /// Allocation-free [`union`](Self::union): writes `self ∪ other` into
    /// `out`, reusing its buffer.
    ///
    /// A stable two-way merge of two already-sorted inputs is exactly the
    /// stable sort `from_intervals` performs on their concatenation, so the
    /// output equals `self.union(other)` exactly.
    pub fn union_into(&self, other: &IntervalSet, out: &mut IntervalSet) {
        out.intervals.clear();
        let a = &self.intervals;
        let b = &other.intervals;
        let (mut i, mut j) = (0, 0);
        while i < a.len() || j < b.len() {
            let take_a = match (a.get(i), b.get(j)) {
                (Some(x), Some(y)) => {
                    x.lo.partial_cmp(&y.lo)
                        .expect("no NaN endpoints")
                        .then_with(|| y.lo_closed.cmp(&x.lo_closed))
                        != std::cmp::Ordering::Greater
                }
                (Some(_), None) => true,
                _ => false,
            };
            let iv = if take_a {
                i += 1;
                a[i - 1]
            } else {
                j += 1;
                b[j - 1]
            };
            push_merged(&mut out.intervals, iv);
        }
    }

    /// Allocation-free [`complement`](Self::complement): writes the
    /// complement of `self` (w.r.t. `[0, ∞)`) into `out`.
    ///
    /// The cursor sweep emits gaps already sorted and separated by member
    /// intervals, so the output needs no re-normalization and equals
    /// `self.complement()` exactly.
    pub fn complement_into(&self, out: &mut IntervalSet) {
        out.intervals.clear();
        let mut cursor = 0.0f64;
        let mut cursor_closed = true; // whether `cursor` itself is still outside the set
        for iv in &self.intervals {
            if iv.hi < cursor || (iv.hi == cursor && !iv.hi_closed && !cursor_closed) {
                continue;
            }
            if let Some(gap) =
                Interval::new(cursor, iv.lo.max(cursor), cursor_closed, !iv.lo_closed)
            {
                // Guard against degenerate gaps swallowed by max().
                if gap.lo < iv.lo || (gap.is_point() && !iv.contains(gap.lo)) {
                    out.intervals.push(gap);
                }
            }
            if iv.hi > cursor || (iv.hi == cursor && (iv.hi_closed || !cursor_closed)) {
                cursor = iv.hi;
                cursor_closed = !iv.hi_closed;
            }
        }
        if cursor.is_finite() {
            if let Some(tail) = Interval::new(cursor, f64::INFINITY, cursor_closed, false) {
                out.intervals.push(tail);
            }
        }
    }

    /// Allocation-free [`truncate`](Self::truncate): writes `self ∩ [0, hi]`
    /// into `out`.
    pub fn truncate_into(&self, hi: f64, out: &mut IntervalSet) {
        out.intervals.clear();
        if let Some(cap) = Interval::closed(0.0, hi) {
            for a in &self.intervals {
                if let Some(iv) = a.intersect(&cap) {
                    out.intervals.push(iv);
                }
            }
        }
    }

    /// The largest `d` such that the whole prefix `[0, d]` lies in the set,
    /// together with whether `d` itself is attainable. Returns `None` when
    /// `0` is not in the set, and `(INFINITY, false)` when the prefix is
    /// unbounded.
    ///
    /// Used to turn invariant-satisfaction sets into the *allowed delay
    /// window* of a state: time may pass only while the invariant keeps
    /// holding.
    pub fn prefix_from_zero(&self) -> Option<(f64, bool)> {
        let first = self.intervals.first()?;
        if !first.contains(0.0) {
            return None;
        }
        Some((first.hi, first.hi_closed))
    }

    /// The earliest attainable point of the set (`None` when empty).
    pub fn earliest_point(&self) -> Option<f64> {
        self.intervals.first().map(Interval::earliest_point)
    }

    /// The latest attainable point of the set (`None` when empty or
    /// unbounded).
    pub fn latest_point(&self) -> Option<f64> {
        self.intervals.last().and_then(Interval::latest_point)
    }

    /// Picks a point of the set from a uniform fraction `u ∈ [0, 1)`.
    ///
    /// If the set has positive measure, the point is chosen uniformly by
    /// Lebesgue measure over the bounded part (unbounded sets must be
    /// [`truncate`](Self::truncate)d first; the infinite tail is ignored
    /// here). If the set consists only of points, one is selected uniformly.
    /// Returns `None` for the empty set.
    ///
    /// Keeping the randomness outside (callers pass `u`) keeps this crate
    /// RNG-free and strategies deterministic under seeded streams.
    pub fn pick(&self, u: f64) -> Option<f64> {
        if self.intervals.is_empty() {
            return None;
        }
        let u = u.clamp(0.0, 1.0 - f64::EPSILON);
        // In a normalized set only the last interval can be unbounded, but
        // the scans below filter on finiteness to stay robust.
        let finite = |iv: &&Interval| iv.hi.is_finite();
        let n_finite = self.intervals.iter().filter(finite).count();
        let total: f64 = self.intervals.iter().filter(finite).map(Interval::measure).sum();
        if total > 0.0 {
            let last_finite =
                self.intervals.iter().rposition(|iv| iv.hi.is_finite()).expect("total > 0");
            let mut target = u * total;
            for (idx, iv) in self.intervals.iter().enumerate().filter(|(_, iv)| iv.hi.is_finite()) {
                let m = iv.measure();
                if target <= m || idx == last_finite {
                    let x = iv.lo + target.min(m);
                    // Respect open endpoints.
                    if x == iv.lo && !iv.lo_closed {
                        return Some(iv.earliest_point());
                    }
                    if x == iv.hi && !iv.hi_closed {
                        return iv.latest_point();
                    }
                    return Some(x);
                }
                target -= m;
            }
            unreachable!("target exhausted within total measure");
        }
        // Measure-zero set: uniform over the points (all finite intervals
        // are points here).
        if n_finite == 0 {
            // Only an unbounded interval: fall back to its earliest point.
            return self.earliest_point();
        }
        let idx = ((u * n_finite as f64) as usize).min(n_finite - 1);
        self.intervals.iter().filter(finite).nth(idx).map(|iv| iv.lo)
    }
}

/// Appends `iv` to a sorted run, merging it into the last element when the
/// two overlap or touch — the merge step of `from_intervals`, shared with
/// the in-place union.
fn push_merged(out: &mut Vec<Interval>, iv: Interval) {
    match out.last_mut() {
        Some(last) if last.merges_with(&iv) => {
            if iv.hi > last.hi {
                last.hi = iv.hi;
                last.hi_closed = iv.hi_closed;
            } else if iv.hi == last.hi {
                last.hi_closed = last.hi_closed || iv.hi_closed;
            }
        }
        _ => out.push(iv),
    }
}

impl From<Interval> for IntervalSet {
    fn from(iv: Interval) -> Self {
        IntervalSet { intervals: vec![iv] }
    }
}

impl fmt::Display for IntervalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.intervals.is_empty() {
            return write!(f, "∅");
        }
        for (i, iv) in self.intervals.iter().enumerate() {
            if i > 0 {
                write!(f, " ∪ ")?;
            }
            write!(f, "{iv}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cl(a: f64, b: f64) -> Interval {
        Interval::closed(a, b).unwrap()
    }

    #[test]
    fn empty_interval_constructions() {
        assert!(Interval::closed(2.0, 1.0).is_none());
        assert!(Interval::open(1.0, 1.0).is_none());
        assert!(Interval::closed_open(1.0, 1.0).is_none());
        assert!(Interval::closed(1.0, 1.0).is_some());
        assert!(Interval::new(f64::NAN, 1.0, true, true).is_none());
    }

    #[test]
    fn infinite_endpoints_forced_open() {
        let iv = Interval::new(0.0, f64::INFINITY, true, true).unwrap();
        assert!(!iv.hi_closed());
    }

    #[test]
    fn interval_contains_respects_openness() {
        let iv = Interval::open_closed(200.0, 300.0).unwrap();
        assert!(!iv.contains(200.0));
        assert!(iv.contains(200.0001));
        assert!(iv.contains(300.0));
        assert!(!iv.contains(300.0001));
    }

    #[test]
    fn union_merges_touching() {
        let s =
            IntervalSet::from_intervals([cl(0.0, 1.0), Interval::open_closed(1.0, 2.0).unwrap()]);
        assert_eq!(s.intervals().len(), 1);
        assert_eq!(s.measure(), 2.0);
        // Open-open touch does NOT merge: [0,1) ∪ (1,2] leaves out 1.
        let s2 = IntervalSet::from_intervals([
            Interval::closed_open(0.0, 1.0).unwrap(),
            Interval::open_closed(1.0, 2.0).unwrap(),
        ]);
        assert_eq!(s2.intervals().len(), 2);
        assert!(!s2.contains(1.0));
    }

    #[test]
    fn intersection_basic() {
        let a = IntervalSet::from_intervals([cl(0.0, 2.0), cl(5.0, 8.0)]);
        let b = IntervalSet::from_intervals([cl(1.0, 6.0)]);
        let i = a.intersect(&b);
        assert_eq!(i.intervals().len(), 2);
        assert!(i.contains(1.5) && i.contains(5.5));
        assert!(!i.contains(3.0));
        assert_eq!(i.measure(), 1.0 + 1.0);
    }

    #[test]
    fn intersection_endpoint_openness() {
        let a = IntervalSet::from(Interval::closed_open(0.0, 2.0).unwrap());
        let b = IntervalSet::from(Interval::open_closed(0.0, 2.0).unwrap());
        let i = a.intersect(&b);
        assert_eq!(i.intervals().len(), 1);
        assert!(!i.contains(0.0) && !i.contains(2.0) && i.contains(1.0));
    }

    #[test]
    fn complement_round_trip() {
        let s =
            IntervalSet::from_intervals([Interval::open_closed(1.0, 2.0).unwrap(), cl(4.0, 5.0)]);
        let c = s.complement();
        assert!(c.contains(0.0) && c.contains(1.0) && !c.contains(1.5));
        assert!(c.contains(3.0) && !c.contains(4.0) && !c.contains(5.0) && c.contains(6.0));
        let cc = c.complement();
        for x in [0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 4.5, 5.0, 7.0] {
            assert_eq!(cc.contains(x), s.contains(x), "at {x}");
        }
    }

    #[test]
    fn complement_of_empty_and_all() {
        assert_eq!(IntervalSet::empty().complement(), IntervalSet::all());
        assert!(IntervalSet::all().complement().is_empty());
    }

    #[test]
    fn complement_of_point() {
        let s = IntervalSet::from(Interval::point(2.0));
        let c = s.complement();
        assert!(c.contains(0.0) && c.contains(1.999) && !c.contains(2.0) && c.contains(2.001));
    }

    #[test]
    fn prefix_from_zero() {
        let s = IntervalSet::from_intervals([cl(0.0, 3.0), cl(5.0, 6.0)]);
        assert_eq!(s.prefix_from_zero(), Some((3.0, true)));
        let s2 = IntervalSet::from(Interval::open_closed(0.0, 3.0).unwrap());
        assert_eq!(s2.prefix_from_zero(), None);
        assert_eq!(IntervalSet::all().prefix_from_zero(), Some((f64::INFINITY, false)));
        assert_eq!(IntervalSet::empty().prefix_from_zero(), None);
    }

    #[test]
    fn truncate_caps() {
        let s = IntervalSet::all().truncate(10.0);
        assert_eq!(s.sup(), Some(10.0));
        assert_eq!(s.measure(), 10.0);
        assert!(IntervalSet::all().truncate(-1.0).is_empty());
    }

    #[test]
    fn earliest_and_latest_points() {
        let s = IntervalSet::from(Interval::open_closed(200.0, 300.0).unwrap());
        let e = s.earliest_point().unwrap();
        assert!(e > 200.0 && e < 201.0);
        assert_eq!(s.latest_point(), Some(300.0));
        let o = IntervalSet::from(Interval::closed_open(0.0, 5.0).unwrap());
        assert_eq!(o.earliest_point(), Some(0.0));
        let l = o.latest_point().unwrap();
        assert!(l < 5.0 && l > 4.0);
        assert_eq!(IntervalSet::all().latest_point(), None);
    }

    #[test]
    fn pick_uniform_measure() {
        let s = IntervalSet::from_intervals([cl(0.0, 1.0), cl(10.0, 11.0)]);
        let a = s.pick(0.25).unwrap();
        assert!((0.0..=1.0).contains(&a));
        let b = s.pick(0.75).unwrap();
        assert!((10.0..=11.0).contains(&b));
        assert!(s.contains(a) && s.contains(b));
    }

    #[test]
    fn pick_point_set() {
        let s = IntervalSet::from_intervals([Interval::point(1.0), Interval::point(5.0)]);
        assert_eq!(s.pick(0.1), Some(1.0));
        assert_eq!(s.pick(0.9), Some(5.0));
    }

    #[test]
    fn pick_respects_open_endpoints() {
        let s = IntervalSet::from(Interval::open(2.0, 3.0).unwrap());
        let x = s.pick(0.0).unwrap();
        assert!(s.contains(x), "picked {x} outside open set");
    }

    #[test]
    fn pick_empty_is_none() {
        assert_eq!(IntervalSet::empty().pick(0.5), None);
    }

    #[test]
    fn in_place_ops_match_allocating_ops() {
        let sets = [
            IntervalSet::empty(),
            IntervalSet::all(),
            IntervalSet::from(Interval::point(2.0)),
            IntervalSet::from_intervals([cl(0.0, 1.0), cl(10.0, 11.0)]),
            IntervalSet::from_intervals([
                Interval::closed_open(0.0, 1.0).unwrap(),
                Interval::open_closed(1.0, 2.0).unwrap(),
                Interval::new(5.0, f64::INFINITY, false, false).unwrap(),
            ]),
            IntervalSet::from_intervals([Interval::open(0.5, 1.5).unwrap(), cl(3.0, 3.0)]),
        ];
        let mut out = IntervalSet::empty();
        for a in &sets {
            a.complement_into(&mut out);
            assert_eq!(out, a.complement(), "complement of {a}");
            for hi in [-1.0, 0.0, 0.75, 3.0, 20.0, f64::INFINITY] {
                a.truncate_into(hi, &mut out);
                assert_eq!(out, a.truncate(hi), "truncate {a} at {hi}");
            }
            for b in &sets {
                a.intersect_into(b, &mut out);
                assert_eq!(out, a.intersect(b), "{a} ∩ {b}");
                a.union_into(b, &mut out);
                assert_eq!(out, a.union(b), "{a} ∪ {b}");
            }
        }
    }

    #[test]
    fn in_place_constructors() {
        let mut s = IntervalSet::all();
        s.clear();
        assert!(s.is_empty());
        s.set_all();
        assert_eq!(s, IntervalSet::all());
        s.set_point(3.0);
        assert_eq!(s, IntervalSet::from(Interval::point(3.0)));
        s.set_interval(cl(1.0, 2.0));
        assert_eq!(s, IntervalSet::from(cl(1.0, 2.0)));
        s.copy_from(&IntervalSet::from_intervals([cl(0.0, 1.0), cl(4.0, 5.0)]));
        assert_eq!(s.intervals().len(), 2);
        assert_eq!(s.measure(), 2.0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(IntervalSet::empty().to_string(), "∅");
        let s = IntervalSet::from_intervals([cl(0.0, 1.0), Interval::open(2.0, 3.0).unwrap()]);
        assert_eq!(s.to_string(), "[0, 1] ∪ (2, 3)");
    }
}
