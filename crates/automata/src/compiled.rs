//! Compiled simulation kernel: step tables + allocation-free stepping.
//!
//! The legacy semantics in [`crate::network`] re-walk guard/effect ASTs and
//! allocate fresh `Vec`s/[`IntervalSet`]s on every step. This module
//! compiles a [`Network`] once into [`StepTables`] — per-(process, location)
//! transition indices, per-action sync skeletons, and postfix bytecode for
//! guards, invariants, effects and flows — and evaluates steps through a
//! reusable [`StepScratch`] workspace so that the steady-state hot path
//! (`delay_window_into`, `guarded_candidates_into`,
//! `markovian_candidates_into`, `advance_mut`, `apply_mut`) performs **zero
//! heap allocations**.
//!
//! The compiled kernel is semantics-identical to the legacy methods: same
//! candidate enumeration order (τ transitions by process then transition
//! id, sync actions by action id with the last participant varying
//! fastest), same empty-window filtering points, and same error values in
//! the same evaluation order. Every well-typed guard compiles — numeric
//! `if` included, via lazy branch ops that mirror the legacy solver's
//! evaluation order exactly. Ill-typed guards (which validated networks
//! never contain) fall back to the legacy AST solver per guard —
//! allocating, but byte-identical in behavior.
//!
//! One caveat: `=`/`!=` between Boolean and numeric operands is dispatched
//! at *compile* time from declared variable types, where the legacy solver
//! inspects runtime values. The two agree on every type-canonical state
//! (which the engine maintains invariantly); hand-built states that store a
//! value of the wrong kind in a variable are outside the compiled kernel's
//! contract.

use crate::automaton::{ActionId, GuardKind, LocId, ProcId, TransId};
use crate::error::EvalError;
use crate::eval::{eval_bin, Valuation};
use crate::expr::{BinOp, Expr, VarId};
use crate::interval::{Interval, IntervalSet};
use crate::linear::{solve, Aff, DelayEnv};
use crate::network::{Network, INVARIANT_TOLERANCE};
use crate::state::NetState;
use crate::value::{Value, VarType};
use slim_obs::profile::{NoopProfile, ProfileHooks, ProfileLabels, ProfileShape};

// ---------------------------------------------------------------------------
// Bytecode
// ---------------------------------------------------------------------------

/// One op of a compiled guard program. Set-valued ops work on a stack of
/// pooled [`IntervalSet`]s, numeric ops on a stack of affine forms.
#[derive(Debug, Clone)]
enum SolveOp {
    /// Push `[0, ∞)`.
    SetTrue,
    /// Push `∅`.
    SetFalse,
    /// Push the window of a Boolean variable (all/empty by its value).
    SetVar(VarId),
    /// Complement the top set.
    Complement,
    /// Intersect the top two sets.
    Intersect,
    /// Union the top two sets.
    Union,
    /// Symmetric difference of the top two sets.
    Xor,
    /// Boolean (co)incidence of the top two sets: `Eq` keeps delays where
    /// both or neither hold, `Ne` its complement.
    BoolEq,
    BoolNe,
    /// `if c then t else e` over the top three sets (c deepest).
    IteSet,
    /// Pop two affine forms `a`, `b` and push the delay set of `a op b`.
    Cmp(BinOp),
    /// Fused `AffVar(v); AffConst(k); Cmp(op)`: push the delay set of
    /// `ν(v) + rate(v)·d  op  k` directly, skipping the affine stack.
    CmpVarConst(BinOp, VarId, f64),
    /// Fused `AffConst(k); AffVar(v); Cmp(op)`: push the delay set of
    /// `k  op  ν(v) + rate(v)·d`.
    CmpConstVar(BinOp, f64, VarId),
    /// Push a constant affine form.
    AffConst(f64),
    /// Push `ν(v) + rate(v)·d`.
    AffVar(VarId),
    /// Negate the top affine form.
    AffNeg,
    AffAdd,
    AffSub,
    /// Multiply; errors `NonLinear` (with the pre-rendered context at the
    /// given index) unless one operand is constant.
    AffMul(u32),
    AffDiv(u32),
    AffMin(u32),
    AffMax(u32),
    /// Lazy numeric `if`: pop the condition set. Falls through into the
    /// then-branch when the condition holds at *every* delay, skips
    /// `else_skip` ops (into the else-branch) when it holds at none, and
    /// otherwise errors `NonLinear` with the context at `ctx` — mirroring
    /// the legacy solver, which evaluates only the selected branch.
    AffBranch {
        ctx: u32,
        else_skip: u32,
    },
    /// Skip the next `n` ops (jump over an else-branch).
    AffJump(u32),
    /// Fused `SetVar(v); Complement`: push the negated window of a
    /// Boolean variable. Errors exactly where `SetVar` would.
    SetVarNot(VarId),
    /// Fused Boolean-conditioned numeric `if` over constants — the exact
    /// five-op window `SetVar(v); AffBranch; AffConst(t); AffJump;
    /// AffConst(e)` — pushing the selected constant affine form in one
    /// dispatch. The branch's `NonLinear` arm is unreachable here (a
    /// Boolean variable's window is all-or-nothing), so no context index
    /// is carried.
    AffSelVar {
        v: VarId,
        t: f64,
        e: f64,
    },
    /// Fused `CmpVarConst(op, v, k); Intersect`: solve the compare
    /// window and intersect it with the set below it in one dispatch —
    /// the `… && x op k` conjunction tail that dominates the discrete
    /// zoo models' digram profiles. Reads and errors exactly as the
    /// two-op sequence does.
    CmpVarConstAnd(BinOp, VarId, f64),
    /// Fused `CmpVarConst(op, v, k); Union` — the `… || x op k`
    /// disjunction tail.
    CmpVarConstOr(BinOp, VarId, f64),
}

/// Whole-program shapes [`fuse_solve`] recognizes after fusion. A guard
/// whose entire program is one of these skips the stack machine: the
/// unprofiled interpreters dispatch on the shape directly
/// ([`SolveScratch::run_spec_into`] / [`spec_truth`]), bit-identical to
/// executing the program op by op. Profiled runs always execute the
/// program so opcode/digram streams stay observable.
#[derive(Debug, Clone)]
enum GuardSpec {
    /// `[SetVar(v)]` — the window of a Boolean variable.
    BoolVar(VarId),
    /// `[SetVarNot(v)]`.
    BoolVarNot(VarId),
    /// `[CmpVarConst(op, v, k)]`.
    CmpVarConst(BinOp, VarId, f64),
    /// `[CmpConstVar(op, k, v)]`.
    CmpConstVar(BinOp, f64, VarId),
    /// A pure conjunction of `var op const` atoms: only `CmpVarConst`
    /// pushes joined by `Intersect`s. Atoms are stored in program order,
    /// so reads (and their errors) happen in the same order as the
    /// program; intersection is associative bit-exactly on the normalized
    /// interval representation, so the left fold below equals any
    /// association the program used.
    Conj(Box<[(BinOp, VarId, f64)]>),
}

/// A compiled guard: postfix ops plus pre-rendered expression contexts for
/// `NonLinear` diagnostics (cloned only on the error path), and the
/// recognized whole-program shape, if any.
#[derive(Debug, Clone)]
struct SolveProg {
    ops: Vec<SolveOp>,
    ctx: Vec<String>,
    spec: Option<GuardSpec>,
}

/// How a guard/invariant is evaluated at runtime.
#[derive(Debug, Clone)]
enum GuardCode {
    /// State-independent: solved once at compile time.
    Static(IntervalSet),
    /// Compiled postfix program.
    Prog(SolveProg),
    /// A compiled program none of whose variables can ever carry a
    /// nonzero rate: every affine form it builds is constant over the
    /// delay axis, so its window is all-or-nothing and the program runs
    /// on the Boolean interpreter ([`SolveScratch::run_bool`]) instead of
    /// the interval-set machine. Same ops, same evaluation order, same
    /// errors — only the set algebra collapses to `bool`.
    DelayFree(SolveProg),
    /// Construct outside the compiled subset (e.g. numeric `if` inside a
    /// guard): solved from the AST at runtime. Allocates, but preserves
    /// legacy behavior exactly.
    Fallback(Expr),
}

/// One op of a compiled value program (effects, flows).
#[derive(Debug, Clone)]
enum EvalOp {
    Const(Value),
    Var(VarId),
    Not,
    Neg,
    /// Non-short-circuit binary op (arithmetic or comparison).
    Bin(BinOp),
    /// Pop a Boolean; on `false` push `false` and skip the next `n` ops.
    AndJump(u32),
    /// Pop a Boolean; on `true` push `true` and skip the next `n` ops.
    OrJump(u32),
    /// Pop a Boolean; on `false` push `true` and skip the next `n` ops.
    ImpliesJump(u32),
    /// Pop, require Boolean, push back (surfaces `as_bool` errors at the
    /// same point the recursive evaluator would).
    CastBool,
    /// Pop `b` (require Boolean), pop `a`, push `a ^ b`.
    Xor,
    /// Pop a Boolean; on `false` skip the next `n` ops.
    JumpIfFalse(u32),
    /// Skip the next `n` ops.
    Jump(u32),
    /// Fused `Var(v); Const(k); Bin(op)`: push `ν(v) op k`.
    VarConstBin(BinOp, VarId, Value),
    /// Fused `Var(a); Var(b); Bin(op)`: push `ν(a) op ν(b)`.
    VarVarBin(BinOp, VarId, VarId),
    /// Fused `Const(k); Bin(op)`: pop `a`, push `a op k`.
    BinConst(BinOp, Value),
    /// Fused `Var(v); Const(k); Bin(op); JumpIfFalse(skip)`: evaluate
    /// `ν(v) op k`, require Boolean, and skip on `false` — the compiled
    /// `if var op const then … else …` header in one dispatch.
    VarCmpConstJumpFalse {
        op: BinOp,
        v: VarId,
        k: Value,
        skip: u32,
    },
    /// Fused Boolean select — the exact five-op diamond `Var(v);
    /// JumpIfFalse(2); Const(t); Jump(1); Const(e)`, i.e. the compiled
    /// `if b then t else e` over constants — pushing the chosen constant
    /// in one dispatch. Requires Boolean exactly where `JumpIfFalse`
    /// would.
    VarSelConst {
        v: VarId,
        t: Value,
        e: Value,
    },
}

/// Whole-program shapes [`fuse_eval`] recognizes after fusion, evaluated
/// by [`run_eval_spec`] without touching the value stack. Like
/// [`GuardSpec`], only unprofiled runs take the shortcut.
#[derive(Debug, Clone)]
enum EvalSpec {
    /// `[Const(v)]`.
    Const(Value),
    /// `[Var(v)]` — an aliasing assignment.
    Var(VarId),
    /// `[VarConstBin(op, v, k)]` — e.g. the counter bump `n + 1`.
    VarConstBin(BinOp, VarId, Value),
    /// `[VarVarBin(op, a, b)]`.
    VarVarBin(BinOp, VarId, VarId),
    /// `[VarConstBin(op1, v, k1); BinConst(op2, k2)]` — e.g. the clamped
    /// update `(n + 1) min 10`.
    VarConstBinConst(BinOp, VarId, Value, BinOp, Value),
    /// `[VarSelConst { v, t, e }]` — the whole program is one Boolean
    /// select, `if b then t else e` over constants.
    VarSelConst(VarId, Value, Value),
}

/// A compiled value program, plus its recognized whole-program shape.
#[derive(Debug, Clone)]
struct EvalProg {
    ops: Vec<EvalOp>,
    spec: Option<EvalSpec>,
}

// ---------------------------------------------------------------------------
// Step tables
// ---------------------------------------------------------------------------

/// A compiled guarded local transition.
#[derive(Debug, Clone)]
struct CompiledGuarded {
    trans: TransId,
    guard: GuardCode,
    urgent: bool,
}

/// One participant of a synchronizing action: its process and, per
/// location, the locally enabled transitions carrying the action.
#[derive(Debug, Clone)]
struct SyncPart {
    proc: ProcId,
    by_loc: Vec<Vec<CompiledGuarded>>,
}

/// Sync skeleton of one action: participants in participant-table order.
#[derive(Debug, Clone)]
struct SyncTable {
    action: ActionId,
    parts: Vec<SyncPart>,
}

/// Compiled effect `var := prog` with the target's declared type.
#[derive(Debug, Clone)]
struct CompiledEffect {
    var: VarId,
    ty: VarType,
    prog: EvalProg,
}

/// Compiled local transition: target location + effects.
#[derive(Debug, Clone)]
struct CompiledTrans {
    to: LocId,
    effects: Vec<CompiledEffect>,
    /// Bit `i` set ⇒ flow `i` must re-run after this transition's effects:
    /// the write-set closure of the effect targets over the topologically
    /// ordered flow list. All-ones when masking is disabled or the network
    /// has more than 64 flows (run everything, the pre-masking behavior).
    flow_mask: u64,
}

/// Compiled data flow. The target's name is captured at compile time so
/// flow errors render identically to the legacy path without a network
/// lookup.
#[derive(Debug, Clone)]
struct CompiledFlow {
    target: VarId,
    ty: VarType,
    name: String,
    /// Variables the flow expression reads — the edge set the write-set
    /// closure in [`flow_mask_from`] walks.
    reads: Vec<VarId>,
    prog: EvalProg,
}

/// Precomputed stepping tables of a [`Network`] — build once with
/// [`Network::compile`], then drive steps through a [`StepScratch`].
///
/// The tables borrow nothing: they can be cloned per worker or shared
/// behind a reference.
#[derive(Debug, Clone)]
pub struct StepTables {
    /// τ-labeled Boolean transitions, `[proc][loc]`.
    tau: Vec<Vec<Vec<CompiledGuarded>>>,
    /// Markovian transitions `(id, rate)`, `[proc][loc]`.
    markov: Vec<Vec<Vec<(TransId, f64)>>>,
    /// Sync skeletons in ascending action order (τ and participant-less
    /// actions excluded, like the legacy enumeration).
    sync: Vec<SyncTable>,
    /// Invariant per `[proc][loc]`; `None` when constant `true`.
    invariants: Vec<Vec<Option<GuardCode>>>,
    /// All local transitions, `[proc][trans]`.
    trans: Vec<Vec<CompiledTrans>>,
    /// Compiled flows in topological order.
    flows: Vec<CompiledFlow>,
    /// Rate baseline: 1.0 for clocks, 0.0 otherwise (location rates are
    /// overlaid per state).
    base_rates: Vec<f64>,
    /// False when every location invariant is constant `true`: delay
    /// windows are then always `[0, ∞)` and post-advance invariant
    /// re-checks are skipped.
    has_invariants: bool,
    /// False when no variable can ever carry a nonzero rate (no clocks,
    /// no location rate declarations): the rate buffer is then all-zero
    /// in every state and per-step refreshes are skipped.
    has_rates: bool,
    /// Flow mask for time advances: the write-set closure of the rated
    /// variables (the only ones `advance` mutates). All-ones when masking
    /// is disabled.
    advance_flow_mask: u64,
}

impl StepTables {
    /// Number of guards/invariants that could not be flattened to solver
    /// bytecode and fall back to the allocating AST solver at runtime.
    ///
    /// Zero means every evaluation in the stepping hot path runs on the
    /// compiled programs — the precondition for the simulator's
    /// zero-allocation steady state (see the `alloc_check` gate in the
    /// bench crate).
    pub fn fallback_guards(&self) -> usize {
        let count = |cg: &CompiledGuarded| matches!(cg.guard, GuardCode::Fallback(_)) as usize;
        self.tau.iter().flatten().flatten().map(count).sum::<usize>()
            + self
                .sync
                .iter()
                .flat_map(|t| &t.parts)
                .flat_map(|p| &p.by_loc)
                .flatten()
                .map(count)
                .sum::<usize>()
            + self
                .invariants
                .iter()
                .flatten()
                .flatten()
                .filter(|g| matches!(g, GuardCode::Fallback(_)))
                .count()
    }

    /// Verifies every compiled bytecode program in the tables: stack
    /// discipline (no underflow, correct final depth on both the set and
    /// the affine stack), jump targets within bounds, context and variable
    /// indices in range, and consistent stack depths at every join point.
    ///
    /// [`Network::compile`] re-checks its own output with this in debug
    /// builds; the CLI exposes it as `slimsim lint --verify-bytecode` so a
    /// model author can audit the exact programs the simulator will run.
    ///
    /// # Errors
    /// The first violation found, locating the offending program and op.
    pub fn verify_bytecode(&self) -> Result<BytecodeReport, BytecodeError> {
        let n_vars = self.base_rates.len();
        let mut report = BytecodeReport::default();

        let guard = |code: &GuardCode,
                     at: &dyn Fn() -> String,
                     report: &mut BytecodeReport|
         -> Result<(), BytecodeError> {
            match code {
                GuardCode::Static(_) => report.static_guards += 1,
                GuardCode::Fallback(_) => report.fallback_guards += 1,
                GuardCode::Prog(p) | GuardCode::DelayFree(p) => {
                    verify_solve(p, n_vars).map_err(|(pc, reason)| BytecodeError {
                        program: at(),
                        pc,
                        reason,
                    })?;
                    report.guard_programs += 1;
                    report.ops += p.ops.len();
                }
            }
            Ok(())
        };

        for (p, by_loc) in self.tau.iter().enumerate() {
            for (l, cgs) in by_loc.iter().enumerate() {
                for (i, cg) in cgs.iter().enumerate() {
                    guard(&cg.guard, &|| format!("tau guard proc {p} loc {l} #{i}"), &mut report)?;
                }
            }
        }
        for table in &self.sync {
            for part in &table.parts {
                for (l, cgs) in part.by_loc.iter().enumerate() {
                    for (i, cg) in cgs.iter().enumerate() {
                        guard(
                            &cg.guard,
                            &|| {
                                format!(
                                    "sync guard action {} proc {} loc {l} #{i}",
                                    table.action.0, part.proc.0
                                )
                            },
                            &mut report,
                        )?;
                    }
                }
            }
        }
        for (p, by_loc) in self.invariants.iter().enumerate() {
            for (l, code) in by_loc.iter().enumerate() {
                if let Some(code) = code {
                    guard(code, &|| format!("invariant proc {p} loc {l}"), &mut report)?;
                }
            }
        }

        let value = |prog: &EvalProg,
                     target: VarId,
                     at: &dyn Fn() -> String,
                     report: &mut BytecodeReport|
         -> Result<(), BytecodeError> {
            if target.0 >= n_vars {
                return Err(BytecodeError {
                    program: at(),
                    pc: 0,
                    reason: format!("target v{} out of bounds ({n_vars} variables)", target.0),
                });
            }
            verify_eval(prog, n_vars).map_err(|(pc, reason)| BytecodeError {
                program: at(),
                pc,
                reason,
            })?;
            report.value_programs += 1;
            report.ops += prog.ops.len();
            Ok(())
        };

        for (p, ts) in self.trans.iter().enumerate() {
            for (t, ct) in ts.iter().enumerate() {
                for (i, eff) in ct.effects.iter().enumerate() {
                    value(
                        &eff.prog,
                        eff.var,
                        &|| format!("effect proc {p} trans {t} #{i}"),
                        &mut report,
                    )?;
                }
            }
        }
        for (i, f) in self.flows.iter().enumerate() {
            value(&f.prog, f.target, &|| format!("flow #{i} ({})", f.name), &mut report)?;
        }
        Ok(report)
    }
}

// ---------------------------------------------------------------------------
// Bytecode verification
// ---------------------------------------------------------------------------

/// A bytecode verification failure: which program, where, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BytecodeError {
    /// The program that failed (e.g. `tau guard proc 0 loc 1 #2`).
    pub program: String,
    /// Offending op index; `ops.len()` for end-of-program violations.
    pub pc: usize,
    /// What the check found.
    pub reason: String,
}

impl std::fmt::Display for BytecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at pc {}: {}", self.program, self.pc, self.reason)
    }
}

impl std::error::Error for BytecodeError {}

/// Statistics from a successful [`StepTables::verify_bytecode`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BytecodeReport {
    /// Solver (guard/invariant) programs verified.
    pub guard_programs: usize,
    /// Value (effect/flow) programs verified.
    pub value_programs: usize,
    /// Guards resolved to constant windows at compile time (nothing to
    /// verify).
    pub static_guards: usize,
    /// Guards kept as AST fallbacks (checked by the network validator, not
    /// the bytecode verifier).
    pub fallback_guards: usize,
    /// Total ops across all verified programs.
    pub ops: usize,
}

impl BytecodeReport {
    /// Total programs inspected, including static and fallback guards.
    pub fn programs(&self) -> usize {
        self.guard_programs + self.value_programs + self.static_guards + self.fallback_guards
    }
}

/// Checks a jump landing `skip + 1` ops past `pc`; `len` itself is a valid
/// target (end of program).
fn jump_target(pc: usize, skip: u32, len: usize) -> Result<usize, (usize, String)> {
    let target = pc + skip as usize + 1;
    if target > len {
        return Err((pc, format!("jump target {target} out of bounds (program length {len})")));
    }
    Ok(target)
}

/// Abstractly runs a solver program over every control path, tracking the
/// depths of the interval-set stack and the affine-form stack per pc. The
/// compiler only emits straight-line code joined by forward jumps, so each
/// pc has exactly one consistent depth pair; a conflict, an underflow, an
/// out-of-range index, or a wrong final depth means the program was not
/// produced by the compiler (or was corrupted since).
fn verify_solve(prog: &SolveProg, n_vars: usize) -> Result<(), (usize, String)> {
    let len = prog.ops.len();
    let n_ctx = prog.ctx.len();
    let mut seen: Vec<Option<(usize, usize)>> = vec![None; len + 1];
    let mut work: Vec<(usize, usize, usize)> = vec![(0, 0, 0)];
    while let Some((pc, set, aff)) = work.pop() {
        if let Some(prev) = seen[pc] {
            if prev != (set, aff) {
                return Err((
                    pc,
                    format!(
                        "inconsistent stack depths at join: (set {}, aff {}) vs (set {set}, aff {aff})",
                        prev.0, prev.1
                    ),
                ));
            }
            continue;
        }
        seen[pc] = Some((set, aff));
        if pc == len {
            if set != 1 || aff != 0 {
                return Err((
                    pc,
                    format!("program ends with set depth {set}, aff depth {aff} (want 1, 0)"),
                ));
            }
            continue;
        }
        let need_set = |n: usize| -> Result<(), (usize, String)> {
            if set < n {
                Err((pc, format!("set stack underflow: op needs {n}, depth is {set}")))
            } else {
                Ok(())
            }
        };
        let need_aff = |n: usize| -> Result<(), (usize, String)> {
            if aff < n {
                Err((pc, format!("aff stack underflow: op needs {n}, depth is {aff}")))
            } else {
                Ok(())
            }
        };
        let need_ctx = |c: u32| -> Result<(), (usize, String)> {
            if (c as usize) < n_ctx {
                Ok(())
            } else {
                Err((pc, format!("context index {c} out of bounds ({n_ctx} contexts)")))
            }
        };
        let need_var = |v: VarId| -> Result<(), (usize, String)> {
            if v.0 < n_vars {
                Ok(())
            } else {
                Err((pc, format!("variable v{} out of bounds ({n_vars} variables)", v.0)))
            }
        };
        match &prog.ops[pc] {
            SolveOp::SetTrue | SolveOp::SetFalse => work.push((pc + 1, set + 1, aff)),
            SolveOp::SetVar(v) => {
                need_var(*v)?;
                work.push((pc + 1, set + 1, aff));
            }
            SolveOp::Complement => {
                need_set(1)?;
                work.push((pc + 1, set, aff));
            }
            SolveOp::Intersect
            | SolveOp::Union
            | SolveOp::Xor
            | SolveOp::BoolEq
            | SolveOp::BoolNe => {
                need_set(2)?;
                work.push((pc + 1, set - 1, aff));
            }
            SolveOp::IteSet => {
                need_set(3)?;
                work.push((pc + 1, set - 2, aff));
            }
            SolveOp::Cmp(_) => {
                need_aff(2)?;
                work.push((pc + 1, set + 1, aff - 2));
            }
            SolveOp::CmpVarConst(_, v, _) | SolveOp::CmpConstVar(_, _, v) => {
                need_var(*v)?;
                work.push((pc + 1, set + 1, aff));
            }
            SolveOp::AffConst(_) => work.push((pc + 1, set, aff + 1)),
            SolveOp::AffVar(v) => {
                need_var(*v)?;
                work.push((pc + 1, set, aff + 1));
            }
            SolveOp::AffNeg => {
                need_aff(1)?;
                work.push((pc + 1, set, aff));
            }
            SolveOp::AffAdd | SolveOp::AffSub => {
                need_aff(2)?;
                work.push((pc + 1, set, aff - 1));
            }
            SolveOp::AffMul(c) | SolveOp::AffDiv(c) | SolveOp::AffMin(c) | SolveOp::AffMax(c) => {
                need_aff(2)?;
                need_ctx(*c)?;
                work.push((pc + 1, set, aff - 1));
            }
            SolveOp::AffBranch { ctx, else_skip } => {
                need_set(1)?;
                need_ctx(*ctx)?;
                work.push((pc + 1, set - 1, aff));
                work.push((jump_target(pc, *else_skip, len)?, set - 1, aff));
            }
            SolveOp::AffJump(n) => work.push((jump_target(pc, *n, len)?, set, aff)),
            SolveOp::SetVarNot(v) => {
                need_var(*v)?;
                work.push((pc + 1, set + 1, aff));
            }
            SolveOp::AffSelVar { v, .. } => {
                need_var(*v)?;
                work.push((pc + 1, set, aff + 1));
            }
            SolveOp::CmpVarConstAnd(_, v, _) | SolveOp::CmpVarConstOr(_, v, _) => {
                need_var(*v)?;
                need_set(1)?;
                work.push((pc + 1, set, aff));
            }
        }
    }
    Ok(())
}

/// Abstractly runs a value program over every control path, tracking the
/// value-stack depth per pc (same discipline as [`verify_solve`], one
/// stack).
fn verify_eval(prog: &EvalProg, n_vars: usize) -> Result<(), (usize, String)> {
    let len = prog.ops.len();
    let mut seen: Vec<Option<usize>> = vec![None; len + 1];
    let mut work: Vec<(usize, usize)> = vec![(0, 0)];
    while let Some((pc, depth)) = work.pop() {
        if let Some(prev) = seen[pc] {
            if prev != depth {
                return Err((pc, format!("inconsistent stack depths at join: {prev} vs {depth}")));
            }
            continue;
        }
        seen[pc] = Some(depth);
        if pc == len {
            if depth != 1 {
                return Err((pc, format!("program ends with stack depth {depth} (want 1)")));
            }
            continue;
        }
        let need = |n: usize| -> Result<(), (usize, String)> {
            if depth < n {
                Err((pc, format!("value stack underflow: op needs {n}, depth is {depth}")))
            } else {
                Ok(())
            }
        };
        match &prog.ops[pc] {
            EvalOp::Const(_) => work.push((pc + 1, depth + 1)),
            EvalOp::Var(v) => {
                if v.0 >= n_vars {
                    return Err((
                        pc,
                        format!("variable v{} out of bounds ({n_vars} variables)", v.0),
                    ));
                }
                work.push((pc + 1, depth + 1));
            }
            EvalOp::Not | EvalOp::Neg | EvalOp::CastBool => {
                need(1)?;
                work.push((pc + 1, depth));
            }
            EvalOp::Bin(_) | EvalOp::Xor => {
                need(2)?;
                work.push((pc + 1, depth - 1));
            }
            // Pops the condition; when the jump is taken it pushes the
            // short-circuit result back, so the jump target sees the
            // pre-pop depth and the fall-through sees one less.
            EvalOp::AndJump(n) | EvalOp::OrJump(n) | EvalOp::ImpliesJump(n) => {
                need(1)?;
                work.push((pc + 1, depth - 1));
                work.push((jump_target(pc, *n, len)?, depth));
            }
            EvalOp::JumpIfFalse(n) => {
                need(1)?;
                work.push((pc + 1, depth - 1));
                work.push((jump_target(pc, *n, len)?, depth - 1));
            }
            EvalOp::Jump(n) => work.push((jump_target(pc, *n, len)?, depth)),
            EvalOp::VarConstBin(_, v, _) => {
                if v.0 >= n_vars {
                    return Err((
                        pc,
                        format!("variable v{} out of bounds ({n_vars} variables)", v.0),
                    ));
                }
                work.push((pc + 1, depth + 1));
            }
            EvalOp::VarVarBin(_, a, b) => {
                for v in [a, b] {
                    if v.0 >= n_vars {
                        return Err((
                            pc,
                            format!("variable v{} out of bounds ({n_vars} variables)", v.0),
                        ));
                    }
                }
                work.push((pc + 1, depth + 1));
            }
            EvalOp::BinConst(..) => {
                need(1)?;
                work.push((pc + 1, depth));
            }
            // Net stack effect zero on both paths: the fused window pushes
            // the variable, the constant, pops both for the comparison and
            // pops the condition again. Its remapped jump lands on an op
            // boundary by construction of the fusion pass; `jump_target`
            // still bounds it.
            EvalOp::VarCmpConstJumpFalse { v, skip, .. } => {
                if v.0 >= n_vars {
                    return Err((
                        pc,
                        format!("variable v{} out of bounds ({n_vars} variables)", v.0),
                    ));
                }
                work.push((pc + 1, depth));
                work.push((jump_target(pc, *skip, len)?, depth));
            }
            EvalOp::VarSelConst { v, .. } => {
                if v.0 >= n_vars {
                    return Err((
                        pc,
                        format!("variable v{} out of bounds ({n_vars} variables)", v.0),
                    ));
                }
                work.push((pc + 1, depth + 1));
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Scratch
// ---------------------------------------------------------------------------

/// Working stacks of the compiled guard solver.
#[derive(Debug, Default)]
struct SolveScratch {
    sets: Vec<IntervalSet>,
    depth: usize,
    affs: Vec<Aff>,
    t1: IntervalSet,
    t2: IntervalSet,
    t3: IntervalSet,
    t4: IntervalSet,
    /// Boolean/constant stacks of the delay-free interpreter
    /// ([`SolveScratch::run_bool`]); mirror `sets`/`affs`.
    bools: Vec<bool>,
    consts: Vec<f64>,
}

/// A raw guarded candidate produced by
/// [`Network::guarded_candidates_into`] — the pooled, field-reusing
/// counterpart of [`crate::network::GuardedCandidate`].
#[derive(Debug, Clone)]
pub struct CandidateBuf {
    /// The synchronizing action (τ for internal moves).
    pub action: ActionId,
    /// Participating `(process, local transition)` pairs.
    pub parts: Vec<(ProcId, TransId)>,
    /// Delays at which all local guards hold (not yet intersected with the
    /// invariant window).
    pub window: IntervalSet,
    /// True if any participating local transition is urgent.
    pub urgent: bool,
}

impl Default for CandidateBuf {
    fn default() -> Self {
        CandidateBuf {
            action: ActionId::TAU,
            parts: Vec::new(),
            window: IntervalSet::empty(),
            urgent: false,
        }
    }
}

/// One participant option during sync cross-product construction.
#[derive(Debug, Clone)]
struct OptBuf {
    trans: TransId,
    window: IntervalSet,
    urgent: bool,
}

impl Default for OptBuf {
    fn default() -> Self {
        OptBuf { trans: TransId(0), window: IntervalSet::empty(), urgent: false }
    }
}

/// One partial combination during sync cross-product construction.
#[derive(Debug, Clone, Default)]
struct ComboBuf {
    parts: Vec<(ProcId, TransId)>,
    window: IntervalSet,
    urgent: bool,
}

/// Reusable per-worker workspace for the compiled kernel.
///
/// All buffers grow to a high-water mark during the first few steps and
/// are reused afterwards; in steady state no method taking a
/// `&mut StepScratch` allocates (except guards compiled to
/// [`GuardCode::Fallback`], which are rare and documented).
#[derive(Debug)]
pub struct StepScratch {
    rates: Vec<f64>,
    solver: SolveScratch,
    vals: Vec<Value>,
    guard_result: IntervalSet,
    temp_w: IntervalSet,
    cands: Vec<CandidateBuf>,
    n_cands: usize,
    opts: Vec<OptBuf>,
    n_opts: usize,
    opt_ranges: Vec<(usize, usize)>,
    combo_a: Vec<ComboBuf>,
    n_combo_a: usize,
    combo_b: Vec<ComboBuf>,
    n_combo_b: usize,
    markov: Vec<(ProcId, TransId, f64)>,
    writes: Vec<(VarId, Value)>,
    backup: NetState,
    // Dedicated to `invariants_violated`: its throwaway window output may
    // not share a buffer with `temp_w`, which `delay_window_into` uses
    // internally while that output is checked out.
    inv_check: IntervalSet,
}

impl Default for StepScratch {
    fn default() -> StepScratch {
        StepScratch::new()
    }
}

impl StepScratch {
    /// Creates an empty workspace; buffers size themselves on first use.
    pub fn new() -> StepScratch {
        StepScratch {
            rates: Vec::new(),
            solver: SolveScratch::default(),
            vals: Vec::new(),
            guard_result: IntervalSet::empty(),
            temp_w: IntervalSet::empty(),
            cands: Vec::new(),
            n_cands: 0,
            opts: Vec::new(),
            n_opts: 0,
            opt_ranges: Vec::new(),
            combo_a: Vec::new(),
            n_combo_a: 0,
            combo_b: Vec::new(),
            n_combo_b: 0,
            markov: Vec::new(),
            writes: Vec::new(),
            backup: NetState::new(Vec::new(), Valuation::new(Vec::new())),
            inv_check: IntervalSet::empty(),
        }
    }

    /// Candidates produced by the last
    /// [`Network::guarded_candidates_into`] call, in legacy enumeration
    /// order.
    pub fn candidates(&self) -> &[CandidateBuf] {
        &self.cands[..self.n_cands]
    }

    /// Markovian candidates `(proc, transition, rate)` produced by the
    /// last [`Network::markovian_candidates_into`] call.
    pub fn markovian(&self) -> &[(ProcId, TransId, f64)] {
        &self.markov
    }
}

/// Acquires the next candidate slot, reusing retired buffers.
fn next_cand<'a>(pool: &'a mut Vec<CandidateBuf>, used: &mut usize) -> &'a mut CandidateBuf {
    if *used == pool.len() {
        pool.push(CandidateBuf::default());
    }
    *used += 1;
    &mut pool[*used - 1]
}

fn next_opt<'a>(pool: &'a mut Vec<OptBuf>, used: &mut usize) -> &'a mut OptBuf {
    if *used == pool.len() {
        pool.push(OptBuf::default());
    }
    *used += 1;
    &mut pool[*used - 1]
}

fn next_combo<'a>(pool: &'a mut Vec<ComboBuf>, used: &mut usize) -> &'a mut ComboBuf {
    if *used == pool.len() {
        pool.push(ComboBuf::default());
    }
    *used += 1;
    &mut pool[*used - 1]
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

/// Marker: the expression uses a construct the bytecode does not model;
/// the whole guard falls back to the AST solver.
struct Unsupported;

/// True for every variable that can carry a nonzero rate in some
/// location: clocks (base rate 1) plus any variable a location rate
/// declaration drives. A guard whose affine ops reference none of these
/// builds constant forms only, in every reachable state.
fn rated_vars(net: &Network) -> Vec<bool> {
    let mut rated: Vec<bool> = net.vars().iter().map(|v| v.ty == VarType::Clock).collect();
    for a in net.automata() {
        for l in &a.locations {
            for &(v, r) in &l.rates {
                if r != 0.0 {
                    rated[v.0] = true;
                }
            }
        }
    }
    rated
}

/// Downgrades a compiled program to the Boolean interpreter
/// ([`GuardCode::DelayFree`]) when none of its affine ops can produce a
/// non-constant form.
fn specialize_delay_free(code: GuardCode, rated: &[bool]) -> GuardCode {
    let delay_free = |p: &SolveProg| {
        p.ops.iter().all(|op| match op {
            SolveOp::AffVar(v) | SolveOp::CmpVarConst(_, v, _) | SolveOp::CmpConstVar(_, _, v) => {
                !rated.get(v.0).copied().unwrap_or(false)
            }
            _ => true,
        })
    };
    match code {
        GuardCode::Prog(p) if delay_free(&p) => GuardCode::DelayFree(p),
        other => other,
    }
}

/// Compilation knobs for [`Network::compile_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompileOptions {
    /// Run the optimizing tiers: superinstruction fusion
    /// ([`fuse_solve`]/[`fuse_eval`]), whole-program specialization
    /// ([`GuardSpec`]/[`EvalSpec`]), and write-set flow masking. On by
    /// default; [`CompileOptions::reference`] turns it off, producing the
    /// maximally conservative op-by-op kernel that re-establishes every
    /// flow — the baseline the fusion-equivalence fuzz oracle compares
    /// against.
    pub optimize: bool,
}

impl Default for CompileOptions {
    fn default() -> CompileOptions {
        CompileOptions { optimize: true }
    }
}

impl CompileOptions {
    /// The unoptimized reference configuration: no fusion, no
    /// specialization, no flow masking.
    pub fn reference() -> CompileOptions {
        CompileOptions { optimize: false }
    }
}

fn compile_guard(e: &Expr, net: &Network, optimize: bool) -> GuardCode {
    let mut prog = SolveProg { ops: Vec::new(), ctx: Vec::new(), spec: None };
    if compile_solve(e, net, &mut prog).is_err() {
        return GuardCode::Fallback(e.clone());
    }
    let state_dependent =
        prog.ops.iter().any(|op| matches!(op, SolveOp::SetVar(_) | SolveOp::AffVar(_)));
    if !state_dependent {
        // Evaluate once; a deterministic runtime error (e.g. constant
        // division by zero) keeps the program so the error surfaces on
        // every call, exactly like the legacy solver.
        let nu = Valuation::new(Vec::new());
        let mut sv = SolveScratch::default();
        if sv.run(&prog, &nu, &[], &mut NoopProfile).is_ok() {
            let mut set = IntervalSet::empty();
            std::mem::swap(&mut set, &mut sv.sets[0]);
            return GuardCode::Static(set);
        }
    }
    if optimize {
        fuse_solve(&mut prog);
        prog.spec = solve_spec_of(&prog.ops);
    }
    GuardCode::Prog(prog)
}

/// One original jump as `(source pc, target pc)` pairs, for both fusers.
fn jump_edges<T>(ops: &[T], target_of: impl Fn(usize, &T) -> Option<usize>) -> Vec<(usize, usize)> {
    ops.iter().enumerate().filter_map(|(pc, op)| target_of(pc, op).map(|t| (pc, t))).collect()
}

/// True when the window `[i, i+n)` may fuse: no jump from outside the
/// window lands strictly inside it (targets at `i` or `i+n` are op
/// boundaries and stay valid). Jumps *inside* the window are consumed or
/// remapped together with it.
fn window_ok(jumps: &[(usize, usize)], i: usize, n: usize) -> bool {
    jumps.iter().all(|&(src, tgt)| (src >= i && src < i + n) || tgt <= i || tgt >= i + n)
}

/// Peephole superinstruction fusion over a solver program. The windows —
/// mined from the `KernelProfile` digram reports on the model zoo (see
/// docs/performance.md) — are matched longest-first at each position:
///
/// * `SetVar; AffBranch; AffConst; AffJump; AffConst` → [`SolveOp::AffSelVar`]
///   (the `(if b then t else e)` quorum-counting pattern),
/// * `AffVar; AffConst; Cmp; Intersect` → [`SolveOp::CmpVarConstAnd`]
///   (and `… ; Union` → [`SolveOp::CmpVarConstOr`]) — the conjunction /
///   disjunction tails of multi-atom guards,
/// * `AffVar; AffConst; Cmp` → [`SolveOp::CmpVarConst`] (and mirrored →
///   [`SolveOp::CmpConstVar`]) — the ubiquitous `variable cmp constant`,
/// * `SetVar; Complement` → [`SolveOp::SetVarNot`] (negated-flag
///   conjunctions).
///
/// Programs with jumps fuse too: surviving jumps are remapped through a
/// position table after the rewrite, and [`window_ok`] refuses any window
/// an outside jump lands inside, so every remapped target is an op
/// boundary in the fused program.
fn fuse_solve(prog: &mut SolveProg) {
    let ops = std::mem::take(&mut prog.ops);
    let len = ops.len();
    let target_of = |pc: usize, op: &SolveOp| match op {
        SolveOp::AffBranch { else_skip, .. } => Some(pc + *else_skip as usize + 1),
        SolveOp::AffJump(n) => Some(pc + *n as usize + 1),
        _ => None,
    };
    let jumps = jump_edges(&ops, target_of);
    let mut fused: Vec<SolveOp> = Vec::with_capacity(len);
    // `(fused index, original target)` of every surviving jump.
    let mut live_jumps: Vec<(usize, usize)> = Vec::new();
    let mut new_pc_of: Vec<usize> = vec![usize::MAX; len + 1];
    let mut i = 0;
    while i < len {
        new_pc_of[i] = fused.len();
        if i + 5 <= len && window_ok(&jumps, i, 5) {
            if let [SolveOp::SetVar(v), SolveOp::AffBranch { else_skip: 2, .. }, SolveOp::AffConst(t), SolveOp::AffJump(1), SolveOp::AffConst(e)] =
                &ops[i..i + 5]
            {
                fused.push(SolveOp::AffSelVar { v: *v, t: *t, e: *e });
                i += 5;
                continue;
            }
        }
        if i + 4 <= len && window_ok(&jumps, i, 4) {
            if let [SolveOp::AffVar(v), SolveOp::AffConst(k), SolveOp::Cmp(cmp), join] =
                &ops[i..i + 4]
            {
                let tail = match join {
                    SolveOp::Intersect => Some(SolveOp::CmpVarConstAnd(*cmp, *v, *k)),
                    SolveOp::Union => Some(SolveOp::CmpVarConstOr(*cmp, *v, *k)),
                    _ => None,
                };
                if let Some(op) = tail {
                    fused.push(op);
                    i += 4;
                    continue;
                }
            }
        }
        if i + 3 <= len && window_ok(&jumps, i, 3) {
            match &ops[i..i + 3] {
                [SolveOp::AffVar(v), SolveOp::AffConst(k), SolveOp::Cmp(cmp)] => {
                    fused.push(SolveOp::CmpVarConst(*cmp, *v, *k));
                    i += 3;
                    continue;
                }
                [SolveOp::AffConst(k), SolveOp::AffVar(v), SolveOp::Cmp(cmp)] => {
                    fused.push(SolveOp::CmpConstVar(*cmp, *k, *v));
                    i += 3;
                    continue;
                }
                _ => {}
            }
        }
        if i + 2 <= len && window_ok(&jumps, i, 2) {
            if let [SolveOp::SetVar(v), SolveOp::Complement] = &ops[i..i + 2] {
                fused.push(SolveOp::SetVarNot(*v));
                i += 2;
                continue;
            }
        }
        if let Some(t) = target_of(i, &ops[i]) {
            live_jumps.push((fused.len(), t));
        }
        fused.push(ops[i].clone());
        i += 1;
    }
    new_pc_of[len] = fused.len();
    for (idx, old_t) in live_jumps {
        let new_t = new_pc_of[old_t];
        debug_assert_ne!(new_t, usize::MAX, "jump target is an op boundary");
        let skip = (new_t - idx - 1) as u32;
        match &mut fused[idx] {
            SolveOp::AffBranch { else_skip, .. } => *else_skip = skip,
            SolveOp::AffJump(n) => *n = skip,
            _ => unreachable!("only jump ops record targets"),
        }
    }
    prog.ops = fused;
}

/// Recognizes a fused solver program that is, in its entirety, one of the
/// [`GuardSpec`] shapes.
fn solve_spec_of(ops: &[SolveOp]) -> Option<GuardSpec> {
    match ops {
        [SolveOp::SetVar(v)] => Some(GuardSpec::BoolVar(*v)),
        [SolveOp::SetVarNot(v)] => Some(GuardSpec::BoolVarNot(*v)),
        [SolveOp::CmpVarConst(op, v, k)] => Some(GuardSpec::CmpVarConst(*op, *v, *k)),
        [SolveOp::CmpConstVar(op, k, v)] => Some(GuardSpec::CmpConstVar(*op, *k, *v)),
        _ => {
            // Conjunction shape: `CmpVarConst` pushes joined by
            // `Intersect`s (or their fused `CmpVarConstAnd` form) with
            // valid postfix stack discipline, in any association.
            let mut atoms = Vec::new();
            let mut depth = 0usize;
            for op in ops {
                match op {
                    SolveOp::CmpVarConst(c, v, k) => {
                        atoms.push((*c, *v, *k));
                        depth += 1;
                    }
                    SolveOp::CmpVarConstAnd(c, v, k) => {
                        if depth < 1 {
                            return None;
                        }
                        atoms.push((*c, *v, *k));
                    }
                    SolveOp::Intersect => {
                        if depth < 2 {
                            return None;
                        }
                        depth -= 1;
                    }
                    _ => return None,
                }
            }
            (depth == 1 && atoms.len() >= 2).then(|| GuardSpec::Conj(atoms.into_boxed_slice()))
        }
    }
}

/// Peephole superinstruction fusion over a value program — same remapping
/// machinery as [`fuse_solve`], with the value-program windows:
/// `Var; Const; Bin; JumpIfFalse` → [`EvalOp::VarCmpConstJumpFalse`],
/// `Var; Const; Bin` → [`EvalOp::VarConstBin`], `Var; Var; Bin` →
/// [`EvalOp::VarVarBin`], and `Const; Bin` → [`EvalOp::BinConst`].
fn fuse_eval(prog: &mut EvalProg) {
    let ops = std::mem::take(&mut prog.ops);
    let len = ops.len();
    let target_of = |pc: usize, op: &EvalOp| match op {
        EvalOp::AndJump(n)
        | EvalOp::OrJump(n)
        | EvalOp::ImpliesJump(n)
        | EvalOp::JumpIfFalse(n)
        | EvalOp::Jump(n) => Some(pc + *n as usize + 1),
        _ => None,
    };
    let jumps = jump_edges(&ops, target_of);
    let mut fused: Vec<EvalOp> = Vec::with_capacity(len);
    let mut live_jumps: Vec<(usize, usize)> = Vec::new();
    let mut new_pc_of: Vec<usize> = vec![usize::MAX; len + 1];
    let mut i = 0;
    while i < len {
        new_pc_of[i] = fused.len();
        if i + 5 <= len && window_ok(&jumps, i, 5) {
            if let [EvalOp::Var(v), EvalOp::JumpIfFalse(2), EvalOp::Const(t), EvalOp::Jump(1), EvalOp::Const(e)] =
                &ops[i..i + 5]
            {
                fused.push(EvalOp::VarSelConst { v: *v, t: *t, e: *e });
                i += 5;
                continue;
            }
        }
        if i + 4 <= len && window_ok(&jumps, i, 4) {
            if let [EvalOp::Var(v), EvalOp::Const(k), EvalOp::Bin(op), EvalOp::JumpIfFalse(skip)] =
                &ops[i..i + 4]
            {
                live_jumps.push((fused.len(), i + 3 + *skip as usize + 1));
                fused.push(EvalOp::VarCmpConstJumpFalse { op: *op, v: *v, k: *k, skip: *skip });
                i += 4;
                continue;
            }
        }
        if i + 3 <= len && window_ok(&jumps, i, 3) {
            match &ops[i..i + 3] {
                [EvalOp::Var(v), EvalOp::Const(k), EvalOp::Bin(op)] => {
                    fused.push(EvalOp::VarConstBin(*op, *v, *k));
                    i += 3;
                    continue;
                }
                [EvalOp::Var(a), EvalOp::Var(b), EvalOp::Bin(op)] => {
                    fused.push(EvalOp::VarVarBin(*op, *a, *b));
                    i += 3;
                    continue;
                }
                _ => {}
            }
        }
        if i + 2 <= len && window_ok(&jumps, i, 2) {
            if let [EvalOp::Const(k), EvalOp::Bin(op)] = &ops[i..i + 2] {
                fused.push(EvalOp::BinConst(*op, *k));
                i += 2;
                continue;
            }
        }
        if let Some(t) = target_of(i, &ops[i]) {
            live_jumps.push((fused.len(), t));
        }
        fused.push(ops[i].clone());
        i += 1;
    }
    new_pc_of[len] = fused.len();
    for (idx, old_t) in live_jumps {
        let new_t = new_pc_of[old_t];
        debug_assert_ne!(new_t, usize::MAX, "jump target is an op boundary");
        let skip = (new_t - idx - 1) as u32;
        match &mut fused[idx] {
            EvalOp::AndJump(n)
            | EvalOp::OrJump(n)
            | EvalOp::ImpliesJump(n)
            | EvalOp::JumpIfFalse(n)
            | EvalOp::Jump(n) => *n = skip,
            EvalOp::VarCmpConstJumpFalse { skip: s, .. } => *s = skip,
            _ => unreachable!("only jump ops record targets"),
        }
    }
    prog.ops = fused;
}

/// Recognizes a fused value program that is one of the [`EvalSpec`]
/// shapes.
fn eval_spec_of(ops: &[EvalOp]) -> Option<EvalSpec> {
    match ops {
        [EvalOp::Const(v)] => Some(EvalSpec::Const(*v)),
        [EvalOp::Var(v)] => Some(EvalSpec::Var(*v)),
        [EvalOp::VarConstBin(op, v, k)] => Some(EvalSpec::VarConstBin(*op, *v, *k)),
        [EvalOp::VarVarBin(op, a, b)] => Some(EvalSpec::VarVarBin(*op, *a, *b)),
        [EvalOp::VarConstBin(op1, v, k1), EvalOp::BinConst(op2, k2)] => {
            Some(EvalSpec::VarConstBinConst(*op1, *v, *k1, *op2, *k2))
        }
        [EvalOp::VarSelConst { v, t, e }] => Some(EvalSpec::VarSelConst(*v, *t, *e)),
        _ => None,
    }
}

fn compile_solve(e: &Expr, net: &Network, prog: &mut SolveProg) -> Result<(), Unsupported> {
    match e {
        Expr::Const(Value::Bool(true)) => prog.ops.push(SolveOp::SetTrue),
        Expr::Const(Value::Bool(false)) => prog.ops.push(SolveOp::SetFalse),
        Expr::Const(_) => return Err(Unsupported),
        Expr::Var(v) => prog.ops.push(SolveOp::SetVar(*v)),
        Expr::Not(x) => {
            compile_solve(x, net, prog)?;
            prog.ops.push(SolveOp::Complement);
        }
        Expr::Neg(_) => return Err(Unsupported),
        Expr::Bin(op, a, b) => match op {
            BinOp::And => {
                compile_solve(a, net, prog)?;
                compile_solve(b, net, prog)?;
                prog.ops.push(SolveOp::Intersect);
            }
            BinOp::Or => {
                compile_solve(a, net, prog)?;
                compile_solve(b, net, prog)?;
                prog.ops.push(SolveOp::Union);
            }
            BinOp::Implies => {
                compile_solve(a, net, prog)?;
                prog.ops.push(SolveOp::Complement);
                compile_solve(b, net, prog)?;
                prog.ops.push(SolveOp::Union);
            }
            BinOp::Xor => {
                compile_solve(a, net, prog)?;
                compile_solve(b, net, prog)?;
                prog.ops.push(SolveOp::Xor);
            }
            BinOp::Eq | BinOp::Ne if is_boolish_decl(a, net) && is_boolish_decl(b, net) => {
                compile_solve(a, net, prog)?;
                compile_solve(b, net, prog)?;
                prog.ops.push(if *op == BinOp::Eq { SolveOp::BoolEq } else { SolveOp::BoolNe });
            }
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                compile_aff(a, net, prog)?;
                compile_aff(b, net, prog)?;
                prog.ops.push(SolveOp::Cmp(*op));
            }
            _ => return Err(Unsupported),
        },
        Expr::Ite(c, t, els) => {
            compile_solve(c, net, prog)?;
            compile_solve(t, net, prog)?;
            compile_solve(els, net, prog)?;
            prog.ops.push(SolveOp::IteSet);
        }
    }
    Ok(())
}

fn compile_aff(e: &Expr, net: &Network, prog: &mut SolveProg) -> Result<(), Unsupported> {
    match e {
        Expr::Const(v) => match v.as_real() {
            Ok(k) => prog.ops.push(SolveOp::AffConst(k)),
            Err(_) => return Err(Unsupported),
        },
        Expr::Var(v) => prog.ops.push(SolveOp::AffVar(*v)),
        Expr::Neg(x) => {
            compile_aff(x, net, prog)?;
            prog.ops.push(SolveOp::AffNeg);
        }
        Expr::Bin(op, a, b) => {
            let with_ctx = matches!(op, BinOp::Mul | BinOp::Div | BinOp::Min | BinOp::Max);
            match op {
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Min | BinOp::Max => {
                    compile_aff(a, net, prog)?;
                    compile_aff(b, net, prog)?;
                    let ctx = if with_ctx {
                        let i = prog.ctx.len() as u32;
                        prog.ctx.push(format!("{e}"));
                        i
                    } else {
                        0
                    };
                    prog.ops.push(match op {
                        BinOp::Add => SolveOp::AffAdd,
                        BinOp::Sub => SolveOp::AffSub,
                        BinOp::Mul => SolveOp::AffMul(ctx),
                        BinOp::Div => SolveOp::AffDiv(ctx),
                        BinOp::Min => SolveOp::AffMin(ctx),
                        BinOp::Max => SolveOp::AffMax(ctx),
                        _ => unreachable!(),
                    });
                }
                _ => return Err(Unsupported),
            }
        }
        // Numeric `if` is lazy in the legacy solver: the condition is
        // solved first and only the selected branch is evaluated. The
        // compiled form preserves that with a branch op that dispatches on
        // the condition's delay set, so errors in the unselected branch
        // never surface — identical to `lin_eval`.
        Expr::Ite(c, t, els) => {
            compile_solve(c, net, prog)?;
            let ctx = prog.ctx.len() as u32;
            prog.ctx.push(format!("delay-dependent condition in {e}"));
            let jb = prog.ops.len();
            prog.ops.push(SolveOp::AffJump(0)); // placeholder for the branch
            compile_aff(t, net, prog)?;
            let jt = prog.ops.len();
            prog.ops.push(SolveOp::AffJump(0)); // placeholder: skip the else
            prog.ops[jb] = SolveOp::AffBranch { ctx, else_skip: (prog.ops.len() - jb - 1) as u32 };
            compile_aff(els, net, prog)?;
            prog.ops[jt] = SolveOp::AffJump((prog.ops.len() - jt - 1) as u32);
        }
        // `not`/logical operators in numeric position are ill-typed;
        // validated networks never reach here, but the fallback keeps
        // `compile` infallible on arbitrary networks.
        _ => return Err(Unsupported),
    }
    Ok(())
}

/// Compile-time mirror of the legacy `is_boolish` dispatch, using declared
/// variable types in place of runtime value kinds (identical on canonical
/// states — see the module docs).
fn is_boolish_decl(e: &Expr, net: &Network) -> bool {
    match e {
        Expr::Const(Value::Bool(_)) => true,
        Expr::Var(v) => matches!(net.vars().get(v.0).map(|d| d.ty), Some(VarType::Bool)),
        Expr::Not(_) => true,
        Expr::Bin(op, ..) => op.is_logical() || op.is_comparison(),
        Expr::Ite(_, t, _) => is_boolish_decl(t, net),
        _ => false,
    }
}

fn compile_eval(e: &Expr, ops: &mut Vec<EvalOp>) {
    match e {
        Expr::Const(v) => ops.push(EvalOp::Const(*v)),
        Expr::Var(v) => ops.push(EvalOp::Var(*v)),
        Expr::Not(x) => {
            compile_eval(x, ops);
            ops.push(EvalOp::Not);
        }
        Expr::Neg(x) => {
            compile_eval(x, ops);
            ops.push(EvalOp::Neg);
        }
        Expr::Bin(op, a, b) => match op {
            BinOp::And | BinOp::Or | BinOp::Implies => {
                compile_eval(a, ops);
                let j = ops.len();
                ops.push(EvalOp::Jump(0)); // placeholder
                compile_eval(b, ops);
                ops.push(EvalOp::CastBool);
                let skip = (ops.len() - j - 1) as u32;
                ops[j] = match op {
                    BinOp::And => EvalOp::AndJump(skip),
                    BinOp::Or => EvalOp::OrJump(skip),
                    _ => EvalOp::ImpliesJump(skip),
                };
            }
            BinOp::Xor => {
                compile_eval(a, ops);
                ops.push(EvalOp::CastBool);
                compile_eval(b, ops);
                ops.push(EvalOp::Xor);
            }
            _ => {
                compile_eval(a, ops);
                compile_eval(b, ops);
                ops.push(EvalOp::Bin(*op));
            }
        },
        Expr::Ite(c, t, els) => {
            compile_eval(c, ops);
            let j1 = ops.len();
            ops.push(EvalOp::JumpIfFalse(0));
            compile_eval(t, ops);
            let j2 = ops.len();
            ops.push(EvalOp::Jump(0));
            ops[j1] = EvalOp::JumpIfFalse((ops.len() - j1 - 1) as u32);
            compile_eval(els, ops);
            ops[j2] = EvalOp::Jump((ops.len() - j2 - 1) as u32);
        }
    }
}

fn compile_prog(e: &Expr, optimize: bool) -> EvalProg {
    let mut ops = Vec::new();
    compile_eval(e, &mut ops);
    let mut prog = EvalProg { ops, spec: None };
    if optimize {
        fuse_eval(&mut prog);
        prog.spec = eval_spec_of(&prog.ops);
    }
    prog
}

/// Write-set closure over the topologically ordered flow list: bit `i` is
/// set when flow `i` reads a variable some seed (or an earlier triggered
/// flow) writes. One forward pass reaches the fixed point because
/// [`crate::flow::toposort_flows`] guarantees every flow runs after the
/// flows defining the variables it reads. Conservative all-ones when the
/// network has more than 64 flows.
fn flow_mask_from(
    flows: &[CompiledFlow],
    n_vars: usize,
    seeds: impl Iterator<Item = VarId>,
) -> u64 {
    if flows.len() > 64 {
        return u64::MAX;
    }
    let mut written = vec![false; n_vars];
    for v in seeds {
        if v.0 < n_vars {
            written[v.0] = true;
        }
    }
    let mut mask = 0u64;
    for (i, f) in flows.iter().enumerate() {
        if f.reads.iter().any(|v| v.0 < n_vars && written[v.0]) {
            mask |= 1 << i;
            if f.target.0 < n_vars {
                written[f.target.0] = true;
            }
        }
    }
    mask
}

impl Network {
    /// Compiles the network into reusable [`StepTables`] with all
    /// optimizing tiers enabled — shorthand for [`Network::compile_with`]
    /// on the default [`CompileOptions`]. Infallible: any guard the
    /// bytecode cannot model is kept as an AST fallback with identical
    /// runtime behavior.
    pub fn compile(&self) -> StepTables {
        self.compile_with(&CompileOptions::default())
    }

    /// Compiles the network into reusable [`StepTables`] under explicit
    /// [`CompileOptions`]. Every configuration is bit-identical in
    /// observable behavior (windows, candidate order, errors, RNG
    /// consumption); the options only trade compile-time optimization for
    /// interpreter simplicity.
    pub fn compile_with(&self, opts: &CompileOptions) -> StepTables {
        let optimize = opts.optimize;
        let rated = rated_vars(self);
        let guard = |g: &Expr| specialize_delay_free(compile_guard(g, self, optimize), &rated);
        let n_procs = self.automata().len();
        let mut tau = Vec::with_capacity(n_procs);
        let mut markov = Vec::with_capacity(n_procs);
        let mut invariants = Vec::with_capacity(n_procs);
        let mut trans: Vec<Vec<CompiledTrans>> = Vec::with_capacity(n_procs);
        for a in self.automata() {
            let n_locs = a.locations.len();
            let mut a_tau: Vec<Vec<CompiledGuarded>> = vec![Vec::new(); n_locs];
            let mut a_markov: Vec<Vec<(TransId, f64)>> = vec![Vec::new(); n_locs];
            for (i, t) in a.transitions.iter().enumerate() {
                match &t.guard {
                    GuardKind::Boolean(g) if t.action.is_tau() => {
                        a_tau[t.from.0].push(CompiledGuarded {
                            trans: TransId(i),
                            guard: guard(g),
                            urgent: t.urgent,
                        });
                    }
                    GuardKind::Markovian(rate) => a_markov[t.from.0].push((TransId(i), *rate)),
                    GuardKind::Boolean(_) => {}
                }
            }
            tau.push(a_tau);
            markov.push(a_markov);
            invariants.push(
                a.locations
                    .iter()
                    .map(
                        |l| {
                            if l.invariant.is_const_true() {
                                None
                            } else {
                                Some(guard(&l.invariant))
                            }
                        },
                    )
                    .collect(),
            );
            trans.push(
                a.transitions
                    .iter()
                    .map(|t| CompiledTrans {
                        to: t.to,
                        effects: t
                            .effects
                            .iter()
                            .map(|eff| CompiledEffect {
                                var: eff.var,
                                ty: self.ty_of(eff.var),
                                prog: compile_prog(&eff.expr, optimize),
                            })
                            .collect(),
                        // Filled in below, once the flows are compiled.
                        flow_mask: u64::MAX,
                    })
                    .collect(),
            );
        }

        let mut sync = Vec::new();
        for a_idx in 0..self.actions().len() {
            let action = ActionId(a_idx);
            let procs = self.participants(action);
            if action.is_tau() || procs.is_empty() {
                continue;
            }
            let parts = procs
                .iter()
                .map(|&p| {
                    let a = &self.automata()[p.0];
                    let mut by_loc: Vec<Vec<CompiledGuarded>> = vec![Vec::new(); a.locations.len()];
                    for (i, t) in a.transitions.iter().enumerate() {
                        if t.action != action {
                            continue;
                        }
                        if let GuardKind::Boolean(g) = &t.guard {
                            by_loc[t.from.0].push(CompiledGuarded {
                                trans: TransId(i),
                                guard: guard(g),
                                urgent: t.urgent,
                            });
                        }
                    }
                    SyncPart { proc: p, by_loc }
                })
                .collect();
            sync.push(SyncTable { action, parts });
        }

        let flows: Vec<CompiledFlow> = self
            .flows()
            .iter()
            .map(|f| CompiledFlow {
                target: f.target,
                ty: self.ty_of(f.target),
                name: self.name_of(f.target).to_string(),
                reads: f.expr.vars(),
                prog: compile_prog(&f.expr, optimize),
            })
            .collect();

        let n_vars = self.vars().len();
        let advance_flow_mask = if optimize {
            flow_mask_from(
                &flows,
                n_vars,
                rated.iter().enumerate().filter(|&(_, &r)| r).map(|(i, _)| VarId(i)),
            )
        } else {
            u64::MAX
        };
        if optimize {
            for ct in trans.iter_mut().flatten() {
                ct.flow_mask = flow_mask_from(&flows, n_vars, ct.effects.iter().map(|eff| eff.var));
            }
        }

        let base_rates =
            self.vars().iter().map(|v| if v.ty == VarType::Clock { 1.0 } else { 0.0 }).collect();

        let has_invariants = invariants.iter().flatten().any(Option::is_some);
        let has_rates = rated.iter().any(|&r| r);
        let tables = StepTables {
            tau,
            markov,
            sync,
            invariants,
            trans,
            flows,
            base_rates,
            has_invariants,
            has_rates,
            advance_flow_mask,
        };
        #[cfg(debug_assertions)]
        if let Err(e) = tables.verify_bytecode() {
            panic!("internal error: compiled bytecode failed verification: {e}");
        }
        tables
    }
}

// ---------------------------------------------------------------------------
// Runtime: guard solving
// ---------------------------------------------------------------------------

impl SolveScratch {
    fn push_slot(&mut self) -> usize {
        if self.depth == self.sets.len() {
            self.sets.push(IntervalSet::empty());
        }
        self.depth += 1;
        self.depth - 1
    }

    /// Runs a compiled guard; the result is left in `sets[0]` with
    /// `depth == 1`. The caller must reset `depth` after consuming it.
    fn run<P: ProfileHooks>(
        &mut self,
        prog: &SolveProg,
        nu: &Valuation,
        rates: &[f64],
        prof: &mut P,
    ) -> Result<(), EvalError> {
        self.depth = 0;
        self.affs.clear();
        prof.eval_begin();
        let mut pc = 0usize;
        while pc < prog.ops.len() {
            if P::ENABLED {
                prof.eval_op(solve_op_index(&prog.ops[pc]));
            }
            match &prog.ops[pc] {
                SolveOp::SetTrue => {
                    let i = self.push_slot();
                    self.sets[i].set_all();
                }
                SolveOp::SetFalse => {
                    let i = self.push_slot();
                    self.sets[i].clear();
                }
                SolveOp::SetVar(v) => {
                    let i = self.push_slot();
                    match nu.get(*v)? {
                        Value::Bool(true) => self.sets[i].set_all(),
                        Value::Bool(false) => self.sets[i].clear(),
                        other => {
                            return Err(EvalError::TypeConfusion {
                                context: format!("numeric variable {other} as guard"),
                            })
                        }
                    }
                }
                SolveOp::Complement => {
                    let i = self.depth - 1;
                    self.sets[i].complement_into(&mut self.t1);
                    std::mem::swap(&mut self.sets[i], &mut self.t1);
                }
                SolveOp::Intersect => {
                    let i = self.depth - 2;
                    self.sets[i].intersect_into(&self.sets[i + 1], &mut self.t1);
                    std::mem::swap(&mut self.sets[i], &mut self.t1);
                    self.depth -= 1;
                }
                SolveOp::Union => {
                    let i = self.depth - 2;
                    self.sets[i].union_into(&self.sets[i + 1], &mut self.t1);
                    std::mem::swap(&mut self.sets[i], &mut self.t1);
                    self.depth -= 1;
                }
                SolveOp::Xor => {
                    let i = self.depth - 2;
                    self.sets[i + 1].complement_into(&mut self.t1);
                    self.sets[i].intersect_into(&self.t1, &mut self.t2);
                    self.sets[i].complement_into(&mut self.t1);
                    self.sets[i + 1].intersect_into(&self.t1, &mut self.t3);
                    self.t2.union_into(&self.t3, &mut self.t1);
                    std::mem::swap(&mut self.sets[i], &mut self.t1);
                    self.depth -= 1;
                }
                op @ (SolveOp::BoolEq | SolveOp::BoolNe) => {
                    let i = self.depth - 2;
                    self.sets[i].intersect_into(&self.sets[i + 1], &mut self.t2);
                    self.sets[i].complement_into(&mut self.t1);
                    self.sets[i + 1].complement_into(&mut self.t3);
                    self.t1.intersect_into(&self.t3, &mut self.t4);
                    self.t2.union_into(&self.t4, &mut self.t1);
                    if matches!(op, SolveOp::BoolNe) {
                        self.t1.complement_into(&mut self.t2);
                        std::mem::swap(&mut self.sets[i], &mut self.t2);
                    } else {
                        std::mem::swap(&mut self.sets[i], &mut self.t1);
                    }
                    self.depth -= 1;
                }
                SolveOp::IteSet => {
                    let i = self.depth - 3; // [c, t, e]
                    self.sets[i + 1].intersect_into(&self.sets[i], &mut self.t1);
                    self.sets[i].complement_into(&mut self.t2);
                    self.sets[i + 2].intersect_into(&self.t2, &mut self.t3);
                    self.t1.union_into(&self.t3, &mut self.t2);
                    std::mem::swap(&mut self.sets[i], &mut self.t2);
                    self.depth -= 2;
                }
                SolveOp::Cmp(cmp) => {
                    let fb = self.affs.pop().expect("aff stack underflow");
                    let fa = self.affs.pop().expect("aff stack underflow");
                    let i = self.push_slot();
                    solve_cmp_into(*cmp, Aff { k: fa.k - fb.k, m: fa.m - fb.m }, &mut self.sets[i]);
                }
                SolveOp::CmpVarConst(cmp, v, kc) => {
                    let x = nu.get(*v)?.as_real()?;
                    let m = rates.get(v.0).copied().unwrap_or(0.0);
                    let i = self.push_slot();
                    solve_cmp_into(*cmp, Aff { k: x - kc, m }, &mut self.sets[i]);
                }
                SolveOp::CmpConstVar(cmp, kc, v) => {
                    let x = nu.get(*v)?.as_real()?;
                    let m = rates.get(v.0).copied().unwrap_or(0.0);
                    let i = self.push_slot();
                    solve_cmp_into(*cmp, Aff { k: kc - x, m: -m }, &mut self.sets[i]);
                }
                SolveOp::CmpVarConstAnd(cmp, v, kc) => {
                    let x = nu.get(*v)?.as_real()?;
                    let m = rates.get(v.0).copied().unwrap_or(0.0);
                    solve_cmp_into(*cmp, Aff { k: x - kc, m }, &mut self.t2);
                    let i = self.depth - 1;
                    self.sets[i].intersect_into(&self.t2, &mut self.t1);
                    std::mem::swap(&mut self.sets[i], &mut self.t1);
                }
                SolveOp::CmpVarConstOr(cmp, v, kc) => {
                    let x = nu.get(*v)?.as_real()?;
                    let m = rates.get(v.0).copied().unwrap_or(0.0);
                    solve_cmp_into(*cmp, Aff { k: x - kc, m }, &mut self.t2);
                    let i = self.depth - 1;
                    self.sets[i].union_into(&self.t2, &mut self.t1);
                    std::mem::swap(&mut self.sets[i], &mut self.t1);
                }
                SolveOp::AffConst(k) => self.affs.push(Aff::constant(*k)),
                SolveOp::AffVar(v) => {
                    let k = nu.get(*v)?.as_real()?;
                    self.affs.push(Aff { k, m: rates.get(v.0).copied().unwrap_or(0.0) });
                }
                SolveOp::AffNeg => {
                    let a = self.affs.pop().expect("aff stack underflow");
                    self.affs.push(Aff { k: -a.k, m: -a.m });
                }
                SolveOp::AffAdd => {
                    let fb = self.affs.pop().expect("aff stack underflow");
                    let fa = self.affs.pop().expect("aff stack underflow");
                    self.affs.push(Aff { k: fa.k + fb.k, m: fa.m + fb.m });
                }
                SolveOp::AffSub => {
                    let fb = self.affs.pop().expect("aff stack underflow");
                    let fa = self.affs.pop().expect("aff stack underflow");
                    self.affs.push(Aff { k: fa.k - fb.k, m: fa.m - fb.m });
                }
                SolveOp::AffMul(c) => {
                    let fb = self.affs.pop().expect("aff stack underflow");
                    let fa = self.affs.pop().expect("aff stack underflow");
                    if fa.is_constant() {
                        self.affs.push(Aff { k: fa.k * fb.k, m: fa.k * fb.m });
                    } else if fb.is_constant() {
                        self.affs.push(Aff { k: fa.k * fb.k, m: fa.m * fb.k });
                    } else {
                        return Err(EvalError::NonLinear {
                            context: prog.ctx[*c as usize].clone(),
                        });
                    }
                }
                SolveOp::AffDiv(c) => {
                    let fb = self.affs.pop().expect("aff stack underflow");
                    let fa = self.affs.pop().expect("aff stack underflow");
                    if !fb.is_constant() {
                        return Err(EvalError::NonLinear {
                            context: prog.ctx[*c as usize].clone(),
                        });
                    }
                    if fb.k == 0.0 {
                        return Err(EvalError::DivisionByZero);
                    }
                    self.affs.push(Aff { k: fa.k / fb.k, m: fa.m / fb.k });
                }
                op @ (SolveOp::AffMin(c) | SolveOp::AffMax(c)) => {
                    let fb = self.affs.pop().expect("aff stack underflow");
                    let fa = self.affs.pop().expect("aff stack underflow");
                    if fa.m == fb.m {
                        // Parallel lines (constants included): decided by
                        // intercepts.
                        let k = if matches!(op, SolveOp::AffMin(_)) {
                            fa.k.min(fb.k)
                        } else {
                            fa.k.max(fb.k)
                        };
                        self.affs.push(Aff { k, m: fa.m });
                    } else {
                        return Err(EvalError::NonLinear {
                            context: prog.ctx[*c as usize].clone(),
                        });
                    }
                }
                SolveOp::AffBranch { ctx, else_skip } => {
                    self.depth -= 1;
                    let cond = &self.sets[self.depth];
                    if set_is_all(cond) {
                        // Fall through into the then-branch.
                    } else if cond.is_empty() {
                        pc += *else_skip as usize;
                    } else {
                        return Err(EvalError::NonLinear {
                            context: prog.ctx[*ctx as usize].clone(),
                        });
                    }
                }
                SolveOp::AffJump(n) => pc += *n as usize,
                SolveOp::SetVarNot(v) => {
                    let i = self.push_slot();
                    match nu.get(*v)? {
                        Value::Bool(true) => self.sets[i].clear(),
                        Value::Bool(false) => self.sets[i].set_all(),
                        other => {
                            return Err(EvalError::TypeConfusion {
                                context: format!("numeric variable {other} as guard"),
                            })
                        }
                    }
                }
                SolveOp::AffSelVar { v, t, e } => match nu.get(*v)? {
                    Value::Bool(b) => self.affs.push(Aff::constant(if b { *t } else { *e })),
                    other => {
                        return Err(EvalError::TypeConfusion {
                            context: format!("numeric variable {other} as guard"),
                        })
                    }
                },
            }
            pc += 1;
        }
        debug_assert_eq!(self.depth, 1, "guard program leaves one set");
        Ok(())
    }

    /// Evaluates a recognized whole-program shape straight into `out` —
    /// no stack machine, no per-op dispatch. Bit-identical to running the
    /// fused program: same variable read order, same errors, and (for
    /// [`GuardSpec::Conj`]) an intersection fold that matches any
    /// association the program used, since `intersect_into` derives
    /// endpoints by min/max selection only.
    fn run_spec_into(
        &mut self,
        spec: &GuardSpec,
        nu: &Valuation,
        rates: &[f64],
        out: &mut IntervalSet,
    ) -> Result<(), EvalError> {
        let bool_window = |v: VarId, negate: bool, out: &mut IntervalSet| match nu.get(v)? {
            Value::Bool(b) => {
                if b != negate {
                    out.set_all();
                } else {
                    out.clear();
                }
                Ok(())
            }
            other => Err(EvalError::TypeConfusion {
                context: format!("numeric variable {other} as guard"),
            }),
        };
        match spec {
            GuardSpec::BoolVar(v) => bool_window(*v, false, out)?,
            GuardSpec::BoolVarNot(v) => bool_window(*v, true, out)?,
            GuardSpec::CmpVarConst(op, v, k) => {
                let x = nu.get(*v)?.as_real()?;
                let m = rates.get(v.0).copied().unwrap_or(0.0);
                solve_cmp_into(*op, Aff { k: x - k, m }, out);
            }
            GuardSpec::CmpConstVar(op, k, v) => {
                let x = nu.get(*v)?.as_real()?;
                let m = rates.get(v.0).copied().unwrap_or(0.0);
                solve_cmp_into(*op, Aff { k: k - x, m: -m }, out);
            }
            GuardSpec::Conj(atoms) => {
                let (op0, v0, k0) = atoms[0];
                let x = nu.get(v0)?.as_real()?;
                let m = rates.get(v0.0).copied().unwrap_or(0.0);
                solve_cmp_into(op0, Aff { k: x - k0, m }, out);
                for &(op, v, k) in &atoms[1..] {
                    let x = nu.get(v)?.as_real()?;
                    let m = rates.get(v.0).copied().unwrap_or(0.0);
                    solve_cmp_into(op, Aff { k: x - k, m }, &mut self.t1);
                    out.intersect_into(&self.t1, &mut self.t2);
                    std::mem::swap(out, &mut self.t2);
                }
            }
        }
        Ok(())
    }

    /// Runs a [`GuardCode::DelayFree`] program on plain `bool`/`f64`
    /// stacks. Sound because every variable the program reads has rate 0
    /// in every location (checked at compile time): each affine form is
    /// constant, so each pushed set is exactly `[0, ∞)` or `∅` and the
    /// set algebra collapses to Boolean algebra. Ops execute in the same
    /// order with the same error cases as [`SolveScratch::run`], keeping
    /// diagnostics identical; the `NonLinear` arms of that interpreter
    /// are unreachable here (constant operands, all-or-nothing branch
    /// conditions).
    fn run_bool<P: ProfileHooks>(
        &mut self,
        prog: &SolveProg,
        nu: &Valuation,
        prof: &mut P,
    ) -> Result<bool, EvalError> {
        self.bools.clear();
        self.consts.clear();
        prof.eval_begin();
        let mut pc = 0usize;
        while pc < prog.ops.len() {
            if P::ENABLED {
                prof.eval_op(solve_op_index(&prog.ops[pc]));
            }
            match &prog.ops[pc] {
                SolveOp::SetTrue => self.bools.push(true),
                SolveOp::SetFalse => self.bools.push(false),
                SolveOp::SetVar(v) => match nu.get(*v)? {
                    Value::Bool(b) => self.bools.push(b),
                    other => {
                        return Err(EvalError::TypeConfusion {
                            context: format!("numeric variable {other} as guard"),
                        })
                    }
                },
                SolveOp::Complement => {
                    let b = self.bools.last_mut().expect("bool stack underflow");
                    *b = !*b;
                }
                SolveOp::Intersect => {
                    let b = self.bools.pop().expect("bool stack underflow");
                    *self.bools.last_mut().expect("bool stack underflow") &= b;
                }
                SolveOp::Union => {
                    let b = self.bools.pop().expect("bool stack underflow");
                    *self.bools.last_mut().expect("bool stack underflow") |= b;
                }
                SolveOp::Xor | SolveOp::BoolNe => {
                    let b = self.bools.pop().expect("bool stack underflow");
                    *self.bools.last_mut().expect("bool stack underflow") ^= b;
                }
                SolveOp::BoolEq => {
                    let b = self.bools.pop().expect("bool stack underflow");
                    *self.bools.last_mut().expect("bool stack underflow") ^= !b;
                }
                SolveOp::IteSet => {
                    let e = self.bools.pop().expect("bool stack underflow");
                    let t = self.bools.pop().expect("bool stack underflow");
                    let c = self.bools.last_mut().expect("bool stack underflow");
                    *c = if *c { t } else { e };
                }
                SolveOp::Cmp(cmp) => {
                    let fb = self.consts.pop().expect("const stack underflow");
                    let fa = self.consts.pop().expect("const stack underflow");
                    self.bools.push(cmp_truth(*cmp, fa - fb));
                }
                SolveOp::CmpVarConst(cmp, v, kc) => {
                    let x = nu.get(*v)?.as_real()?;
                    self.bools.push(cmp_truth(*cmp, x - kc));
                }
                SolveOp::CmpConstVar(cmp, kc, v) => {
                    let x = nu.get(*v)?.as_real()?;
                    self.bools.push(cmp_truth(*cmp, kc - x));
                }
                SolveOp::AffConst(k) => self.consts.push(*k),
                SolveOp::AffVar(v) => self.consts.push(nu.get(*v)?.as_real()?),
                SolveOp::AffNeg => {
                    let k = self.consts.last_mut().expect("const stack underflow");
                    *k = -*k;
                }
                SolveOp::AffAdd => {
                    let fb = self.consts.pop().expect("const stack underflow");
                    *self.consts.last_mut().expect("const stack underflow") += fb;
                }
                SolveOp::AffSub => {
                    let fb = self.consts.pop().expect("const stack underflow");
                    *self.consts.last_mut().expect("const stack underflow") -= fb;
                }
                SolveOp::AffMul(_) => {
                    let fb = self.consts.pop().expect("const stack underflow");
                    *self.consts.last_mut().expect("const stack underflow") *= fb;
                }
                SolveOp::AffDiv(_) => {
                    let fb = self.consts.pop().expect("const stack underflow");
                    if fb == 0.0 {
                        return Err(EvalError::DivisionByZero);
                    }
                    *self.consts.last_mut().expect("const stack underflow") /= fb;
                }
                SolveOp::AffMin(_) => {
                    let fb = self.consts.pop().expect("const stack underflow");
                    let fa = self.consts.last_mut().expect("const stack underflow");
                    *fa = fa.min(fb);
                }
                SolveOp::AffMax(_) => {
                    let fb = self.consts.pop().expect("const stack underflow");
                    let fa = self.consts.last_mut().expect("const stack underflow");
                    *fa = fa.max(fb);
                }
                SolveOp::AffBranch { else_skip, .. } => {
                    let c = self.bools.pop().expect("bool stack underflow");
                    if !c {
                        pc += *else_skip as usize;
                    }
                }
                SolveOp::AffJump(n) => pc += *n as usize,
                SolveOp::SetVarNot(v) => match nu.get(*v)? {
                    Value::Bool(b) => self.bools.push(!b),
                    other => {
                        return Err(EvalError::TypeConfusion {
                            context: format!("numeric variable {other} as guard"),
                        })
                    }
                },
                SolveOp::AffSelVar { v, t, e } => match nu.get(*v)? {
                    Value::Bool(b) => self.consts.push(if b { *t } else { *e }),
                    other => {
                        return Err(EvalError::TypeConfusion {
                            context: format!("numeric variable {other} as guard"),
                        })
                    }
                },
                SolveOp::CmpVarConstAnd(cmp, v, kc) => {
                    let x = nu.get(*v)?.as_real()?;
                    *self.bools.last_mut().expect("bool stack underflow") &=
                        cmp_truth(*cmp, x - kc);
                }
                SolveOp::CmpVarConstOr(cmp, v, kc) => {
                    let x = nu.get(*v)?.as_real()?;
                    *self.bools.last_mut().expect("bool stack underflow") |=
                        cmp_truth(*cmp, x - kc);
                }
            }
            pc += 1;
        }
        debug_assert_eq!(self.bools.len(), 1, "guard program leaves one value");
        Ok(self.bools.pop().expect("bool stack underflow"))
    }
}

/// Truth of a recognized whole-program shape on the Boolean tier — the
/// [`GuardCode::DelayFree`] counterpart of
/// [`SolveScratch::run_spec_into`]. [`GuardSpec::Conj`] evaluates every
/// atom (no short-circuit), like the program it replaces.
fn spec_truth(spec: &GuardSpec, nu: &Valuation) -> Result<bool, EvalError> {
    let bool_var = |v: VarId| match nu.get(v)? {
        Value::Bool(b) => Ok(b),
        other => {
            Err(EvalError::TypeConfusion { context: format!("numeric variable {other} as guard") })
        }
    };
    match spec {
        GuardSpec::BoolVar(v) => bool_var(*v),
        GuardSpec::BoolVarNot(v) => Ok(!bool_var(*v)?),
        GuardSpec::CmpVarConst(op, v, k) => Ok(cmp_truth(*op, nu.get(*v)?.as_real()? - k)),
        GuardSpec::CmpConstVar(op, k, v) => Ok(cmp_truth(*op, k - nu.get(*v)?.as_real()?)),
        GuardSpec::Conj(atoms) => {
            let mut acc = true;
            for &(op, v, k) in atoms.iter() {
                acc &= cmp_truth(op, nu.get(v)?.as_real()? - k);
            }
            Ok(acc)
        }
    }
}

/// Evaluates a [`GuardCode::DelayFree`] program's truth, taking the
/// [`GuardSpec`] shortcut when one was recognized and profiling is off
/// (profiled runs execute the program so its opcodes stay observable).
fn delay_free_truth<P: ProfileHooks>(
    prog: &SolveProg,
    nu: &Valuation,
    sv: &mut SolveScratch,
    prof: &mut P,
) -> Result<bool, EvalError> {
    if !P::ENABLED {
        if let Some(spec) = &prog.spec {
            return spec_truth(spec, nu);
        }
    }
    sv.run_bool(prog, nu, prof)
}

/// Truth of `k cmp 0` — the `m == 0` arm of [`solve_cmp_into`], which is
/// the only arm a delay-free program can reach.
fn cmp_truth(op: BinOp, k: f64) -> bool {
    match op {
        BinOp::Eq => k == 0.0,
        BinOp::Ne => k != 0.0,
        BinOp::Lt => k < 0.0,
        BinOp::Le => k <= 0.0,
        BinOp::Gt => k > 0.0,
        BinOp::Ge => k >= 0.0,
        _ => unreachable!("caller dispatches comparisons only"),
    }
}

/// Allocation-free equivalent of `set == IntervalSet::all()`: true iff the
/// (normalized) set is exactly `[0, ∞)`.
fn set_is_all(s: &IntervalSet) -> bool {
    matches!(s.intervals(),
        [iv] if iv.lo() == 0.0 && iv.lo_closed() && iv.hi() == f64::INFINITY && !iv.hi_closed())
}

/// Allocation-free mirror of the legacy `solve_cmp`: solves
/// `f(d) cmp 0` into `out`. Output-identical to the legacy routine,
/// including the point/complement structure of `Eq`/`Ne`.
fn solve_cmp_into(op: BinOp, f: Aff, out: &mut IntervalSet) {
    out.clear();
    if f.m == 0.0 {
        let truth = match op {
            BinOp::Eq => f.k == 0.0,
            BinOp::Ne => f.k != 0.0,
            BinOp::Lt => f.k < 0.0,
            BinOp::Le => f.k <= 0.0,
            BinOp::Gt => f.k > 0.0,
            BinOp::Ge => f.k >= 0.0,
            _ => unreachable!("caller dispatches comparisons only"),
        };
        if truth {
            out.set_all();
        }
        return;
    }
    let root = -f.k / f.m;
    let op = if f.m > 0.0 {
        op
    } else {
        match op {
            BinOp::Lt => BinOp::Gt,
            BinOp::Le => BinOp::Ge,
            BinOp::Gt => BinOp::Lt,
            BinOp::Ge => BinOp::Le,
            other => other,
        }
    };
    match op {
        BinOp::Eq => {
            if root >= 0.0 {
                out.set_point(root);
            }
        }
        BinOp::Ne => {
            if root >= 0.0 {
                // Complement of the point {root} in [0, ∞): a gap below
                // (empty when root == 0 or root == ∞ collapses it) and an
                // open tail above.
                if let Some(gap) = Interval::new(0.0, root, true, false) {
                    out.push_interval_unchecked(gap);
                }
                if let Some(tail) = Interval::new(root, f64::INFINITY, false, false) {
                    out.push_interval_unchecked(tail);
                }
            } else {
                out.set_all();
            }
        }
        BinOp::Lt => {
            if let Some(iv) = Interval::closed_open(0.0, root) {
                out.push_interval_unchecked(iv);
            }
        }
        BinOp::Le => {
            if let Some(iv) = Interval::closed(0.0, root) {
                out.push_interval_unchecked(iv);
            }
        }
        BinOp::Gt => {
            if let Some(iv) = Interval::new(root.max(0.0), f64::INFINITY, root < 0.0, false) {
                out.push_interval_unchecked(iv);
            }
        }
        BinOp::Ge => {
            if let Some(iv) = Interval::new(root.max(0.0), f64::INFINITY, true, false) {
                out.push_interval_unchecked(iv);
            }
        }
        _ => unreachable!(),
    }
}

/// Evaluates a guard code into `out` using the solver scratch.
fn eval_guard<P: ProfileHooks>(
    code: &GuardCode,
    nu: &Valuation,
    rates: &[f64],
    sv: &mut SolveScratch,
    out: &mut IntervalSet,
    prof: &mut P,
) -> Result<(), EvalError> {
    match code {
        GuardCode::Static(set) => out.copy_from(set),
        GuardCode::Prog(prog) => {
            if !P::ENABLED {
                if let Some(spec) = &prog.spec {
                    return sv.run_spec_into(spec, nu, rates, out);
                }
            }
            sv.run(prog, nu, rates, prof)?;
            std::mem::swap(out, &mut sv.sets[0]);
            sv.depth = 0;
        }
        GuardCode::DelayFree(prog) => {
            if delay_free_truth(prog, nu, sv, prof)? {
                out.set_all();
            } else {
                out.clear();
            }
        }
        GuardCode::Fallback(e) => {
            let rate = |v: VarId| rates.get(v.0).copied().unwrap_or(0.0);
            let env = DelayEnv::new(nu, &rate);
            *out = solve(e, &env)?;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Runtime: value programs
// ---------------------------------------------------------------------------

fn run_eval<P: ProfileHooks>(
    prog: &EvalProg,
    nu: &Valuation,
    stack: &mut Vec<Value>,
    prof: &mut P,
) -> Result<Value, EvalError> {
    if !P::ENABLED {
        if let Some(spec) = &prog.spec {
            return run_eval_spec(spec, nu);
        }
    }
    stack.clear();
    prof.eval_begin();
    let mut pc = 0usize;
    while pc < prog.ops.len() {
        if P::ENABLED {
            prof.eval_op(eval_op_index(&prog.ops[pc]));
        }
        match &prog.ops[pc] {
            EvalOp::Const(v) => stack.push(*v),
            EvalOp::Var(v) => stack.push(nu.get(*v)?),
            EvalOp::Not => {
                let v = stack.pop().expect("value stack underflow");
                stack.push(Value::Bool(!v.as_bool()?));
            }
            EvalOp::Neg => {
                let v = stack.pop().expect("value stack underflow");
                let r = match v {
                    Value::Int(i) => i.checked_neg().map(Value::Int).ok_or(EvalError::Overflow)?,
                    Value::Real(r) => Value::Real(-r),
                    v => return Err(EvalError::TypeConfusion { context: format!("negating {v}") }),
                };
                stack.push(r);
            }
            EvalOp::Bin(op) => {
                let vb = stack.pop().expect("value stack underflow");
                let va = stack.pop().expect("value stack underflow");
                stack.push(eval_bin(*op, va, vb)?);
            }
            EvalOp::AndJump(n) => {
                let cond = stack.pop().expect("value stack underflow").as_bool()?;
                if !cond {
                    stack.push(Value::Bool(false));
                    pc += *n as usize;
                }
            }
            EvalOp::OrJump(n) => {
                let cond = stack.pop().expect("value stack underflow").as_bool()?;
                if cond {
                    stack.push(Value::Bool(true));
                    pc += *n as usize;
                }
            }
            EvalOp::ImpliesJump(n) => {
                let cond = stack.pop().expect("value stack underflow").as_bool()?;
                if !cond {
                    stack.push(Value::Bool(true));
                    pc += *n as usize;
                }
            }
            EvalOp::CastBool => {
                let v = stack.pop().expect("value stack underflow");
                stack.push(Value::Bool(v.as_bool()?));
            }
            EvalOp::Xor => {
                let b = stack.pop().expect("value stack underflow").as_bool()?;
                let a = stack.pop().expect("value stack underflow").as_bool()?;
                stack.push(Value::Bool(a ^ b));
            }
            EvalOp::JumpIfFalse(n) => {
                let cond = stack.pop().expect("value stack underflow").as_bool()?;
                if !cond {
                    pc += *n as usize;
                }
            }
            EvalOp::Jump(n) => pc += *n as usize,
            EvalOp::VarConstBin(op, v, k) => {
                let a = nu.get(*v)?;
                stack.push(eval_bin(*op, a, *k)?);
            }
            EvalOp::VarVarBin(op, va, vb) => {
                let a = nu.get(*va)?;
                let b = nu.get(*vb)?;
                stack.push(eval_bin(*op, a, b)?);
            }
            EvalOp::BinConst(op, k) => {
                let a = stack.pop().expect("value stack underflow");
                stack.push(eval_bin(*op, a, *k)?);
            }
            EvalOp::VarCmpConstJumpFalse { op, v, k, skip } => {
                let a = nu.get(*v)?;
                let cond = eval_bin(*op, a, *k)?.as_bool()?;
                if !cond {
                    pc += *skip as usize;
                }
            }
            EvalOp::VarSelConst { v, t, e } => {
                let c = nu.get(*v)?.as_bool()?;
                stack.push(if c { *t } else { *e });
            }
        }
        pc += 1;
    }
    Ok(stack.pop().expect("value program leaves one value"))
}

/// Evaluates a recognized whole-program value shape without the stack
/// machine — same read order and errors as running the fused program.
fn run_eval_spec(spec: &EvalSpec, nu: &Valuation) -> Result<Value, EvalError> {
    match spec {
        EvalSpec::Const(v) => Ok(*v),
        EvalSpec::Var(v) => nu.get(*v),
        EvalSpec::VarConstBin(op, v, k) => eval_bin(*op, nu.get(*v)?, *k),
        EvalSpec::VarVarBin(op, a, b) => eval_bin(*op, nu.get(*a)?, nu.get(*b)?),
        EvalSpec::VarSelConst(v, t, e) => {
            let c = nu.get(*v)?.as_bool()?;
            Ok(if c { *t } else { *e })
        }
        EvalSpec::VarConstBinConst(op1, v, k1, op2, k2) => {
            eval_bin(*op2, eval_bin(*op1, nu.get(*v)?, *k1)?, *k2)
        }
    }
}

// ---------------------------------------------------------------------------
// Runtime: network stepping
// ---------------------------------------------------------------------------

impl Network {
    /// Recomputes the active rates into `rates` (clock baseline overlaid
    /// with the current locations' rates) — value-identical to
    /// [`Network::active_rates`].
    fn refresh_rates(&self, t: &StepTables, rates: &mut Vec<f64>, state: &NetState) {
        // Rate-free models keep an all-zero buffer forever: once filled it can
        // never change (base rates are zero and no location overlays a nonzero
        // rate), so the refresh is a no-op after the first call.
        if !t.has_rates && rates.len() == t.base_rates.len() {
            return;
        }
        rates.clear();
        rates.extend_from_slice(&t.base_rates);
        for (p, a) in self.automata().iter().enumerate() {
            for &(v, r) in &a.locations[state.locs[p].0].rates {
                rates[v.0] = r;
            }
        }
    }

    /// Recomputes the per-variable flow rates of `state` into the scratch
    /// rate buffer — the single refresh a rated stepping sequence (the
    /// `*_rated` methods) shares for a whole step. Rates depend only on
    /// the current locations, so the buffer stays valid until a transition
    /// fires; delays never invalidate it.
    pub fn rates_refresh(&self, t: &StepTables, s: &mut StepScratch, state: &NetState) {
        self.refresh_rates(t, &mut s.rates, state);
    }

    /// Allocation-free [`Network::delay_window`]: writes the invariant
    /// delay window of `state` into `out`.
    ///
    /// # Errors
    /// Identical to the legacy method.
    pub fn delay_window_into(
        &self,
        t: &StepTables,
        s: &mut StepScratch,
        state: &NetState,
        out: &mut IntervalSet,
    ) -> Result<(), EvalError> {
        self.refresh_rates(t, &mut s.rates, state);
        self.delay_window_rated(t, s, state, out)
    }

    /// [`Network::delay_window_into`] without the rate refresh: evaluates
    /// against the rates left in the scratch by [`Network::rates_refresh`]
    /// (or any refreshing `*_into` call). Valid as long as no transition
    /// has fired since the refresh — bit-identical to the refreshing form.
    ///
    /// # Errors
    /// Identical to the legacy method.
    pub fn delay_window_rated(
        &self,
        t: &StepTables,
        s: &mut StepScratch,
        state: &NetState,
        out: &mut IntervalSet,
    ) -> Result<(), EvalError> {
        self.delay_window_rated_prof(t, s, state, out, &mut NoopProfile)
    }

    /// [`Network::delay_window_rated`] with profiling hooks: records one
    /// delay-window solve plus every guard-program opcode executed. The
    /// [`NoopProfile`] instantiation is what the unprofiled entry point
    /// monomorphizes to — zero extra work.
    ///
    /// # Errors
    /// Identical to the legacy method.
    pub fn delay_window_rated_prof<P: ProfileHooks>(
        &self,
        t: &StepTables,
        s: &mut StepScratch,
        state: &NetState,
        out: &mut IntervalSet,
        prof: &mut P,
    ) -> Result<(), EvalError> {
        prof.delay_solve();
        out.set_all();
        if !t.has_invariants {
            // The general path below reduces to `prefix_from_zero` on
            // `[0, ∞)`, which reproduces `set_all` bit-for-bit.
            return Ok(());
        }
        for (p, by_loc) in t.invariants.iter().enumerate() {
            let Some(code) = &by_loc[state.locs[p].0] else { continue };
            eval_guard(code, &state.nu, &s.rates, &mut s.solver, &mut s.guard_result, prof)?;
            let sat = &s.guard_result;
            let holds_now =
                sat.contains(0.0) || sat.inf().is_some_and(|lo| lo <= INVARIANT_TOLERANCE);
            if !holds_now {
                let a = &self.automata()[p];
                return Err(EvalError::InvariantViolated {
                    automaton: a.name.clone(),
                    location: a.locations[state.locs[p].0].name.clone(),
                });
            }
            out.intersect_into(sat, &mut s.temp_w);
            std::mem::swap(out, &mut s.temp_w);
        }
        if let Some((hi, closed)) = out.prefix_from_zero() {
            out.set_interval(
                Interval::new(0.0, hi, true, closed)
                    .expect("prefix window is nonempty: contains 0"),
            );
            return Ok(());
        }
        if let Some(first) = out.intervals().first().copied() {
            if first.lo() <= INVARIANT_TOLERANCE {
                out.set_interval(
                    Interval::new(0.0, first.hi(), true, first.hi_closed())
                        .expect("boundary window is nonempty"),
                );
                return Ok(());
            }
        }
        out.set_point(0.0);
        Ok(())
    }

    /// Allocation-free [`Network::guarded_candidates`]: fills the scratch
    /// candidate pool (read it back via [`StepScratch::candidates`]) in the
    /// exact legacy enumeration order.
    ///
    /// # Errors
    /// Identical to the legacy method.
    pub fn guarded_candidates_into(
        &self,
        t: &StepTables,
        s: &mut StepScratch,
        state: &NetState,
    ) -> Result<(), EvalError> {
        self.refresh_rates(t, &mut s.rates, state);
        self.guarded_candidates_rated(t, s, state)
    }

    /// [`Network::guarded_candidates_into`] without the rate refresh (see
    /// [`Network::delay_window_rated`] for the contract).
    ///
    /// # Errors
    /// Identical to the legacy method.
    pub fn guarded_candidates_rated(
        &self,
        t: &StepTables,
        s: &mut StepScratch,
        state: &NetState,
    ) -> Result<(), EvalError> {
        self.guarded_candidates_rated_prof(t, s, state, &mut NoopProfile)
    }

    /// [`Network::guarded_candidates_rated`] with profiling hooks: records
    /// one guard evaluation (with its enabled/disabled outcome) per guard
    /// visited, plus every guard-program opcode executed.
    ///
    /// # Errors
    /// Identical to the legacy method.
    pub fn guarded_candidates_rated_prof<P: ProfileHooks>(
        &self,
        t: &StepTables,
        s: &mut StepScratch,
        state: &NetState,
        prof: &mut P,
    ) -> Result<(), EvalError> {
        s.n_cands = 0;

        // Internal (τ) guarded transitions fire alone. Delay-free guards
        // short-circuit on the Boolean interpreter: disabled guards cost
        // one `run_bool`, enabled ones a `set_all` — no interval-set
        // round-trip (the windows are identical either way).
        for (p, by_loc) in t.tau.iter().enumerate() {
            for cg in &by_loc[state.locs[p].0] {
                let all = if let GuardCode::DelayFree(prog) = &cg.guard {
                    let enabled = delay_free_truth(prog, &state.nu, &mut s.solver, prof)?;
                    prof.guard_eval(p, cg.trans.0, enabled);
                    if !enabled {
                        continue;
                    }
                    true
                } else {
                    eval_guard(
                        &cg.guard,
                        &state.nu,
                        &s.rates,
                        &mut s.solver,
                        &mut s.guard_result,
                        prof,
                    )?;
                    let enabled = !s.guard_result.is_empty();
                    prof.guard_eval(p, cg.trans.0, enabled);
                    if !enabled {
                        continue;
                    }
                    false
                };
                let c = next_cand(&mut s.cands, &mut s.n_cands);
                c.action = ActionId::TAU;
                c.parts.clear();
                c.parts.push((ProcId(p), cg.trans));
                if all {
                    c.window.set_all();
                } else {
                    std::mem::swap(&mut c.window, &mut s.guard_result);
                }
                c.urgent = cg.urgent;
            }
        }

        // Synchronizing actions: every participant must join.
        for table in &t.sync {
            // Collect each participant's locally enabled a-transitions.
            s.n_opts = 0;
            s.opt_ranges.clear();
            let mut possible = true;
            for part in &table.parts {
                let start = s.n_opts;
                for cg in &part.by_loc[state.locs[part.proc.0].0] {
                    let all = if let GuardCode::DelayFree(prog) = &cg.guard {
                        let enabled = delay_free_truth(prog, &state.nu, &mut s.solver, prof)?;
                        prof.guard_eval(part.proc.0, cg.trans.0, enabled);
                        if !enabled {
                            continue;
                        }
                        true
                    } else {
                        eval_guard(
                            &cg.guard,
                            &state.nu,
                            &s.rates,
                            &mut s.solver,
                            &mut s.guard_result,
                            prof,
                        )?;
                        let enabled = !s.guard_result.is_empty();
                        prof.guard_eval(part.proc.0, cg.trans.0, enabled);
                        if !enabled {
                            continue;
                        }
                        false
                    };
                    let o = next_opt(&mut s.opts, &mut s.n_opts);
                    o.trans = cg.trans;
                    if all {
                        o.window.set_all();
                    } else {
                        std::mem::swap(&mut o.window, &mut s.guard_result);
                    }
                    o.urgent = cg.urgent;
                }
                if s.n_opts == start {
                    possible = false;
                    break;
                }
                s.opt_ranges.push((start, s.n_opts));
            }
            if !possible {
                continue;
            }
            // Cross product of the participants' choices, last participant
            // varying fastest (legacy order).
            s.n_combo_a = 0;
            {
                let c = next_combo(&mut s.combo_a, &mut s.n_combo_a);
                c.parts.clear();
                c.window.set_all();
                c.urgent = false;
            }
            for (pi, part) in table.parts.iter().enumerate() {
                let (lo, hi) = s.opt_ranges[pi];
                s.n_combo_b = 0;
                for ci in 0..s.n_combo_a {
                    for oi in lo..hi {
                        s.combo_a[ci].window.intersect_into(&s.opts[oi].window, &mut s.temp_w);
                        if s.temp_w.is_empty() {
                            continue;
                        }
                        let nc = next_combo(&mut s.combo_b, &mut s.n_combo_b);
                        nc.parts.clear();
                        nc.parts.extend_from_slice(&s.combo_a[ci].parts);
                        nc.parts.push((part.proc, s.opts[oi].trans));
                        std::mem::swap(&mut nc.window, &mut s.temp_w);
                        nc.urgent = s.combo_a[ci].urgent || s.opts[oi].urgent;
                    }
                }
                std::mem::swap(&mut s.combo_a, &mut s.combo_b);
                std::mem::swap(&mut s.n_combo_a, &mut s.n_combo_b);
                if s.n_combo_a == 0 {
                    break;
                }
            }
            for ci in 0..s.n_combo_a {
                let c = next_cand(&mut s.cands, &mut s.n_cands);
                c.action = table.action;
                c.parts.clear();
                c.parts.extend_from_slice(&s.combo_a[ci].parts);
                c.window.copy_from(&s.combo_a[ci].window);
                c.urgent = s.combo_a[ci].urgent;
            }
        }
        Ok(())
    }

    /// Allocation-free [`Network::markovian_candidates`]: fills the
    /// scratch Markovian list (read it back via
    /// [`StepScratch::markovian`]) in the legacy enumeration order.
    pub fn markovian_candidates_into(&self, t: &StepTables, s: &mut StepScratch, state: &NetState) {
        s.markov.clear();
        for (p, by_loc) in t.markov.iter().enumerate() {
            for &(t_id, rate) in &by_loc[state.locs[p].0] {
                s.markov.push((ProcId(p), t_id, rate));
            }
        }
    }

    /// In-place [`Network::advance`]: advances `state` by `d` against the
    /// caller-supplied (untruncated) invariant `window` — the same set the
    /// legacy method recomputes internally — including the
    /// boundary-overshoot retreat.
    ///
    /// # Errors
    /// Identical to the legacy method. On error the state may be partially
    /// advanced; callers reset per path.
    pub fn advance_mut(
        &self,
        t: &StepTables,
        s: &mut StepScratch,
        state: &mut NetState,
        d: f64,
        window: &IntervalSet,
    ) -> Result<(), EvalError> {
        self.refresh_rates(t, &mut s.rates, state);
        self.advance_rated(t, s, state, d, window)
    }

    /// [`Network::advance_mut`] without rate refreshes: advancing never
    /// changes locations, so the scratch rates stay valid through the
    /// internal boundary-overshoot retreats too (see
    /// [`Network::delay_window_rated`] for the contract).
    ///
    /// # Errors
    /// Identical to the legacy method. On error the state may be partially
    /// advanced; callers reset per path.
    pub fn advance_rated(
        &self,
        t: &StepTables,
        s: &mut StepScratch,
        state: &mut NetState,
        d: f64,
        window: &IntervalSet,
    ) -> Result<(), EvalError> {
        self.advance_rated_prof(t, s, state, d, window, &mut NoopProfile)
    }

    /// [`Network::advance_rated`] with profiling hooks: records the flow
    /// re-establishment opcodes and any invariant re-checks the
    /// boundary-overshoot retreat performs.
    ///
    /// # Errors
    /// Identical to the legacy method. On error the state may be partially
    /// advanced; callers reset per path.
    pub fn advance_rated_prof<P: ProfileHooks>(
        &self,
        t: &StepTables,
        s: &mut StepScratch,
        state: &mut NetState,
        d: f64,
        window: &IntervalSet,
        prof: &mut P,
    ) -> Result<(), EvalError> {
        debug_assert!(d >= 0.0, "negative delay");
        if !window.contains(d) {
            return Err(EvalError::DelayNotAllowed {
                requested: d,
                allowed_up_to: window.sup().unwrap_or(0.0),
            });
        }
        if t.has_invariants {
            s.backup.copy_from(state);
        }
        advance_unchecked_mut(t, &s.rates, &mut s.vals, state, d, prof)?;
        // Floating-point robustness: retreat from invariant-boundary
        // overshoot exactly like the legacy `advance`. Invariant-free
        // models have nothing to overshoot.
        if t.has_invariants && d > 0.0 && self.invariants_violated(t, s, state, prof) {
            for backoff in [1e-12, 1e-9] {
                state.copy_from(&s.backup);
                advance_unchecked_mut(t, &s.rates, &mut s.vals, state, d * (1.0 - backoff), prof)?;
                if !self.invariants_violated(t, s, state, prof) {
                    return Ok(());
                }
            }
            // Both retreats failed: return the full-d state, like legacy.
            state.copy_from(&s.backup);
            advance_unchecked_mut(t, &s.rates, &mut s.vals, state, d, prof)?;
        }
        Ok(())
    }

    /// True if [`Network::delay_window_rated`] would fail on `state`. The
    /// scratch rates are already valid at every call site (locations are
    /// unchanged since the caller's refresh).
    fn invariants_violated<P: ProfileHooks>(
        &self,
        t: &StepTables,
        s: &mut StepScratch,
        state: &NetState,
        prof: &mut P,
    ) -> bool {
        let mut out = std::mem::take(&mut s.inv_check);
        let violated = self.delay_window_rated_prof(t, s, state, &mut out, prof).is_err();
        s.inv_check = out;
        violated
    }

    /// In-place [`Network::apply`]: fires the global transition given by
    /// its participant list, applying effects (read against the
    /// pre-state), moving locations, and re-establishing flows.
    ///
    /// # Errors
    /// Identical to the legacy method. On error the state may be partially
    /// updated; callers reset per path.
    pub fn apply_mut(
        &self,
        t: &StepTables,
        s: &mut StepScratch,
        state: &mut NetState,
        parts: &[(ProcId, TransId)],
    ) -> Result<(), EvalError> {
        self.apply_mut_prof(t, s, state, parts, &mut NoopProfile)
    }

    /// [`Network::apply_mut`] with profiling hooks: records one firing per
    /// participant plus the effect- and flow-program opcodes executed.
    ///
    /// # Errors
    /// Identical to the legacy method. On error the state may be partially
    /// updated; callers reset per path.
    pub fn apply_mut_prof<P: ProfileHooks>(
        &self,
        t: &StepTables,
        s: &mut StepScratch,
        state: &mut NetState,
        parts: &[(ProcId, TransId)],
        prof: &mut P,
    ) -> Result<(), EvalError> {
        s.writes.clear();
        let mut flow_mask = 0u64;
        for &(p, t_id) in parts {
            prof.fired(p.0, t_id.0);
            let ct = &t.trans[p.0][t_id.0];
            flow_mask |= ct.flow_mask;
            for eff in &ct.effects {
                let v = run_eval(&eff.prog, &state.nu, &mut s.vals, prof)?;
                let v = eff.ty.canonicalize(v);
                if !eff.ty.admits(v) {
                    if let (VarType::Int { lo, hi }, Value::Int(i)) = (eff.ty, v) {
                        return Err(EvalError::IntOutOfRange {
                            variable: self.name_of(eff.var).to_string(),
                            value: i,
                            lo,
                            hi,
                        });
                    }
                    return Err(EvalError::TypeConfusion {
                        context: format!(
                            "effect on {} produced {}",
                            self.name_of(eff.var),
                            v.kind()
                        ),
                    });
                }
                s.writes.push((eff.var, v));
            }
            state.locs[p.0] = ct.to;
        }
        for i in 0..s.writes.len() {
            let (var, v) = s.writes[i];
            state.nu.set(var, v)?;
        }
        run_flows_inner(t, flow_mask, &mut s.vals, &mut state.nu, prof)
    }

    /// Compiles a standalone Boolean predicate (a property goal) for
    /// repeated window evaluation via
    /// [`Network::predicate_window_into`].
    pub fn compile_predicate(&self, e: &Expr) -> CompiledPredicate {
        self.compile_predicate_with(e, &CompileOptions::default())
    }

    /// [`Network::compile_predicate`] under explicit [`CompileOptions`]
    /// (pass [`CompileOptions::reference`] for the unfused reference
    /// predicate used by differential testing).
    pub fn compile_predicate_with(&self, e: &Expr, opts: &CompileOptions) -> CompiledPredicate {
        let rated = rated_vars(self);
        CompiledPredicate {
            code: specialize_delay_free(compile_guard(e, self, opts.optimize), &rated),
        }
    }

    /// Allocation-free equivalent of solving `pred` over the delay axis in
    /// `state` (the compiled counterpart of goal-window evaluation).
    ///
    /// # Errors
    /// Solver errors, as for guards.
    pub fn predicate_window_into(
        &self,
        s: &mut StepScratch,
        pred: &CompiledPredicate,
        state: &NetState,
        out: &mut IntervalSet,
    ) -> Result<(), EvalError> {
        self.active_rates_into(state, &mut s.rates);
        self.predicate_window_rated(s, pred, state, out)
    }

    /// [`Network::predicate_window_into`] without the rate refresh (see
    /// [`Network::delay_window_rated`] for the contract).
    ///
    /// # Errors
    /// Solver errors, as for guards.
    pub fn predicate_window_rated(
        &self,
        s: &mut StepScratch,
        pred: &CompiledPredicate,
        state: &NetState,
        out: &mut IntervalSet,
    ) -> Result<(), EvalError> {
        self.predicate_window_rated_prof(s, pred, state, out, &mut NoopProfile)
    }

    /// [`Network::predicate_window_rated`] with profiling hooks: records
    /// the predicate-program opcodes executed.
    ///
    /// # Errors
    /// Solver errors, as for guards.
    pub fn predicate_window_rated_prof<P: ProfileHooks>(
        &self,
        s: &mut StepScratch,
        pred: &CompiledPredicate,
        state: &NetState,
        out: &mut IntervalSet,
        prof: &mut P,
    ) -> Result<(), EvalError> {
        eval_guard(&pred.code, &state.nu, &s.rates, &mut s.solver, out, prof)
    }
}

/// A compiled Boolean predicate over network state and delay (used for
/// property goals/hold conditions).
#[derive(Debug, Clone)]
pub struct CompiledPredicate {
    code: GuardCode,
}

impl CompiledPredicate {
    /// Verifies the predicate's compiled program (no-op for static and
    /// fallback forms); `n_vars` bounds variable references.
    ///
    /// # Errors
    /// The first violation found, as for [`StepTables::verify_bytecode`].
    pub fn verify(&self, n_vars: usize) -> Result<(), BytecodeError> {
        if let GuardCode::Prog(p) | GuardCode::DelayFree(p) = &self.code {
            verify_solve(p, n_vars).map_err(|(pc, reason)| BytecodeError {
                program: "predicate".to_string(),
                pc,
                reason,
            })?;
        }
        Ok(())
    }
}

/// Advances clocks/continuous variables and re-establishes flows, without
/// boundary snapping.
fn advance_unchecked_mut<P: ProfileHooks>(
    t: &StepTables,
    rates: &[f64],
    vals: &mut Vec<Value>,
    state: &mut NetState,
    d: f64,
    prof: &mut P,
) -> Result<(), EvalError> {
    let mut moved = false;
    for (i, r) in rates.iter().enumerate() {
        if *r != 0.0 {
            let cur = state.nu.get(VarId(i))?.as_real()?;
            state.nu.set(VarId(i), Value::Real(cur + r * d))?;
            moved = true;
        }
    }
    state.time += d;
    if !moved {
        // No rated variable changed, so every flow (a pure function of
        // the valuation — time is not in scope) re-evaluates to the value
        // it already established; skip the re-run.
        return Ok(());
    }
    run_flows_inner(t, t.advance_flow_mask, vals, &mut state.nu, prof)
}

/// Re-establishes flows in definition (topological) order. Bit `i` of
/// `mask` clear means flow `i`'s reads are untouched by the triggering
/// writes (including transitively, via earlier flows), so it would
/// re-evaluate to the value it already holds — skip it. An all-ones mask
/// runs everything, which is also the fallback for >64 flows.
fn run_flows_inner<P: ProfileHooks>(
    t: &StepTables,
    mask: u64,
    vals: &mut Vec<Value>,
    nu: &mut Valuation,
    prof: &mut P,
) -> Result<(), EvalError> {
    for (i, f) in t.flows.iter().enumerate() {
        if mask != u64::MAX && (mask >> i) & 1 == 0 {
            continue;
        }
        let v = run_eval(&f.prog, nu, vals, prof)?;
        let v = f.ty.canonicalize(v);
        if !f.ty.admits(v) {
            if let (VarType::Int { lo, hi }, Value::Int(i)) = (f.ty, v) {
                return Err(EvalError::IntOutOfRange {
                    variable: f.name.clone(),
                    value: i,
                    lo,
                    hi,
                });
            }
            return Err(EvalError::TypeConfusion {
                context: format!("flow into {} produced {}", f.name, v.kind()),
            });
        }
        nu.set(f.target, v)?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Profiling: the unified opcode namespace and the counter layout
// ---------------------------------------------------------------------------

/// Structural [`EvalOp`] opcodes (everything except `Bin`, which gets one
/// profiling slot per [`BinOp`]).
const N_EVAL_STRUCT_OPS: usize = 16;
/// Number of [`BinOp`] variants.
const N_BIN_OPS: usize = 16;
/// Number of [`SolveOp`] variants.
const N_SOLVE_OPS: usize = 28;
/// First id of the solver ops inside the unified namespace.
const SOLVE_OP_BASE: usize = N_EVAL_STRUCT_OPS + N_BIN_OPS;

/// Display names of the unified profiling opcode namespace, indexed by the
/// ids handed to [`ProfileHooks::eval_op`]: the value-program (`eval.*`)
/// opcodes first — with `EvalOp::Bin` split into one slot per [`BinOp`] so
/// digram mining sees the actual arithmetic — then the guard-solver
/// (`solve.*`) opcodes. [`profile_shape`] sizes the opcode counters from
/// this table's length.
pub const PROFILE_OP_NAMES: [&str; SOLVE_OP_BASE + N_SOLVE_OPS] = [
    "eval.const",
    "eval.var",
    "eval.not",
    "eval.neg",
    "eval.cast_bool",
    "eval.xor",
    "eval.and_jump",
    "eval.or_jump",
    "eval.implies_jump",
    "eval.jump_if_false",
    "eval.jump",
    "eval.var_const_bin",
    "eval.var_var_bin",
    "eval.bin_const",
    "eval.var_cmp_const_jump_false",
    "eval.var_sel_const",
    "eval.add",
    "eval.sub",
    "eval.mul",
    "eval.div",
    "eval.min",
    "eval.max",
    "eval.and",
    "eval.or",
    "eval.bin_xor",
    "eval.implies",
    "eval.eq",
    "eval.ne",
    "eval.lt",
    "eval.le",
    "eval.gt",
    "eval.ge",
    "solve.set_true",
    "solve.set_false",
    "solve.set_var",
    "solve.complement",
    "solve.intersect",
    "solve.union",
    "solve.xor",
    "solve.bool_eq",
    "solve.bool_ne",
    "solve.ite",
    "solve.cmp",
    "solve.cmp_var_const",
    "solve.cmp_const_var",
    "solve.aff_const",
    "solve.aff_var",
    "solve.aff_neg",
    "solve.aff_add",
    "solve.aff_sub",
    "solve.aff_mul",
    "solve.aff_div",
    "solve.aff_min",
    "solve.aff_max",
    "solve.aff_branch",
    "solve.aff_jump",
    "solve.set_var_not",
    "solve.aff_sel_var",
    "solve.cmp_var_const_and",
    "solve.cmp_var_const_or",
];

fn bin_op_index(op: BinOp) -> usize {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Min => 4,
        BinOp::Max => 5,
        BinOp::And => 6,
        BinOp::Or => 7,
        BinOp::Xor => 8,
        BinOp::Implies => 9,
        BinOp::Eq => 10,
        BinOp::Ne => 11,
        BinOp::Lt => 12,
        BinOp::Le => 13,
        BinOp::Gt => 14,
        BinOp::Ge => 15,
    }
}

#[inline]
fn eval_op_index(op: &EvalOp) -> usize {
    match op {
        EvalOp::Const(_) => 0,
        EvalOp::Var(_) => 1,
        EvalOp::Not => 2,
        EvalOp::Neg => 3,
        EvalOp::CastBool => 4,
        EvalOp::Xor => 5,
        EvalOp::AndJump(_) => 6,
        EvalOp::OrJump(_) => 7,
        EvalOp::ImpliesJump(_) => 8,
        EvalOp::JumpIfFalse(_) => 9,
        EvalOp::Jump(_) => 10,
        EvalOp::VarConstBin(..) => 11,
        EvalOp::VarVarBin(..) => 12,
        EvalOp::BinConst(..) => 13,
        EvalOp::VarCmpConstJumpFalse { .. } => 14,
        EvalOp::VarSelConst { .. } => 15,
        EvalOp::Bin(b) => N_EVAL_STRUCT_OPS + bin_op_index(*b),
    }
}

#[inline]
fn solve_op_index(op: &SolveOp) -> usize {
    SOLVE_OP_BASE
        + match op {
            SolveOp::SetTrue => 0,
            SolveOp::SetFalse => 1,
            SolveOp::SetVar(_) => 2,
            SolveOp::Complement => 3,
            SolveOp::Intersect => 4,
            SolveOp::Union => 5,
            SolveOp::Xor => 6,
            SolveOp::BoolEq => 7,
            SolveOp::BoolNe => 8,
            SolveOp::IteSet => 9,
            SolveOp::Cmp(_) => 10,
            SolveOp::CmpVarConst(..) => 11,
            SolveOp::CmpConstVar(..) => 12,
            SolveOp::AffConst(_) => 13,
            SolveOp::AffVar(_) => 14,
            SolveOp::AffNeg => 15,
            SolveOp::AffAdd => 16,
            SolveOp::AffSub => 17,
            SolveOp::AffMul(_) => 18,
            SolveOp::AffDiv(_) => 19,
            SolveOp::AffMin(_) => 20,
            SolveOp::AffMax(_) => 21,
            SolveOp::AffBranch { .. } => 22,
            SolveOp::AffJump(_) => 23,
            SolveOp::SetVarNot(_) => 24,
            SolveOp::AffSelVar { .. } => 25,
            SolveOp::CmpVarConstAnd(..) => 26,
            SolveOp::CmpVarConstOr(..) => 27,
        }
}

/// The fused opcode (if any) whose introduction covers the profiled
/// digram `(a, b)`, both named as in [`PROFILE_OP_NAMES`]. This is the
/// map `slimsim profile --suggest-fusions` renders so users can see which
/// hot digrams the peephole pass already folds and which remain open.
#[must_use]
pub fn fusion_for_digram(a: &str, b: &str) -> Option<&'static str> {
    match (a, b) {
        // `x <op> k`: AffVar;AffConst;Cmp — both digrams of the window.
        ("solve.aff_var", "solve.aff_const") => Some("solve.cmp_var_const"),
        ("solve.aff_const", "solve.cmp") => Some("solve.cmp_var_const"),
        // `k <op> x`, the mirrored window.
        ("solve.aff_const", "solve.aff_var") => Some("solve.cmp_const_var"),
        ("solve.aff_var", "solve.cmp") => Some("solve.cmp_const_var"),
        // `!b` as a guard atom.
        ("solve.set_var", "solve.complement") => Some("solve.set_var_not"),
        // Conjunction / disjunction tails: the compare (itself fused)
        // followed by the combine with the set below it.
        ("solve.cmp_var_const", "solve.intersect") => Some("solve.cmp_var_const_and"),
        ("solve.cmp_var_const", "solve.union") => Some("solve.cmp_var_const_or"),
        // `if b then t else e` over constants: every digram of the
        // five-op branch diamond folds into the one selector op.
        ("solve.set_var", "solve.aff_branch")
        | ("solve.aff_branch", "solve.aff_const")
        | ("solve.aff_const", "solve.aff_jump")
        | ("solve.aff_jump", "solve.aff_const") => Some("solve.aff_sel_var"),
        // Value programs: `x <op> k`, `x <op> y`, `<top> <op> k`.
        ("eval.var", "eval.const") => Some("eval.var_const_bin"),
        ("eval.var", "eval.var") => Some("eval.var_var_bin"),
        ("eval.const", _) if b.starts_with("eval.") && is_profiled_bin(b) => Some("eval.bin_const"),
        // `if x <op> k { … }`: comparison feeding a conditional jump.
        (_, "eval.jump_if_false") if is_profiled_bin(a) => Some("eval.var_cmp_const_jump_false"),
        // `if b then t else e` over constants on the eval side: the
        // five-op branch diamond `Var; JumpIfFalse; Const; Jump; Const`.
        ("eval.var", "eval.jump_if_false")
        | ("eval.jump_if_false", "eval.const")
        | ("eval.const", "eval.jump")
        | ("eval.jump", "eval.const") => Some("eval.var_sel_const"),
        _ => None,
    }
}

/// Whether `name` (a [`PROFILE_OP_NAMES`] entry) is itself a fused
/// superinstruction — a digram touching one of these is already the
/// *output* of the peephole pass, since profiled runs execute the fused
/// bytecode.
#[must_use]
pub fn is_fused_op_name(name: &str) -> bool {
    matches!(
        name,
        "solve.cmp_var_const"
            | "solve.cmp_const_var"
            | "solve.set_var_not"
            | "solve.aff_sel_var"
            | "solve.cmp_var_const_and"
            | "solve.cmp_var_const_or"
            | "eval.var_const_bin"
            | "eval.var_var_bin"
            | "eval.bin_const"
            | "eval.var_cmp_const_jump_false"
            | "eval.var_sel_const"
    )
}

/// Whether `name` is one of the per-[`BinOp`] `eval.*` profiling slots.
fn is_profiled_bin(name: &str) -> bool {
    let lo = N_EVAL_STRUCT_OPS;
    let hi = N_EVAL_STRUCT_OPS + N_BIN_OPS;
    PROFILE_OP_NAMES[lo..hi].contains(&name)
}

/// Builds the dense counter layout a [`slim_obs::profile::KernelProfile`]
/// needs to profile this network's compiled kernel: the unified opcode
/// count plus flat per-(process, transition) and per-(process, location)
/// index spaces in declaration order.
pub fn profile_shape(net: &Network) -> ProfileShape {
    let mut trans_offsets = Vec::with_capacity(net.automata().len() + 1);
    let mut loc_offsets = Vec::with_capacity(net.automata().len() + 1);
    trans_offsets.push(0);
    loc_offsets.push(0);
    for a in net.automata() {
        let t = *trans_offsets.last().expect("seeded with 0") + a.transitions.len();
        trans_offsets.push(t);
        let l = *loc_offsets.last().expect("seeded with 0") + a.locations.len();
        loc_offsets.push(l);
    }
    ProfileShape { n_ops: PROFILE_OP_NAMES.len(), trans_offsets, loc_offsets }
}

/// Builds display labels aligned with [`profile_shape`]: opcode names from
/// [`PROFILE_OP_NAMES`], `"process: from -> to"` transition labels and
/// `"process.location"` location labels. Source spans are left unset;
/// front ends that kept the AST overlay them (see `slimsim profile`).
pub fn profile_labels(net: &Network) -> ProfileLabels {
    let op_names = PROFILE_OP_NAMES.iter().map(|s| (*s).to_string()).collect();
    let mut transitions = Vec::new();
    let mut locations = Vec::new();
    for a in net.automata() {
        for tr in &a.transitions {
            let label = format!(
                "{}: {} -> {}",
                a.name, a.locations[tr.from.0].name, a.locations[tr.to.0].name
            );
            transitions.push((label, None));
        }
        for l in &a.locations {
            locations.push(format!("{}.{}", a.name, l.name));
        }
    }
    ProfileLabels { op_names, transitions, locations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::Effect;
    use crate::network::NetworkBuilder;
    use crate::network::{AutomatonBuilder, GuardedCandidate};

    /// Deterministic linear-congruential driver for the differential walk.
    fn lcg(s: &mut u64) -> u64 {
        *s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *s >> 33
    }

    /// A network exercising sync cross-products, urgency, Markovian races,
    /// invariants with rates, flows, and most guard constructs the
    /// bytecode compiler handles natively.
    fn torture_net() -> Network {
        let mut net = NetworkBuilder::new();
        let c = net.var("c", VarType::Clock, Value::Real(0.0));
        let temp = net.var("temp", VarType::Continuous, Value::Real(0.0));
        let b = net.var("b", VarType::Bool, Value::Bool(false));
        let n = net.var("n", VarType::Int { lo: 0, hi: 10 }, Value::Int(0));
        let r = net.var("r", VarType::Real, Value::Real(0.0));
        let sel = net.var("sel", VarType::Real, Value::Real(0.0));
        net.flow(r, Expr::var(n).add(Expr::int(1)));
        let go = net.action("go");

        let mut a = AutomatonBuilder::new("a");
        let l0 = a.location_with("l0", Expr::var(c).le(Expr::real(8.0)), [(temp, 0.5)]);
        let l1 = a.location_with("l1", Expr::var(temp).le(Expr::real(6.0)), [(temp, 1.0)]);
        a.guarded(
            l0,
            ActionId::TAU,
            Expr::var(c).ge(Expr::real(1.0)).and(Expr::var(c).le(Expr::real(5.0))),
            [Effect::assign(n, Expr::var(n).add(Expr::int(1)).min(Expr::int(10)))],
            l1,
        );
        a.guarded_urgent(
            l0,
            ActionId::TAU,
            Expr::var(c).ge(Expr::real(3.0)),
            [Effect::assign(c, Expr::real(0.0))],
            l0,
        );
        // Guard-construct torture: data-free self loops.
        a.guarded(l0, ActionId::TAU, Expr::var(b).xor(Expr::var(c).gt(Expr::real(6.0))), [], l0);
        a.guarded(l0, ActionId::TAU, Expr::var(c).gt(Expr::real(1.0)).eq(Expr::var(b)), [], l0);
        a.guarded(
            l0,
            ActionId::TAU,
            (Expr::var(c).div(Expr::real(2.0)).le(Expr::real(3.0)))
                .and(Expr::real(2.0).mul(Expr::var(c)).ge(Expr::real(1.0))),
            [],
            l0,
        );
        a.guarded(
            l0,
            ActionId::TAU,
            Expr::var(c).min(Expr::var(c).add(Expr::real(2.0))).ge(Expr::real(3.0)),
            [],
            l0,
        );
        a.guarded(
            l0,
            ActionId::TAU,
            Expr::ite(
                Expr::var(b),
                Expr::var(c).le(Expr::real(4.0)),
                Expr::var(c).ge(Expr::real(6.0)),
            ),
            [],
            l0,
        );
        a.guarded(
            l0,
            ActionId::TAU,
            Expr::var(c).lt(Expr::real(3.0)).not().implies(Expr::var(b)),
            [],
            l0,
        );
        // Numeric `if` with a delay-independent condition: compiled via
        // the lazy branch ops.
        a.guarded(
            l0,
            ActionId::TAU,
            Expr::var(c).le(Expr::ite(Expr::var(b), Expr::real(4.0), Expr::real(7.0))),
            [],
            l0,
        );
        a.guarded(l1, ActionId::TAU, Expr::int(1).lt(Expr::int(2)), [], l1);
        a.guarded(
            l1,
            ActionId::TAU,
            Expr::ite(
                Expr::var(b),
                Expr::var(temp).le(Expr::real(2.0)),
                Expr::var(temp).ge(Expr::real(1.0)),
            ),
            [
                Effect::assign(b, Expr::var(b).not()),
                Effect::assign(c, Expr::real(0.0)),
                // Eval-side branch diamond: `if b then 2 else 5`.
                Effect::assign(sel, Expr::ite(Expr::var(b), Expr::real(2.0), Expr::real(5.0))),
            ],
            l0,
        );
        // Markovian race in a dedicated location (locations may not mix
        // guarded and Markovian transitions).
        let l2 = a.location("mk");
        a.guarded(l1, ActionId::TAU, Expr::var(temp).ge(Expr::real(0.5)), [], l2);
        a.markovian(
            l2,
            2.0,
            [Effect::assign(n, Expr::var(n).sub(Expr::int(1)).max(Expr::int(0)))],
            l0,
        );
        a.markovian(l2, 0.5, [], l1);
        a.guarded(l0, go, Expr::var(c).le(Expr::real(4.0)), [], l0);
        a.guarded(l0, go, Expr::var(c).ge(Expr::real(2.0)), [], l1);
        net.add_automaton(a);

        let mut bb = AutomatonBuilder::new("b");
        let m0 = bb.location("m0");
        let m1 = bb.location("m1");
        bb.guarded(m0, go, Expr::TRUE, [], m1);
        bb.guarded(m1, go, Expr::var(b).eq(Expr::FALSE), [], m0);
        bb.guarded(m1, ActionId::TAU, Expr::var(n).ge(Expr::int(1)), [], m0);
        net.add_automaton(bb);

        net.build().expect("torture net validates")
    }

    fn assert_cands_eq(legacy: &[GuardedCandidate], compiled: &[CandidateBuf]) {
        assert_eq!(legacy.len(), compiled.len(), "candidate count");
        for (l, c) in legacy.iter().zip(compiled) {
            assert_eq!(l.transition.action, c.action);
            assert_eq!(l.transition.parts, c.parts);
            assert_eq!(l.window, c.window);
            assert_eq!(l.urgent, c.urgent);
        }
    }

    /// The core differential test: a long pseudo-random walk where every
    /// step compares the compiled kernel against the legacy allocating
    /// API — windows, candidates, Markovian races, `advance`, `apply`.
    #[test]
    fn compiled_kernel_matches_legacy_walk() {
        let net = torture_net();
        let tables = net.compile();
        let mut s = StepScratch::new();
        let mut seed = 0xfeed_5eed_u64;

        for path in 0..16u64 {
            seed ^= path.wrapping_mul(0x9e37_79b9);
            let mut st = net.initial_state().unwrap();
            let mut st_c = st.clone();
            let mut window = IntervalSet::empty();
            for _ in 0..60 {
                assert_eq!(st, st_c, "states diverged");
                let w = net.delay_window(&st);
                let w_c = net.delay_window_into(&tables, &mut s, &st_c, &mut window);
                match (&w, &w_c) {
                    (Ok(wl), Ok(())) => assert_eq!(*wl, window, "delay windows diverged"),
                    (Err(el), Err(ec)) => {
                        assert_eq!(el, ec);
                        break;
                    }
                    _ => panic!("delay window result kind diverged: {w:?} vs {w_c:?}"),
                }
                let w = w.unwrap();

                let cands = net.guarded_candidates(&st).unwrap();
                net.guarded_candidates_into(&tables, &mut s, &st_c).unwrap();
                assert_cands_eq(&cands, s.candidates());

                let markov = net.markovian_candidates(&st);
                net.markovian_candidates_into(&tables, &mut s, &st_c);
                assert_eq!(markov.len(), s.markovian().len());
                for (l, &(p, t, rate)) in markov.iter().zip(s.markovian()) {
                    assert_eq!(l.transition.parts, vec![(p, t)]);
                    assert_eq!(l.rate, rate);
                }

                // Drive: prefer a guarded candidate whose window intersects
                // the invariant window; otherwise race a Markovian jump.
                let pick = lcg(&mut seed) as usize;
                let fired = cands
                    .iter()
                    .cycle()
                    .skip(pick % cands.len().max(1))
                    .take(cands.len())
                    .find(|cand| !cand.window.intersect(&w).is_empty());
                if let Some(cand) = fired {
                    let joint = cand.window.intersect(&w);
                    let frac = (lcg(&mut seed) % 101) as f64 / 100.0;
                    let d = joint.earliest_point().unwrap()
                        + joint.sup().filter(|s| s.is_finite()).map_or(0.0, |sup| {
                            (sup - joint.earliest_point().unwrap()).max(0.0) * frac * 0.5
                        });
                    let d = if joint.contains(d) { d } else { joint.earliest_point().unwrap() };
                    let adv = net.advance(&st, d);
                    let adv_c = net.advance_mut(&tables, &mut s, &mut st_c, d, &window);
                    match (adv, adv_c) {
                        (Ok(next), Ok(())) => st = next,
                        (Err(el), Err(ec)) => {
                            assert_eq!(el, ec);
                            break;
                        }
                        (a, b) => panic!("advance diverged: {a:?} vs {b:?}"),
                    }
                    assert_eq!(st, st_c, "advance diverged");
                    let ap = net.apply(&st, &cand.transition);
                    let ap_c = net.apply_mut(&tables, &mut s, &mut st_c, &cand.transition.parts);
                    match (ap, ap_c) {
                        (Ok(next), Ok(())) => st = next,
                        (Err(el), Err(ec)) => {
                            assert_eq!(el, ec);
                            break;
                        }
                        (a, b) => panic!("apply diverged: {a:?} vs {b:?}"),
                    }
                } else if !markov.is_empty() {
                    let sup = w.sup().unwrap_or(0.0);
                    let d = if sup.is_finite() { sup * 0.9 } else { 1.0 };
                    let next = net.advance(&st, d).unwrap();
                    net.advance_mut(&tables, &mut s, &mut st_c, d, &window).unwrap();
                    st = next;
                    assert_eq!(st, st_c, "advance diverged");
                    let m = &markov[lcg(&mut seed) as usize % markov.len()];
                    let next = net.apply(&st, &m.transition).unwrap();
                    net.apply_mut(&tables, &mut s, &mut st_c, &m.transition.parts).unwrap();
                    st = next;
                } else {
                    break;
                }
            }
        }
    }

    #[test]
    fn state_independent_guard_is_precomputed() {
        let mut net = NetworkBuilder::new();
        let mut a = AutomatonBuilder::new("a");
        let l0 = a.location("l0");
        a.guarded(l0, ActionId::TAU, Expr::int(1).lt(Expr::int(2)), [], l0);
        net.add_automaton(a);
        let net = net.build().unwrap();
        let tables = net.compile();
        assert!(
            matches!(tables.tau[0][0][0].guard, GuardCode::Static(ref s) if !s.is_empty()),
            "constant guard should be classified state-independent"
        );
    }

    #[test]
    fn numeric_ite_guard_compiles_and_matches() {
        let mut net = NetworkBuilder::new();
        let c = net.var("c", VarType::Clock, Value::Real(0.0));
        let b = net.var("b", VarType::Bool, Value::Bool(false));
        let mut a = AutomatonBuilder::new("a");
        let l0 = a.location("l0");
        // Numeric `if` in guard position: compiled lazily, both branches.
        a.guarded(
            l0,
            ActionId::TAU,
            Expr::ite(Expr::var(b), Expr::real(1.0), Expr::real(2.0)).le(Expr::var(c)),
            [],
            l0,
        );
        net.add_automaton(a);
        let net = net.build().unwrap();
        let tables = net.compile();
        assert!(
            matches!(tables.tau[0][0][0].guard, GuardCode::Prog(_)),
            "numeric `if` guard should compile to bytecode"
        );

        let mut s = StepScratch::new();
        for b_val in [false, true] {
            let mut st = net.initial_state().unwrap();
            st.nu.set(b, Value::Bool(b_val)).unwrap();
            let cands = net.guarded_candidates(&st).unwrap();
            net.guarded_candidates_into(&tables, &mut s, &st).unwrap();
            assert_cands_eq(&cands, s.candidates());
        }
    }

    #[test]
    fn numeric_ite_delay_dependent_condition_errors_identically() {
        let mut net = NetworkBuilder::new();
        let c = net.var("c", VarType::Clock, Value::Real(0.0));
        let mut a = AutomatonBuilder::new("a");
        let l0 = a.location("l0");
        // At c = 0 the condition `c > 1` holds on (1, ∞): neither always
        // nor never, so the branch selection is delay-dependent.
        a.guarded(
            l0,
            ActionId::TAU,
            Expr::ite(Expr::var(c).gt(Expr::real(1.0)), Expr::real(1.0), Expr::real(2.0))
                .le(Expr::var(c)),
            [],
            l0,
        );
        net.add_automaton(a);
        let net = net.build().unwrap();
        let tables = net.compile();
        let mut s = StepScratch::new();
        let st = net.initial_state().unwrap();
        let legacy = net.guarded_candidates(&st).unwrap_err();
        let compiled = net.guarded_candidates_into(&tables, &mut s, &st).unwrap_err();
        assert_eq!(legacy, compiled);
        assert!(matches!(legacy, EvalError::NonLinear { .. }));
    }

    #[test]
    fn ill_typed_guard_falls_back_and_errors_identically() {
        // Validated networks never contain ill-typed guards; assemble
        // without validation to exercise the AST-fallback safety net.
        let mut net = NetworkBuilder::new();
        let c = net.var("c", VarType::Clock, Value::Real(0.0));
        let mut a = AutomatonBuilder::new("a");
        let l0 = a.location("l0");
        a.guarded(l0, ActionId::TAU, Expr::var(c).le(Expr::TRUE), [], l0);
        net.add_automaton(a);
        let net = net.assemble_for_validation().unwrap();
        let tables = net.compile();
        assert!(matches!(tables.tau[0][0][0].guard, GuardCode::Fallback(_)));

        let mut s = StepScratch::new();
        let st = net.initial_state().unwrap();
        let legacy = net.guarded_candidates(&st).unwrap_err();
        let compiled = net.guarded_candidates_into(&tables, &mut s, &st).unwrap_err();
        assert_eq!(legacy, compiled);
    }

    #[test]
    fn nonlinear_guard_errors_identically() {
        let mut net = NetworkBuilder::new();
        let c = net.var("c", VarType::Clock, Value::Real(1.0));
        let mut a = AutomatonBuilder::new("a");
        let l0 = a.location("l0");
        a.guarded(l0, ActionId::TAU, Expr::var(c).mul(Expr::var(c)).gt(Expr::real(1.0)), [], l0);
        net.add_automaton(a);
        let net = net.build().unwrap();
        let tables = net.compile();
        let mut s = StepScratch::new();
        let st = net.initial_state().unwrap();
        let legacy = net.guarded_candidates(&st).unwrap_err();
        let compiled = net.guarded_candidates_into(&tables, &mut s, &st).unwrap_err();
        assert_eq!(legacy, compiled);
        assert!(matches!(legacy, EvalError::NonLinear { .. }));
    }

    #[test]
    fn predicate_window_matches_guard_solver() {
        let net = torture_net();
        let c = net.var_id("c").unwrap();
        let pred_expr = Expr::var(c).ge(Expr::real(2.0)).and(Expr::var(c).le(Expr::real(7.0)));
        let pred = net.compile_predicate(&pred_expr);
        let mut s = StepScratch::new();
        let st = net.initial_state().unwrap();
        let mut out = IntervalSet::empty();
        net.predicate_window_into(&mut s, &pred, &st, &mut out).unwrap();
        let rates = net.active_rates(&st);
        let rate = |v: VarId| rates[v.0];
        let env = DelayEnv::new(&st.nu, &rate);
        assert_eq!(out, solve(&pred_expr, &env).unwrap());
    }

    #[test]
    fn invariant_violation_errors_identically() {
        let mut net = NetworkBuilder::new();
        let c = net.var("c", VarType::Clock, Value::Real(5.0));
        let mut a = AutomatonBuilder::new("a");
        a.location_with("l0", Expr::var(c).le(Expr::real(1.0)), []);
        net.add_automaton(a);
        let net = net.build().unwrap();
        let tables = net.compile();
        let mut s = StepScratch::new();
        let st = net.initial_state().unwrap();
        let legacy = net.delay_window(&st).unwrap_err();
        let mut out = IntervalSet::empty();
        let compiled = net.delay_window_into(&tables, &mut s, &st, &mut out).unwrap_err();
        assert_eq!(legacy, compiled);
    }

    #[test]
    fn verifier_accepts_all_compiled_programs() {
        let tables = torture_net().compile();
        let report = tables.verify_bytecode().expect("compiler output verifies");
        assert!(report.guard_programs > 0, "torture net has compiled guards");
        assert!(report.value_programs > 0, "torture net has effects/flows");
        assert!(report.ops > 0);
        assert_eq!(report.fallback_guards, 0, "torture net compiles fully");
        assert_eq!(
            report.programs(),
            report.guard_programs + report.value_programs + report.static_guards
        );
    }

    /// Find the first compiled guard program in the τ tables (mutably).
    fn first_tau_prog(tables: &mut StepTables) -> &mut SolveProg {
        tables
            .tau
            .iter_mut()
            .flatten()
            .flatten()
            .find_map(|cg| match &mut cg.guard {
                GuardCode::Prog(p) => Some(p),
                _ => None,
            })
            .expect("torture net has a compiled tau guard")
    }

    #[test]
    fn verifier_rejects_corrupted_programs() {
        // Stack underflow: an extra Intersect with only one set pushed.
        let mut tables = torture_net().compile();
        first_tau_prog(&mut tables).ops.insert(1, SolveOp::Intersect);
        let err = tables.verify_bytecode().unwrap_err();
        assert!(err.reason.contains("underflow"), "got: {err}");

        // Jump out of bounds.
        let mut tables = torture_net().compile();
        let prog = first_tau_prog(&mut tables);
        prog.ops.push(SolveOp::AffJump(u32::MAX));
        let err = tables.verify_bytecode().unwrap_err();
        assert!(err.reason.contains("jump target"), "got: {err}");

        // Wrong final depth: a trailing extra set.
        let mut tables = torture_net().compile();
        first_tau_prog(&mut tables).ops.push(SolveOp::SetTrue);
        let err = tables.verify_bytecode().unwrap_err();
        assert!(err.reason.contains("ends with"), "got: {err}");

        // Context index out of range on an error-reporting op.
        let mut tables = torture_net().compile();
        let prog = first_tau_prog(&mut tables);
        let n_ctx = prog.ctx.len() as u32;
        prog.ops.insert(0, SolveOp::AffConst(1.0));
        prog.ops.insert(1, SolveOp::AffConst(2.0));
        prog.ops.insert(2, SolveOp::AffMul(n_ctx));
        let err = tables.verify_bytecode().unwrap_err();
        assert!(err.reason.contains("context index"), "got: {err}");

        // Variable reference past the table width, in a value program.
        let mut tables = torture_net().compile();
        let n_vars = tables.base_rates.len();
        let eff = tables
            .trans
            .iter_mut()
            .flatten()
            .find_map(|ct| ct.effects.first_mut())
            .expect("torture net has an effect");
        eff.prog.ops.insert(0, EvalOp::Var(VarId(n_vars)));
        eff.prog.ops.insert(1, EvalOp::Bin(BinOp::Add));
        let err = tables.verify_bytecode().unwrap_err();
        assert!(err.reason.contains("out of bounds"), "got: {err}");
        assert!(err.program.contains("effect"), "got: {err}");
    }

    #[test]
    fn verifier_rejects_wrong_final_depth_in_value_program() {
        let mut tables = torture_net().compile();
        let flow = tables.flows.first_mut().expect("torture net has a flow");
        flow.prog.ops.push(EvalOp::Const(Value::Int(0)));
        let err = tables.verify_bytecode().unwrap_err();
        assert!(err.reason.contains("ends with"), "got: {err}");
        assert!(err.program.contains("flow"), "got: {err}");
    }

    #[test]
    fn profile_op_names_are_unique_and_dense() {
        let mut seen = std::collections::HashSet::new();
        for name in PROFILE_OP_NAMES {
            assert!(seen.insert(name), "duplicate opcode name {name}");
        }
        assert_eq!(PROFILE_OP_NAMES.len(), N_EVAL_STRUCT_OPS + N_BIN_OPS + N_SOLVE_OPS);
        assert_eq!(eval_op_index(&EvalOp::Bin(BinOp::Ge)), SOLVE_OP_BASE - 1);
        assert_eq!(
            solve_op_index(&SolveOp::CmpVarConstOr(BinOp::Le, VarId(0), 1.0)),
            PROFILE_OP_NAMES.len() - 1
        );
        assert_eq!(
            PROFILE_OP_NAMES[solve_op_index(&SolveOp::CmpVarConstAnd(BinOp::Le, VarId(0), 1.0))],
            "solve.cmp_var_const_and"
        );
        assert_eq!(
            PROFILE_OP_NAMES
                [eval_op_index(&EvalOp::VarConstBin(BinOp::Add, VarId(0), Value::Int(1)))],
            "eval.var_const_bin"
        );
        assert_eq!(
            PROFILE_OP_NAMES[solve_op_index(&SolveOp::SetVarNot(VarId(0)))],
            "solve.set_var_not"
        );
    }

    #[test]
    fn fusion_digram_map_names_exist_in_namespace() {
        // Every digram endpoint and every suggested fusion the map can
        // emit must be a real opcode name, or `--suggest-fusions` would
        // render labels the profiler never produces.
        let pairs = [
            ("solve.aff_var", "solve.aff_const"),
            ("solve.aff_const", "solve.cmp"),
            ("solve.aff_const", "solve.aff_var"),
            ("solve.aff_var", "solve.cmp"),
            ("solve.set_var", "solve.complement"),
            ("solve.set_var", "solve.aff_branch"),
            ("solve.aff_branch", "solve.aff_const"),
            ("solve.aff_const", "solve.aff_jump"),
            ("solve.aff_jump", "solve.aff_const"),
            ("solve.cmp_var_const", "solve.intersect"),
            ("solve.cmp_var_const", "solve.union"),
            ("eval.var", "eval.const"),
            ("eval.var", "eval.var"),
            ("eval.const", "eval.min"),
            ("eval.ge", "eval.jump_if_false"),
            ("eval.var", "eval.jump_if_false"),
            ("eval.jump_if_false", "eval.const"),
            ("eval.const", "eval.jump"),
            ("eval.jump", "eval.const"),
        ];
        for (a, b) in pairs {
            let fused = fusion_for_digram(a, b)
                .unwrap_or_else(|| panic!("({a}, {b}) should suggest a fusion"));
            for name in [a, b, fused] {
                assert!(PROFILE_OP_NAMES.contains(&name), "unknown opcode name {name}");
            }
        }
        assert_eq!(fusion_for_digram("eval.const", "eval.var"), None);
        assert_eq!(fusion_for_digram("solve.intersect", "solve.intersect"), None);
    }

    #[test]
    fn profile_shape_and_labels_align() {
        let net = torture_net();
        let shape = profile_shape(&net);
        let labels = profile_labels(&net);
        assert_eq!(shape.n_ops, PROFILE_OP_NAMES.len());
        assert_eq!(labels.op_names.len(), shape.n_ops);
        assert_eq!(labels.transitions.len(), shape.n_trans());
        assert_eq!(labels.locations.len(), shape.n_locs());
        let total: usize = net.automata().iter().map(|a| a.transitions.len()).sum();
        assert_eq!(shape.n_trans(), total);
    }

    /// The profiled kernel is count-deterministic and the profiled step
    /// sequence leaves the state exactly where the unprofiled one does.
    #[test]
    fn profiled_walk_is_deterministic_and_state_identical() {
        use slim_obs::profile::KernelProfile;

        let net = torture_net();
        let tables = net.compile();

        let run_walk = |prof: &mut KernelProfile| {
            let mut s = StepScratch::new();
            let mut seed = 0x0bad_cafe_u64;
            let mut st = net.initial_state().unwrap();
            let mut window = IntervalSet::empty();
            for _ in 0..200 {
                net.rates_refresh(&tables, &mut s, &st);
                if net.delay_window_rated_prof(&tables, &mut s, &st, &mut window, prof).is_err() {
                    break;
                }
                net.guarded_candidates_rated_prof(&tables, &mut s, &st, prof).unwrap();
                let n = s.candidates().len();
                if n == 0 {
                    break;
                }
                let pick = lcg(&mut seed) as usize % n;
                let cand = &s.candidates()[pick];
                let joint = cand.window.intersect(&window);
                let Some(d) = joint.earliest_point() else { continue };
                let parts: Vec<_> = cand.parts.clone();
                if net.advance_rated_prof(&tables, &mut s, &mut st, d, &window, prof).is_err() {
                    break;
                }
                if net.apply_mut_prof(&tables, &mut s, &mut st, &parts, prof).is_err() {
                    break;
                }
            }
            st
        };

        let shape = profile_shape(&net);
        let mut p1 = KernelProfile::new(shape.clone());
        let st1 = run_walk(&mut p1);
        let mut p2 = KernelProfile::new(shape);
        let st2 = run_walk(&mut p2);

        assert_eq!(st1, st2, "profiled walk must be deterministic");
        assert!(p1.total_ops() > 0, "walk executed bytecode");
        assert!(p1.delay_solve_count() > 0, "walk solved delay windows");
        assert_eq!(p1.op_counts(), p2.op_counts());
        assert_eq!(p1.digram_counts(), p2.digram_counts());
        let fired: u64 = (0..p1.shape().n_trans()).map(|i| p1.fired_count(i)).sum();
        assert!(fired > 0, "walk fired transitions");
        let (evals, truth): (u64, u64) = (0..p1.shape().n_trans())
            .map(|i| p1.guard_counts(i))
            .fold((0, 0), |(e, t), (ge, gt)| (e + ge, t + gt));
        assert!(evals >= truth && evals > 0, "guard eval counts recorded");
    }

    fn collect_solve(t: &StepTables) -> Vec<&SolveProg> {
        fn push<'a>(out: &mut Vec<&'a SolveProg>, code: &'a GuardCode) {
            if let GuardCode::Prog(p) | GuardCode::DelayFree(p) = code {
                out.push(p);
            }
        }
        let mut out = Vec::new();
        for cg in t.tau.iter().flatten().flatten() {
            push(&mut out, &cg.guard);
        }
        for table in &t.sync {
            for cg in table.parts.iter().flat_map(|p| p.by_loc.iter().flatten()) {
                push(&mut out, &cg.guard);
            }
        }
        for inv in t.invariants.iter().flatten().flatten() {
            push(&mut out, inv);
        }
        out
    }

    fn collect_eval(t: &StepTables) -> Vec<&EvalProg> {
        let mut out: Vec<&EvalProg> = t
            .trans
            .iter()
            .flatten()
            .flat_map(|ct| ct.effects.iter().map(|eff| &eff.prog))
            .collect();
        out.extend(t.flows.iter().map(|f| &f.prog));
        out
    }

    /// The peephole pass rewrites the statically hot windows the digram
    /// reports identified, and the whole-program recognizers fire on the
    /// shapes the zoo models actually use.
    #[test]
    fn fusion_rewrites_hot_windows() {
        let net = torture_net();
        let tables = net.compile();

        let solve = collect_solve(&tables);
        // `c <= (if b then 4 else 7)`: the five-op branch diamond folds
        // into one selector dispatch.
        assert!(
            solve.iter().any(|p| p.ops.iter().any(|o| matches!(o, SolveOp::AffSelVar { .. }))),
            "Boolean-conditioned numeric if should fuse to AffSelVar"
        );
        // `c >= 1 && c <= 5` fuses its conjunction tail into one
        // compare-and-intersect dispatch and specializes to a
        // conjunction of compare atoms.
        assert!(
            solve.iter().any(|p| p.ops.iter().any(|o| matches!(o, SolveOp::CmpVarConstAnd(..)))),
            "conjunction tail should fuse to CmpVarConstAnd"
        );
        assert!(
            solve
                .iter()
                .any(|p| matches!(&p.spec, Some(GuardSpec::Conj(atoms)) if atoms.len() == 2)),
            "two-sided clock window should specialize to Conj"
        );
        // `c >= 3` (the urgent reset guard) is a single fused compare.
        assert!(
            solve.iter().any(|p| matches!(&p.spec, Some(GuardSpec::CmpVarConst(..)))),
            "single compare guard should specialize"
        );

        let eval = collect_eval(&tables);
        // The counter bump inside `(n + 1) min 10` and the flow `n + 1`.
        assert!(
            eval.iter().any(|p| p.ops.iter().any(|o| matches!(o, EvalOp::VarConstBin(..)))),
            "var-const arithmetic should fuse"
        );
        // ... and the clamped update specializes whole-program.
        assert!(
            eval.iter().any(|p| matches!(&p.spec, Some(EvalSpec::VarConstBinConst(..)))),
            "(n + 1) min 10 should specialize to VarConstBinConst"
        );
        // `r := if b then 2 else 5` folds its five-op branch diamond into
        // one selector dispatch and specializes whole-program.
        assert!(
            eval.iter().any(|p| matches!(&p.spec, Some(EvalSpec::VarSelConst(..)))),
            "Boolean select over constants should specialize to VarSelConst"
        );

        // `!b` as a guard compiles to the one-op SetVarNot and specializes.
        let mut nb = NetworkBuilder::new();
        let b = nb.var("b", VarType::Bool, Value::Bool(true));
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location("l0");
        a.guarded(l0, ActionId::TAU, Expr::var(b).not(), [], l0);
        nb.add_automaton(a);
        let t2 = nb.build().unwrap().compile();
        assert!(
            collect_solve(&t2).iter().any(|p| matches!(&p.spec, Some(GuardSpec::BoolVarNot(_)))),
            "negated Boolean guard should specialize to BoolVarNot"
        );
    }

    /// `CompileOptions::reference()` must produce the maximally plain
    /// kernel: no fused opcodes, no whole-program shapes, no flow masking
    /// — the fixed point the fusion-equivalence oracle diffs against.
    #[test]
    fn reference_compile_disables_fusion_spec_and_masks() {
        let net = torture_net();
        let t = net.compile_with(&CompileOptions::reference());
        for p in collect_solve(&t) {
            assert!(p.spec.is_none(), "reference solve program carries a spec");
            assert!(
                !p.ops.iter().any(|o| matches!(
                    o,
                    SolveOp::CmpVarConst(..)
                        | SolveOp::CmpConstVar(..)
                        | SolveOp::SetVarNot(_)
                        | SolveOp::AffSelVar { .. }
                        | SolveOp::CmpVarConstAnd(..)
                        | SolveOp::CmpVarConstOr(..)
                )),
                "reference solve program contains fused ops"
            );
        }
        for p in collect_eval(&t) {
            assert!(p.spec.is_none(), "reference eval program carries a spec");
            assert!(
                !p.ops.iter().any(|o| matches!(
                    o,
                    EvalOp::VarConstBin(..)
                        | EvalOp::VarVarBin(..)
                        | EvalOp::BinConst(..)
                        | EvalOp::VarCmpConstJumpFalse { .. }
                        | EvalOp::VarSelConst { .. }
                )),
                "reference eval program contains fused ops"
            );
        }
        assert_eq!(t.advance_flow_mask, u64::MAX);
        for ct in t.trans.iter().flatten() {
            assert_eq!(ct.flow_mask, u64::MAX);
        }
        // The fused tables, by contrast, do mask.
        let fused = net.compile();
        assert_ne!(fused.advance_flow_mask, u64::MAX);
    }

    /// The unprofiled kernel takes the whole-program shortcuts and the
    /// masked flow path; the profiled kernel executes every fused program
    /// op by op. Both must land in exactly the same states.
    #[test]
    fn spec_shortcut_matches_program_execution() {
        use slim_obs::profile::KernelProfile;

        fn walk<P: ProfileHooks>(net: &Network, tables: &StepTables, prof: &mut P) -> NetState {
            let mut s = StepScratch::new();
            let mut seed = 0x5bec_14e5_u64;
            let mut st = net.initial_state().unwrap();
            let mut window = IntervalSet::empty();
            for _ in 0..200 {
                net.rates_refresh(tables, &mut s, &st);
                if net.delay_window_rated_prof(tables, &mut s, &st, &mut window, prof).is_err() {
                    break;
                }
                net.guarded_candidates_rated_prof(tables, &mut s, &st, prof).unwrap();
                let n = s.candidates().len();
                if n == 0 {
                    break;
                }
                let pick = lcg(&mut seed) as usize % n;
                let cand = &s.candidates()[pick];
                let joint = cand.window.intersect(&window);
                let Some(d) = joint.earliest_point() else { continue };
                let parts: Vec<_> = cand.parts.clone();
                if net.advance_rated_prof(tables, &mut s, &mut st, d, &window, prof).is_err() {
                    break;
                }
                if net.apply_mut_prof(tables, &mut s, &mut st, &parts, prof).is_err() {
                    break;
                }
            }
            st
        }

        let net = torture_net();
        let tables = net.compile();
        let st_spec = walk(&net, &tables, &mut NoopProfile);
        let mut prof = KernelProfile::new(profile_shape(&net));
        let st_prog = walk(&net, &tables, &mut prof);
        assert_eq!(st_spec, st_prog, "spec shortcut diverged from program execution");
        assert!(prof.total_ops() > 0, "profiled walk executed bytecode");
    }

    /// Write-set masks cover exactly the flows a transition's effects (or
    /// the rated variables, for delay advancement) can reach.
    #[test]
    fn flow_masks_track_write_sets() {
        let net = torture_net();
        let t = net.compile();
        assert_eq!(t.flows.len(), 1, "torture net has the one flow r := n + 1");
        // The flow reads `n`, which never carries a rate: delay
        // advancement can always skip re-establishing it.
        assert_eq!(t.advance_flow_mask, 0);
        let (mut hit, mut miss) = (false, false);
        for (p, by_proc) in t.trans.iter().enumerate() {
            for (i, ct) in by_proc.iter().enumerate() {
                let writes_n = net.automata()[p].transitions[i]
                    .effects
                    .iter()
                    .any(|e| net.name_of(e.var) == "n");
                if writes_n {
                    assert_eq!(ct.flow_mask, 1, "writer of n must re-run the flow");
                    hit = true;
                } else {
                    assert_eq!(ct.flow_mask, 0, "non-writer of n must skip the flow");
                    miss = true;
                }
            }
        }
        assert!(hit && miss, "torture net has both kinds of transition");
    }

    /// The verifier's stack-effect tables cover the fused opcodes:
    /// corrupted fused programs are rejected, well-formed ones pass.
    #[test]
    fn corrupted_fused_programs_are_rejected() {
        let sp = |ops: Vec<SolveOp>| SolveProg { ops, ctx: Vec::new(), spec: None };
        // Out-of-bounds variables inside fused ops.
        assert!(verify_solve(&sp(vec![SolveOp::SetVarNot(VarId(7))]), 2).is_err());
        assert!(
            verify_solve(&sp(vec![SolveOp::AffSelVar { v: VarId(7), t: 1.0, e: 0.0 }]), 2).is_err()
        );
        // AffSelVar leaves an affine operand, not a solved window.
        let (_, reason) =
            verify_solve(&sp(vec![SolveOp::AffSelVar { v: VarId(0), t: 1.0, e: 0.0 }]), 2)
                .unwrap_err();
        assert!(reason.contains("ends with"), "got: {reason}");
        assert!(verify_solve(&sp(vec![SolveOp::SetVarNot(VarId(0))]), 2).is_ok());

        let ep = |ops: Vec<EvalOp>| EvalProg { ops, spec: None };
        // BinConst pops an operand no one pushed.
        let (_, reason) =
            verify_eval(&ep(vec![EvalOp::BinConst(BinOp::Add, Value::Int(1))]), 2).unwrap_err();
        assert!(reason.contains("underflow"), "got: {reason}");
        assert!(
            verify_eval(&ep(vec![EvalOp::VarVarBin(BinOp::Add, VarId(0), VarId(9))]), 2).is_err()
        );
        // The fused compare-and-branch may not jump past the end.
        let bad_jump = vec![
            EvalOp::VarCmpConstJumpFalse { op: BinOp::Ge, v: VarId(0), k: Value::Int(1), skip: 3 },
            EvalOp::Const(Value::Int(1)),
        ];
        let (_, reason) = verify_eval(&ep(bad_jump), 2).unwrap_err();
        assert!(reason.contains("out of bounds"), "got: {reason}");
        assert!(verify_eval(
            &ep(vec![EvalOp::VarConstBin(BinOp::Add, VarId(0), Value::Int(1))]),
            2
        )
        .is_ok());

        // End to end: a tampered fused flow program fails table
        // verification.
        let mut tables = torture_net().compile();
        let flow = tables.flows.first_mut().expect("torture net has a flow");
        flow.prog.ops = vec![EvalOp::VarVarBin(BinOp::Add, VarId(0), VarId(99))];
        let err = tables.verify_bytecode().unwrap_err();
        assert!(err.reason.contains("out of bounds"), "got: {err}");
    }
}
