//! Well-formedness validation of networks (DESIGN.md §4 rule set).

use crate::automaton::{GuardKind, LocId, ProcId};
use crate::error::ModelError;
use crate::expr::{Expr, TypeKind, VarId};
use crate::network::Network;
use crate::value::VarType;
use std::collections::{HashMap, HashSet};

/// Validates a network against the SLIM well-formedness rules:
///
/// 1. The network has at least one automaton; every automaton has at least
///    one location and an in-range initial location.
/// 2. Transition endpoints and actions are in range; Markovian transitions
///    are τ-labeled with positive rate; no location mixes guarded and
///    Markovian transitions; Markovian locations have trivial invariants.
/// 3. Guards and invariants type-check to Boolean; effect right-hand sides
///    type-check compatibly with their target's type.
/// 4. Location rates target continuous variables only; no two *automata*
///    assign rates to the same continuous variable.
/// 5. Flow targets are not written by effects, have no rates, are not
///    clocks/continuous, and flow expressions type-check (cycles and
///    duplicates are rejected earlier, during flow toposort).
/// 6. Variable names are unique; initial values inhabit their types.
///
/// # Errors
/// The first violated rule as a [`ModelError`].
pub fn validate_network(n: &Network) -> Result<(), ModelError> {
    if n.automata().is_empty() {
        return Err(ModelError::Empty);
    }

    // Rule 6: unique names, valid initials.
    let mut seen = HashSet::new();
    for decl in n.vars() {
        if !seen.insert(decl.name.as_str()) {
            return Err(ModelError::DuplicateName(decl.name.clone()));
        }
        let canon = decl.ty.canonicalize(decl.init);
        if !decl.ty.admits(canon) {
            return Err(ModelError::BadInit {
                variable: decl.name.clone(),
                detail: format!("{} does not inhabit {}", decl.init, decl.ty),
            });
        }
    }
    let mut seen_autos = HashSet::new();
    for a in n.automata() {
        if !seen_autos.insert(a.name.as_str()) {
            return Err(ModelError::DuplicateName(a.name.clone()));
        }
    }

    let ty_of = |v: VarId| n.ty_of(v);
    let n_vars = n.vars().len();
    let check_var = |v: VarId| -> Result<(), ModelError> {
        if v.0 >= n_vars {
            Err(ModelError::IndexOutOfRange { what: "variable", index: v.0, len: n_vars })
        } else {
            Ok(())
        }
    };
    let check_expr_vars = |e: &Expr| -> Result<(), ModelError> {
        for v in e.vars() {
            check_var(v)?;
        }
        Ok(())
    };

    // Rule 4 precompute: continuous-rate ownership across automata.
    let mut rate_owner: HashMap<VarId, ProcId> = HashMap::new();

    for (p, a) in n.automata().iter().enumerate() {
        if a.locations.is_empty() {
            return Err(ModelError::NoLocations { automaton: a.name.clone() });
        }
        if a.init.0 >= a.locations.len() {
            return Err(ModelError::IndexOutOfRange {
                what: "initial location",
                index: a.init.0,
                len: a.locations.len(),
            });
        }

        for loc in &a.locations {
            // Rule 3: invariant types.
            check_expr_vars(&loc.invariant)?;
            let k = loc.invariant.check(&ty_of)?;
            if k != TypeKind::Bool {
                return Err(ModelError::Type(crate::error::TypeError::Expected {
                    expected: "bool",
                    found: k.name(),
                    context: format!("invariant of {}/{}", a.name, loc.name),
                }));
            }
            // Rule 4: rates on continuous vars, unique across automata.
            for &(v, _r) in &loc.rates {
                check_var(v)?;
                if n.ty_of(v) != VarType::Continuous {
                    return Err(ModelError::RateOnDiscrete { variable: n.name_of(v) });
                }
                match rate_owner.get(&v) {
                    Some(owner) if owner.0 != p => {
                        return Err(ModelError::RateConflict { variable: n.name_of(v) })
                    }
                    _ => {
                        rate_owner.insert(v, ProcId(p));
                    }
                }
            }
        }

        // Rule 2: transitions.
        for t in &a.transitions {
            for endpoint in [t.from, t.to] {
                if endpoint.0 >= a.locations.len() {
                    return Err(ModelError::IndexOutOfRange {
                        what: "location",
                        index: endpoint.0,
                        len: a.locations.len(),
                    });
                }
            }
            if t.action.0 >= n.actions().len() {
                return Err(ModelError::IndexOutOfRange {
                    what: "action",
                    index: t.action.0,
                    len: n.actions().len(),
                });
            }
            match &t.guard {
                GuardKind::Markovian(rate) => {
                    if !t.action.is_tau() {
                        return Err(ModelError::MarkovianNotInternal {
                            automaton: a.name.clone(),
                            location: a.locations[t.from.0].name.clone(),
                        });
                    }
                    if !(*rate > 0.0) || !rate.is_finite() {
                        return Err(ModelError::NonPositiveRate {
                            automaton: a.name.clone(),
                            rate: *rate,
                        });
                    }
                }
                GuardKind::Boolean(g) => {
                    check_expr_vars(g)?;
                    let k = g.check(&ty_of)?;
                    if k != TypeKind::Bool {
                        return Err(ModelError::Type(crate::error::TypeError::Expected {
                            expected: "bool",
                            found: k.name(),
                            context: format!("guard in {}", a.name),
                        }));
                    }
                }
            }
            // Rule 3: effects.
            for eff in &t.effects {
                check_var(eff.var)?;
                check_expr_vars(&eff.expr)?;
                let k = eff.expr.check(&ty_of)?;
                let target = n.ty_of(eff.var);
                let compatible = match target {
                    VarType::Bool => k == TypeKind::Bool,
                    VarType::Int { .. } => k == TypeKind::Int,
                    VarType::Real | VarType::Clock | VarType::Continuous => k.is_numeric(),
                };
                if !compatible {
                    return Err(ModelError::Type(crate::error::TypeError::Expected {
                        expected: match target {
                            VarType::Bool => "bool",
                            VarType::Int { .. } => "int",
                            _ => "number",
                        },
                        found: k.name(),
                        context: format!("effect on {} in {}", n.name_of(eff.var), a.name),
                    }));
                }
            }
        }

        // Rule 2: no mixed locations; Markovian locations have trivial
        // invariants.
        for (l_idx, loc) in a.locations.iter().enumerate() {
            let loc_id = LocId(l_idx);
            let mut has_guarded = false;
            let mut has_markov = false;
            for (_, t) in a.outgoing(loc_id) {
                match t.guard {
                    GuardKind::Boolean(_) => has_guarded = true,
                    GuardKind::Markovian(_) => has_markov = true,
                }
            }
            if has_guarded && has_markov {
                return Err(ModelError::MixedTransitionKinds {
                    automaton: a.name.clone(),
                    location: loc.name.clone(),
                });
            }
            if has_markov && !loc.invariant.is_const_true() {
                return Err(ModelError::MarkovianInvariant {
                    automaton: a.name.clone(),
                    location: loc.name.clone(),
                });
            }
        }
    }

    // Rule 5: flow targets.
    let mut effect_targets: HashSet<VarId> = HashSet::new();
    for a in n.automata() {
        for t in &a.transitions {
            for eff in &t.effects {
                effect_targets.insert(eff.var);
            }
        }
    }
    for f in n.flows() {
        check_var(f.target)?;
        check_expr_vars(&f.expr)?;
        if effect_targets.contains(&f.target)
            || rate_owner.contains_key(&f.target)
            || n.ty_of(f.target).is_timed()
        {
            return Err(ModelError::FlowTargetConflict { variable: n.name_of(f.target) });
        }
        let k = f.expr.check(&ty_of)?;
        let target = n.ty_of(f.target);
        let compatible = match target {
            VarType::Bool => k == TypeKind::Bool,
            VarType::Int { .. } => k == TypeKind::Int,
            VarType::Real => k.is_numeric(),
            VarType::Clock | VarType::Continuous => false,
        };
        if !compatible {
            return Err(ModelError::Type(crate::error::TypeError::Expected {
                expected: "flow-compatible kind",
                found: k.name(),
                context: format!("flow into {}", n.name_of(f.target)),
            }));
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::{ActionId, Effect};
    use crate::network::{AutomatonBuilder, NetworkBuilder};
    use crate::value::Value;

    #[test]
    fn empty_network_rejected() {
        assert_eq!(NetworkBuilder::new().build().unwrap_err(), ModelError::Empty);
    }

    #[test]
    fn automaton_without_locations_rejected() {
        let mut b = NetworkBuilder::new();
        b.add_automaton(AutomatonBuilder::new("p"));
        assert!(matches!(b.build(), Err(ModelError::NoLocations { .. })));
    }

    #[test]
    fn mixed_location_rejected() {
        let mut b = NetworkBuilder::new();
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location("l0");
        let l1 = a.location("l1");
        a.guarded(l0, ActionId::TAU, Expr::TRUE, [], l1);
        a.markovian(l0, 1.0, [], l1);
        b.add_automaton(a);
        assert!(matches!(b.build(), Err(ModelError::MixedTransitionKinds { .. })));
    }

    #[test]
    fn markovian_location_with_invariant_rejected() {
        let mut b = NetworkBuilder::new();
        let x = b.var("x", VarType::Clock, Value::Real(0.0));
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location_with("l0", Expr::var(x).le(Expr::real(1.0)), []);
        let l1 = a.location("l1");
        a.markovian(l0, 1.0, [], l1);
        b.add_automaton(a);
        assert!(matches!(b.build(), Err(ModelError::MarkovianInvariant { .. })));
    }

    #[test]
    fn non_positive_rate_rejected() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let mut b = NetworkBuilder::new();
            let mut a = AutomatonBuilder::new("p");
            let l0 = a.location("l0");
            a.markovian(l0, bad, [], l0);
            b.add_automaton(a);
            assert!(
                matches!(b.build(), Err(ModelError::NonPositiveRate { .. })),
                "rate {bad} accepted"
            );
        }
    }

    #[test]
    fn duplicate_var_names_rejected() {
        let mut b = NetworkBuilder::new();
        b.var("x", VarType::Bool, Value::Bool(false));
        b.var("x", VarType::Bool, Value::Bool(false));
        let mut a = AutomatonBuilder::new("p");
        a.location("l");
        b.add_automaton(a);
        assert!(matches!(b.build(), Err(ModelError::DuplicateName(_))));
    }

    #[test]
    fn duplicate_automaton_names_rejected() {
        let mut b = NetworkBuilder::new();
        let mut a1 = AutomatonBuilder::new("p");
        a1.location("l");
        let mut a2 = AutomatonBuilder::new("p");
        a2.location("l");
        b.add_automaton(a1);
        b.add_automaton(a2);
        assert!(matches!(b.build(), Err(ModelError::DuplicateName(_))));
    }

    #[test]
    fn bad_init_rejected() {
        let mut b = NetworkBuilder::new();
        b.var("n", VarType::Int { lo: 1, hi: 5 }, Value::Int(9));
        let mut a = AutomatonBuilder::new("p");
        a.location("l");
        b.add_automaton(a);
        assert!(matches!(b.build(), Err(ModelError::BadInit { .. })));
    }

    #[test]
    fn non_bool_guard_rejected() {
        let mut b = NetworkBuilder::new();
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location("l0");
        a.guarded(l0, ActionId::TAU, Expr::int(1), [], l0);
        b.add_automaton(a);
        assert!(matches!(b.build(), Err(ModelError::Type(_))));
    }

    #[test]
    fn effect_kind_mismatch_rejected() {
        let mut b = NetworkBuilder::new();
        let flag = b.var("flag", VarType::Bool, Value::Bool(false));
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location("l0");
        a.guarded(l0, ActionId::TAU, Expr::TRUE, [Effect::assign(flag, Expr::int(1))], l0);
        b.add_automaton(a);
        assert!(matches!(b.build(), Err(ModelError::Type(_))));
    }

    #[test]
    fn int_effect_on_real_ok() {
        let mut b = NetworkBuilder::new();
        let r = b.var("r", VarType::Real, Value::Real(0.0));
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location("l0");
        a.guarded(l0, ActionId::TAU, Expr::TRUE, [Effect::assign(r, Expr::int(1))], l0);
        b.add_automaton(a);
        assert!(b.build().is_ok());
    }

    #[test]
    fn rate_on_clock_rejected() {
        let mut b = NetworkBuilder::new();
        let x = b.var("x", VarType::Clock, Value::Real(0.0));
        let mut a = AutomatonBuilder::new("p");
        a.location_with("l", Expr::TRUE, [(x, 2.0)]);
        b.add_automaton(a);
        assert!(matches!(b.build(), Err(ModelError::RateOnDiscrete { .. })));
    }

    #[test]
    fn cross_automata_rate_conflict_rejected() {
        let mut b = NetworkBuilder::new();
        let e = b.var("e", VarType::Continuous, Value::Real(0.0));
        let mut a1 = AutomatonBuilder::new("p1");
        a1.location_with("l", Expr::TRUE, [(e, 1.0)]);
        let mut a2 = AutomatonBuilder::new("p2");
        a2.location_with("l", Expr::TRUE, [(e, 2.0)]);
        b.add_automaton(a1);
        b.add_automaton(a2);
        assert!(matches!(b.build(), Err(ModelError::RateConflict { .. })));
    }

    #[test]
    fn same_automaton_rates_in_two_locations_ok() {
        let mut b = NetworkBuilder::new();
        let e = b.var("e", VarType::Continuous, Value::Real(0.0));
        let mut a = AutomatonBuilder::new("p");
        a.location_with("charge", Expr::TRUE, [(e, 1.0)]);
        a.location_with("drain", Expr::TRUE, [(e, -1.0)]);
        b.add_automaton(a);
        assert!(b.build().is_ok());
    }

    #[test]
    fn flow_into_effect_target_rejected() {
        let mut b = NetworkBuilder::new();
        let x = b.var("x", VarType::INT, Value::Int(0));
        b.flow(x, Expr::int(1));
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location("l0");
        a.guarded(l0, ActionId::TAU, Expr::TRUE, [Effect::assign(x, Expr::int(2))], l0);
        b.add_automaton(a);
        assert!(matches!(b.build(), Err(ModelError::FlowTargetConflict { .. })));
    }

    #[test]
    fn flow_into_clock_rejected() {
        let mut b = NetworkBuilder::new();
        let x = b.var("x", VarType::Clock, Value::Real(0.0));
        b.flow(x, Expr::real(1.0));
        let mut a = AutomatonBuilder::new("p");
        a.location("l0");
        b.add_automaton(a);
        assert!(matches!(b.build(), Err(ModelError::FlowTargetConflict { .. })));
    }

    #[test]
    fn out_of_range_variable_in_guard_rejected() {
        let mut b = NetworkBuilder::new();
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location("l0");
        a.guarded(l0, ActionId::TAU, Expr::var(VarId(7)).eq(Expr::bool(true)), [], l0);
        b.add_automaton(a);
        assert!(matches!(b.build(), Err(ModelError::IndexOutOfRange { .. })));
    }
}
