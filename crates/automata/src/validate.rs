//! Well-formedness validation of networks (DESIGN.md §4 rule set).

use crate::automaton::{GuardKind, LocId, ProcId};
use crate::error::ModelError;
use crate::expr::{Expr, TypeKind, VarId};
use crate::network::Network;
use crate::value::VarType;
use std::collections::{HashMap, HashSet};

/// Collects *all* well-formedness violations of a network.
///
/// The rule set (numbered as in DESIGN.md §4):
///
/// 1. The network has at least one automaton; every automaton has at least
///    one location and an in-range initial location.
/// 2. Transition endpoints and actions are in range; Markovian transitions
///    are τ-labeled with positive rate; no location mixes guarded and
///    Markovian transitions; Markovian locations have trivial invariants.
/// 3. Guards and invariants type-check to Boolean; effect right-hand sides
///    type-check compatibly with their target's type.
/// 4. Location rates target continuous variables only; no two *automata*
///    assign rates to the same continuous variable.
/// 5. Flow targets are not written by effects, have no rates, are not
///    clocks/continuous, and flow expressions type-check (cycles and
///    duplicates are rejected earlier, during flow toposort).
/// 6. Variable names are unique; initial values inhabit their types.
///
/// Unlike [`validate_network`], this function does not stop at the first
/// violation: it visits every rule and returns the full list, in
/// deterministic traversal order. Checks that depend on an already-violated
/// precondition (e.g. type-checking an expression that references an
/// out-of-range variable) are skipped rather than reported twice.
pub fn validate_all(n: &Network) -> Vec<ModelError> {
    let mut v = Validator { n, errs: Vec::new() };
    v.run();
    v.errs
}

/// Validates a network against the SLIM well-formedness rules (see
/// [`validate_all`] for the rule set).
///
/// # Errors
/// The first violated rule as a [`ModelError`].
pub fn validate_network(n: &Network) -> Result<(), ModelError> {
    match validate_all(n).into_iter().next() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

struct Validator<'a> {
    n: &'a Network,
    errs: Vec<ModelError>,
}

impl Validator<'_> {
    /// Checks that all variables read by `e` are in range; reports and
    /// returns `false` otherwise (type checks must then be skipped, since
    /// the typing function indexes the variable table).
    fn vars_in_range(&mut self, e: &Expr) -> bool {
        let n_vars = self.n.vars().len();
        let mut ok = true;
        for v in e.vars() {
            if v.0 >= n_vars {
                self.errs.push(ModelError::IndexOutOfRange {
                    what: "variable",
                    index: v.0,
                    len: n_vars,
                });
                ok = false;
            }
        }
        ok
    }

    /// Rule 3 for Boolean positions (guards, invariants): the expression
    /// must type-check to `bool`.
    fn check_bool(&mut self, e: &Expr, context: impl FnOnce() -> String) {
        if !self.vars_in_range(e) {
            return;
        }
        let n = self.n;
        match e.check(&|v| n.ty_of(v)) {
            Err(te) => self.errs.push(ModelError::Type(te)),
            Ok(TypeKind::Bool) => {}
            Ok(k) => self.errs.push(ModelError::Type(crate::error::TypeError::Expected {
                expected: "bool",
                found: k.name(),
                context: context(),
            })),
        }
    }

    fn run(&mut self) {
        let n = self.n;
        if n.automata().is_empty() {
            self.errs.push(ModelError::Empty);
        }

        // Rule 6: unique names, valid initials.
        let mut seen = HashSet::new();
        for decl in n.vars() {
            if !seen.insert(decl.name.as_str()) {
                self.errs.push(ModelError::DuplicateName(decl.name.clone()));
            }
            let canon = decl.ty.canonicalize(decl.init);
            if !decl.ty.admits(canon) {
                self.errs.push(ModelError::BadInit {
                    variable: decl.name.clone(),
                    detail: format!("{} does not inhabit {}", decl.init, decl.ty),
                });
            }
        }
        let mut seen_autos = HashSet::new();
        for a in n.automata() {
            if !seen_autos.insert(a.name.as_str()) {
                self.errs.push(ModelError::DuplicateName(a.name.clone()));
            }
        }

        // Rule 4 precompute: continuous-rate ownership across automata.
        let mut rate_owner: HashMap<VarId, ProcId> = HashMap::new();

        for (p, a) in n.automata().iter().enumerate() {
            if a.locations.is_empty() {
                self.errs.push(ModelError::NoLocations { automaton: a.name.clone() });
                continue;
            }
            if a.init.0 >= a.locations.len() {
                self.errs.push(ModelError::IndexOutOfRange {
                    what: "initial location",
                    index: a.init.0,
                    len: a.locations.len(),
                });
            }

            for loc in &a.locations {
                // Rule 3: invariant types.
                let a_name = &a.name;
                let loc_name = &loc.name;
                self.check_bool(&loc.invariant, || format!("invariant of {a_name}/{loc_name}"));
                // Rule 4: rates on continuous vars, unique across automata.
                for &(v, _r) in &loc.rates {
                    if v.0 >= n.vars().len() {
                        self.errs.push(ModelError::IndexOutOfRange {
                            what: "variable",
                            index: v.0,
                            len: n.vars().len(),
                        });
                        continue;
                    }
                    if n.ty_of(v) != VarType::Continuous {
                        self.errs.push(ModelError::RateOnDiscrete {
                            variable: n.name_of(v).to_string(),
                        });
                    }
                    match rate_owner.get(&v) {
                        Some(owner) if owner.0 != p => {
                            self.errs.push(ModelError::RateConflict {
                                variable: n.name_of(v).to_string(),
                            });
                        }
                        _ => {
                            rate_owner.insert(v, ProcId(p));
                        }
                    }
                }
            }

            // Rule 2: transitions.
            for t in &a.transitions {
                for endpoint in [t.from, t.to] {
                    if endpoint.0 >= a.locations.len() {
                        self.errs.push(ModelError::IndexOutOfRange {
                            what: "location",
                            index: endpoint.0,
                            len: a.locations.len(),
                        });
                    }
                }
                if t.action.0 >= n.actions().len() {
                    self.errs.push(ModelError::IndexOutOfRange {
                        what: "action",
                        index: t.action.0,
                        len: n.actions().len(),
                    });
                }
                match &t.guard {
                    GuardKind::Markovian(rate) => {
                        if !t.action.is_tau() {
                            let location = a
                                .locations
                                .get(t.from.0)
                                .map(|l| l.name.clone())
                                .unwrap_or_else(|| format!("<loc {}>", t.from.0));
                            self.errs.push(ModelError::MarkovianNotInternal {
                                automaton: a.name.clone(),
                                location,
                            });
                        }
                        if !rate.is_finite() || *rate <= 0.0 {
                            self.errs.push(ModelError::NonPositiveRate {
                                automaton: a.name.clone(),
                                rate: *rate,
                            });
                        }
                    }
                    GuardKind::Boolean(g) => {
                        let a_name = &a.name;
                        self.check_bool(g, || format!("guard in {a_name}"));
                    }
                }
                // Rule 3: effects.
                for eff in &t.effects {
                    if eff.var.0 >= n.vars().len() {
                        self.errs.push(ModelError::IndexOutOfRange {
                            what: "variable",
                            index: eff.var.0,
                            len: n.vars().len(),
                        });
                        continue;
                    }
                    if !self.vars_in_range(&eff.expr) {
                        continue;
                    }
                    let k = match eff.expr.check(&|v| n.ty_of(v)) {
                        Ok(k) => k,
                        Err(te) => {
                            self.errs.push(ModelError::Type(te));
                            continue;
                        }
                    };
                    let target = n.ty_of(eff.var);
                    let compatible = match target {
                        VarType::Bool => k == TypeKind::Bool,
                        VarType::Int { .. } => k == TypeKind::Int,
                        VarType::Real | VarType::Clock | VarType::Continuous => k.is_numeric(),
                    };
                    if !compatible {
                        self.errs.push(ModelError::Type(crate::error::TypeError::Expected {
                            expected: match target {
                                VarType::Bool => "bool",
                                VarType::Int { .. } => "int",
                                _ => "number",
                            },
                            found: k.name(),
                            context: format!("effect on {} in {}", n.name_of(eff.var), a.name),
                        }));
                    }
                }
            }

            // Rule 2: no mixed locations; Markovian locations have trivial
            // invariants.
            for (l_idx, loc) in a.locations.iter().enumerate() {
                let loc_id = LocId(l_idx);
                let mut has_guarded = false;
                let mut has_markov = false;
                for (_, t) in a.outgoing(loc_id) {
                    match t.guard {
                        GuardKind::Boolean(_) => has_guarded = true,
                        GuardKind::Markovian(_) => has_markov = true,
                    }
                }
                if has_guarded && has_markov {
                    self.errs.push(ModelError::MixedTransitionKinds {
                        automaton: a.name.clone(),
                        location: loc.name.clone(),
                    });
                }
                if has_markov && !loc.invariant.is_const_true() {
                    self.errs.push(ModelError::MarkovianInvariant {
                        automaton: a.name.clone(),
                        location: loc.name.clone(),
                    });
                }
            }
        }

        // Rule 5: flow targets.
        let mut effect_targets: HashSet<VarId> = HashSet::new();
        for a in n.automata() {
            for t in &a.transitions {
                for eff in &t.effects {
                    effect_targets.insert(eff.var);
                }
            }
        }
        for f in n.flows() {
            if f.target.0 >= n.vars().len() {
                self.errs.push(ModelError::IndexOutOfRange {
                    what: "variable",
                    index: f.target.0,
                    len: n.vars().len(),
                });
                continue;
            }
            if !self.vars_in_range(&f.expr) {
                continue;
            }
            if effect_targets.contains(&f.target)
                || rate_owner.contains_key(&f.target)
                || n.ty_of(f.target).is_timed()
            {
                self.errs.push(ModelError::FlowTargetConflict {
                    variable: n.name_of(f.target).to_string(),
                });
            }
            let k = match f.expr.check(&|v| n.ty_of(v)) {
                Ok(k) => k,
                Err(te) => {
                    self.errs.push(ModelError::Type(te));
                    continue;
                }
            };
            let target = n.ty_of(f.target);
            let compatible = match target {
                VarType::Bool => k == TypeKind::Bool,
                VarType::Int { .. } => k == TypeKind::Int,
                VarType::Real => k.is_numeric(),
                VarType::Clock | VarType::Continuous => false,
            };
            if !compatible {
                self.errs.push(ModelError::Type(crate::error::TypeError::Expected {
                    expected: "flow-compatible kind",
                    found: k.name(),
                    context: format!("flow into {}", n.name_of(f.target)),
                }));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::{ActionId, Effect};
    use crate::network::{AutomatonBuilder, NetworkBuilder};
    use crate::value::Value;

    #[test]
    fn empty_network_rejected() {
        assert_eq!(NetworkBuilder::new().build().unwrap_err(), ModelError::Empty);
    }

    #[test]
    fn automaton_without_locations_rejected() {
        let mut b = NetworkBuilder::new();
        b.add_automaton(AutomatonBuilder::new("p"));
        assert!(matches!(b.build(), Err(ModelError::NoLocations { .. })));
    }

    #[test]
    fn mixed_location_rejected() {
        let mut b = NetworkBuilder::new();
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location("l0");
        let l1 = a.location("l1");
        a.guarded(l0, ActionId::TAU, Expr::TRUE, [], l1);
        a.markovian(l0, 1.0, [], l1);
        b.add_automaton(a);
        assert!(matches!(b.build(), Err(ModelError::MixedTransitionKinds { .. })));
    }

    #[test]
    fn markovian_location_with_invariant_rejected() {
        let mut b = NetworkBuilder::new();
        let x = b.var("x", VarType::Clock, Value::Real(0.0));
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location_with("l0", Expr::var(x).le(Expr::real(1.0)), []);
        let l1 = a.location("l1");
        a.markovian(l0, 1.0, [], l1);
        b.add_automaton(a);
        assert!(matches!(b.build(), Err(ModelError::MarkovianInvariant { .. })));
    }

    #[test]
    fn non_positive_rate_rejected() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let mut b = NetworkBuilder::new();
            let mut a = AutomatonBuilder::new("p");
            let l0 = a.location("l0");
            a.markovian(l0, bad, [], l0);
            b.add_automaton(a);
            assert!(
                matches!(b.build(), Err(ModelError::NonPositiveRate { .. })),
                "rate {bad} accepted"
            );
        }
    }

    #[test]
    fn duplicate_var_names_rejected() {
        let mut b = NetworkBuilder::new();
        b.var("x", VarType::Bool, Value::Bool(false));
        b.var("x", VarType::Bool, Value::Bool(false));
        let mut a = AutomatonBuilder::new("p");
        a.location("l");
        b.add_automaton(a);
        assert!(matches!(b.build(), Err(ModelError::DuplicateName(_))));
    }

    #[test]
    fn duplicate_automaton_names_rejected() {
        let mut b = NetworkBuilder::new();
        let mut a1 = AutomatonBuilder::new("p");
        a1.location("l");
        let mut a2 = AutomatonBuilder::new("p");
        a2.location("l");
        b.add_automaton(a1);
        b.add_automaton(a2);
        assert!(matches!(b.build(), Err(ModelError::DuplicateName(_))));
    }

    #[test]
    fn bad_init_rejected() {
        let mut b = NetworkBuilder::new();
        b.var("n", VarType::Int { lo: 1, hi: 5 }, Value::Int(9));
        let mut a = AutomatonBuilder::new("p");
        a.location("l");
        b.add_automaton(a);
        assert!(matches!(b.build(), Err(ModelError::BadInit { .. })));
    }

    #[test]
    fn non_bool_guard_rejected() {
        let mut b = NetworkBuilder::new();
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location("l0");
        a.guarded(l0, ActionId::TAU, Expr::int(1), [], l0);
        b.add_automaton(a);
        assert!(matches!(b.build(), Err(ModelError::Type(_))));
    }

    #[test]
    fn effect_kind_mismatch_rejected() {
        let mut b = NetworkBuilder::new();
        let flag = b.var("flag", VarType::Bool, Value::Bool(false));
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location("l0");
        a.guarded(l0, ActionId::TAU, Expr::TRUE, [Effect::assign(flag, Expr::int(1))], l0);
        b.add_automaton(a);
        assert!(matches!(b.build(), Err(ModelError::Type(_))));
    }

    #[test]
    fn int_effect_on_real_ok() {
        let mut b = NetworkBuilder::new();
        let r = b.var("r", VarType::Real, Value::Real(0.0));
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location("l0");
        a.guarded(l0, ActionId::TAU, Expr::TRUE, [Effect::assign(r, Expr::int(1))], l0);
        b.add_automaton(a);
        assert!(b.build().is_ok());
    }

    #[test]
    fn rate_on_clock_rejected() {
        let mut b = NetworkBuilder::new();
        let x = b.var("x", VarType::Clock, Value::Real(0.0));
        let mut a = AutomatonBuilder::new("p");
        a.location_with("l", Expr::TRUE, [(x, 2.0)]);
        b.add_automaton(a);
        assert!(matches!(b.build(), Err(ModelError::RateOnDiscrete { .. })));
    }

    #[test]
    fn cross_automata_rate_conflict_rejected() {
        let mut b = NetworkBuilder::new();
        let e = b.var("e", VarType::Continuous, Value::Real(0.0));
        let mut a1 = AutomatonBuilder::new("p1");
        a1.location_with("l", Expr::TRUE, [(e, 1.0)]);
        let mut a2 = AutomatonBuilder::new("p2");
        a2.location_with("l", Expr::TRUE, [(e, 2.0)]);
        b.add_automaton(a1);
        b.add_automaton(a2);
        assert!(matches!(b.build(), Err(ModelError::RateConflict { .. })));
    }

    #[test]
    fn same_automaton_rates_in_two_locations_ok() {
        let mut b = NetworkBuilder::new();
        let e = b.var("e", VarType::Continuous, Value::Real(0.0));
        let mut a = AutomatonBuilder::new("p");
        a.location_with("charge", Expr::TRUE, [(e, 1.0)]);
        a.location_with("drain", Expr::TRUE, [(e, -1.0)]);
        b.add_automaton(a);
        assert!(b.build().is_ok());
    }

    #[test]
    fn flow_into_effect_target_rejected() {
        let mut b = NetworkBuilder::new();
        let x = b.var("x", VarType::INT, Value::Int(0));
        b.flow(x, Expr::int(1));
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location("l0");
        a.guarded(l0, ActionId::TAU, Expr::TRUE, [Effect::assign(x, Expr::int(2))], l0);
        b.add_automaton(a);
        assert!(matches!(b.build(), Err(ModelError::FlowTargetConflict { .. })));
    }

    #[test]
    fn flow_into_clock_rejected() {
        let mut b = NetworkBuilder::new();
        let x = b.var("x", VarType::Clock, Value::Real(0.0));
        b.flow(x, Expr::real(1.0));
        let mut a = AutomatonBuilder::new("p");
        a.location("l0");
        b.add_automaton(a);
        assert!(matches!(b.build(), Err(ModelError::FlowTargetConflict { .. })));
    }

    #[test]
    fn out_of_range_variable_in_guard_rejected() {
        let mut b = NetworkBuilder::new();
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location("l0");
        a.guarded(l0, ActionId::TAU, Expr::var(VarId(7)).eq(Expr::bool(true)), [], l0);
        b.add_automaton(a);
        assert!(matches!(b.build(), Err(ModelError::IndexOutOfRange { .. })));
    }

    #[test]
    fn markovian_on_sync_action_rejected() {
        let mut b = NetworkBuilder::new();
        let act = b.action("sync");
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location("l0");
        a.guarded(l0, act, Expr::bool(true), [], l0);
        b.add_automaton(a);
        // The builder API cannot produce a non-τ Markovian transition, so
        // assemble first and rewrite the guard kind underneath it.
        let NetworkBuilderParts { mut net } = assemble_unchecked(b);
        net.automata[0].transitions[0].guard = GuardKind::Markovian(1.0);
        assert!(matches!(validate_network(&net), Err(ModelError::MarkovianNotInternal { .. })));
    }

    /// `validate_all` keeps going after the first violation and reports
    /// every broken rule exactly once.
    #[test]
    fn validate_all_collects_multiple_violations() {
        let mut b = NetworkBuilder::new();
        // Two violations in the variable table...
        b.var("x", VarType::Bool, Value::Bool(false));
        b.var("x", VarType::Bool, Value::Bool(false));
        b.var("n", VarType::Int { lo: 1, hi: 5 }, Value::Int(9));
        // ...one in each of two automata.
        let mut a1 = AutomatonBuilder::new("p1");
        let l0 = a1.location("l0");
        a1.guarded(l0, ActionId::TAU, Expr::int(1), [], l0);
        b.add_automaton(a1);
        let mut a2 = AutomatonBuilder::new("p2");
        let m0 = a2.location("m0");
        a2.markovian(m0, -1.0, [], m0);
        b.add_automaton(a2);

        // build() stops at the first error...
        let first = b.clone().build().unwrap_err();
        assert!(matches!(first, ModelError::DuplicateName(_)));

        // ...but validate_all reports all four.
        let NetworkBuilderParts { net } = assemble_unchecked(b);
        let errs = validate_all(&net);
        assert_eq!(errs.len(), 4, "{errs:?}");
        assert!(matches!(errs[0], ModelError::DuplicateName(_)));
        assert!(matches!(errs[1], ModelError::BadInit { .. }));
        assert!(matches!(errs[2], ModelError::Type(_)));
        assert!(matches!(errs[3], ModelError::NonPositiveRate { .. }));
    }

    /// The first element of `validate_all` is exactly what
    /// `validate_network` reports.
    #[test]
    fn first_of_validate_all_matches_validate_network() {
        let mut b = NetworkBuilder::new();
        b.var("n", VarType::Int { lo: 1, hi: 5 }, Value::Int(9));
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location("l0");
        a.guarded(l0, ActionId::TAU, Expr::int(1), [], l0);
        b.add_automaton(a);
        let NetworkBuilderParts { net } = assemble_unchecked(b);
        let all = validate_all(&net);
        let first = validate_network(&net).unwrap_err();
        assert_eq!(all.first(), Some(&first));
        assert_eq!(all.len(), 2);
    }

    /// Helper: assembles an (invalid) network, bypassing `build()`'s
    /// validation so `validate_all` can be exercised on broken inputs.
    struct NetworkBuilderParts {
        net: Network,
    }

    fn assemble_unchecked(b: NetworkBuilder) -> NetworkBuilderParts {
        NetworkBuilderParts { net: b.assemble_for_validation().expect("flow toposort") }
    }
}
