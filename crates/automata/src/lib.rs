//! # slim-automata
//!
//! The event-data automata substrate underlying the `slimsim` statistical
//! model checker — a Rust reproduction of the formal model of
//! *"A Statistical Approach for Timed Reachability in AADL Models"*
//! (Bruintjes, Katoen, Lesens; DSN 2015), §II-E.
//!
//! A specification is a [`network::Network`] of communicating processes
//! `P = (L, l₀, I, Tr, Var, A, T)`:
//!
//! * locations with Boolean **invariants** over clocks/continuous variables
//!   restricting residence time;
//! * per-location constant **derivatives** (linear-hybrid dynamics);
//! * discrete transitions with either a Boolean **guard** or an exponential
//!   **rate** (Markovian, τ-labeled, never synchronizing);
//! * CSP-style **synchronization** on shared action alphabets;
//! * **data flows** modeling AADL data-port connections.
//!
//! The crate is deliberately RNG-free: all non-determinism is *exposed* —
//! guarded candidates carry exact enabling [`interval::IntervalSet`]s, and
//! the delay window of a state is computed symbolically by the linear
//! solver in [`linear`] — so that the simulator crate can resolve it with
//! pluggable strategies.
//!
//! ## Example
//!
//! ```
//! use slim_automata::prelude::*;
//!
//! // A clock-guarded repair window [200, 300] as in the paper's Fig. 2.
//! let mut net = NetworkBuilder::new();
//! let c = net.var("c", VarType::Clock, Value::Real(0.0));
//! let mut a = AutomatonBuilder::new("gps_error");
//! let transient = a.location_with("transient", Expr::var(c).le(Expr::real(300.0)), []);
//! let ok = a.location("ok");
//! let guard = Expr::var(c).ge(Expr::real(200.0)).and(Expr::var(c).le(Expr::real(300.0)));
//! a.guarded(transient, ActionId::TAU, guard, [Effect::assign(c, Expr::real(0.0))], ok);
//! net.add_automaton(a);
//! let network = net.build()?;
//!
//! let s0 = network.initial_state()?;
//! let cands = network.guarded_candidates(&s0)?;
//! assert_eq!(cands.len(), 1);
//! assert!(cands[0].window.contains(250.0));
//! assert!(!cands[0].window.contains(150.0));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub mod automaton;
pub mod compiled;
pub mod dot;
pub mod error;
pub mod eval;
pub mod expr;
pub mod flow;
pub mod interval;
pub mod linear;
pub mod network;
pub mod state;
pub mod validate;
pub mod value;

/// Convenient glob-import of the common types.
pub mod prelude {
    pub use crate::automaton::{
        ActionId, Automaton, Effect, GuardKind, LocId, Location, ProcId, TransId, Transition,
    };
    pub use crate::compiled::{
        fusion_for_digram, is_fused_op_name, profile_labels, profile_shape, BytecodeError,
        BytecodeReport, CandidateBuf, CompileOptions, CompiledPredicate, StepScratch, StepTables,
        PROFILE_OP_NAMES,
    };
    pub use crate::error::{EvalError, ModelError};
    pub use crate::eval::{eval, eval_bool, eval_real, Valuation};
    pub use crate::expr::{BinOp, Expr, VarId};
    pub use crate::interval::{Interval, IntervalSet};
    pub use crate::network::{
        AutomatonBuilder, GlobalTransition, GuardedCandidate, MarkovianCandidate, Network,
        NetworkBuilder,
    };
    pub use crate::state::NetState;
    pub use crate::value::{Value, VarType};
}
