//! Data-port flows.
//!
//! SLIM data connections make output data ports *expressions over input
//! values* (§II-D of the paper). After flattening, each such connection is
//! a [`Flow`] assignment `target := expr` that must be re-established after
//! every discrete and timed step. Flows may read other flow targets, so
//! they are ordered topologically; cyclic data connections are rejected.

use crate::error::ModelError;
use crate::eval::{eval, Valuation};
use crate::expr::{Expr, VarId};
use crate::value::VarType;

/// A single data-flow assignment `target := expr`.
#[derive(Debug, Clone, PartialEq)]
pub struct Flow {
    /// The written variable (a data output port).
    pub target: VarId,
    /// Defining expression (over input ports / component data).
    pub expr: Expr,
}

impl Flow {
    /// Convenience constructor.
    pub fn new(target: VarId, expr: Expr) -> Flow {
        Flow { target, expr }
    }
}

/// Orders flows so that every flow runs after the flows defining the
/// variables it reads.
///
/// # Errors
/// [`ModelError::DuplicateName`] if two flows write the same target, and
/// [`ModelError::FlowCycle`] on cyclic dependencies. `name_of` is used for
/// diagnostics only.
pub fn toposort_flows(
    flows: Vec<Flow>,
    name_of: &dyn Fn(VarId) -> String,
) -> Result<Vec<Flow>, ModelError> {
    use std::collections::HashMap;

    let mut by_target: HashMap<VarId, usize> = HashMap::new();
    for (i, f) in flows.iter().enumerate() {
        if by_target.insert(f.target, i).is_some() {
            return Err(ModelError::DuplicateName(format!("flow target {}", name_of(f.target))));
        }
    }

    // DFS-based topological sort over the flow dependency graph.
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let mut marks = vec![Mark::White; flows.len()];
    let mut order: Vec<usize> = Vec::with_capacity(flows.len());

    fn visit(
        i: usize,
        flows: &[Flow],
        by_target: &std::collections::HashMap<VarId, usize>,
        marks: &mut [Mark],
        order: &mut Vec<usize>,
        name_of: &dyn Fn(VarId) -> String,
    ) -> Result<(), ModelError> {
        match marks[i] {
            Mark::Black => return Ok(()),
            Mark::Grey => {
                return Err(ModelError::FlowCycle { involving: name_of(flows[i].target) })
            }
            Mark::White => {}
        }
        marks[i] = Mark::Grey;
        for dep in flows[i].expr.vars() {
            if let Some(&j) = by_target.get(&dep) {
                visit(j, flows, by_target, marks, order, name_of)?;
            }
        }
        marks[i] = Mark::Black;
        order.push(i);
        Ok(())
    }

    for i in 0..flows.len() {
        visit(i, &flows, &by_target, &mut marks, &mut order, name_of)?;
    }
    Ok(order.into_iter().map(|i| flows[i].clone()).collect())
}

/// Re-establishes all flows on the valuation, in the given (topological)
/// order, canonicalizing values to the targets' types.
///
/// # Errors
/// Propagates evaluation errors; range violations surface as
/// [`crate::error::EvalError::IntOutOfRange`].
pub fn run_flows(
    flows: &[Flow],
    nu: &mut Valuation,
    ty_of: &dyn Fn(VarId) -> VarType,
    name_of: &dyn Fn(VarId) -> String,
) -> Result<(), crate::error::EvalError> {
    for f in flows {
        let v = eval(&f.expr, nu)?;
        let ty = ty_of(f.target);
        let v = ty.canonicalize(v);
        if !ty.admits(v) {
            if let (VarType::Int { lo, hi }, crate::value::Value::Int(i)) = (ty, v) {
                return Err(crate::error::EvalError::IntOutOfRange {
                    variable: name_of(f.target),
                    value: i,
                    lo,
                    hi,
                });
            }
            return Err(crate::error::EvalError::TypeConfusion {
                context: format!("flow into {} produced {}", name_of(f.target), v.kind()),
            });
        }
        nu.set(f.target, v)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn names(v: VarId) -> String {
        format!("x{}", v.0)
    }

    #[test]
    fn toposort_orders_dependencies() {
        // f0: x0 := x1 + 1 ; f1: x1 := x2 * 2 — f1 must run first.
        let flows = vec![
            Flow::new(VarId(0), Expr::var(VarId(1)).add(Expr::int(1))),
            Flow::new(VarId(1), Expr::var(VarId(2)).mul(Expr::int(2))),
        ];
        let sorted = toposort_flows(flows, &names).unwrap();
        assert_eq!(sorted[0].target, VarId(1));
        assert_eq!(sorted[1].target, VarId(0));
    }

    #[test]
    fn toposort_rejects_cycles() {
        let flows = vec![
            Flow::new(VarId(0), Expr::var(VarId(1))),
            Flow::new(VarId(1), Expr::var(VarId(0))),
        ];
        assert!(matches!(toposort_flows(flows, &names), Err(ModelError::FlowCycle { .. })));
    }

    #[test]
    fn toposort_rejects_duplicate_targets() {
        let flows = vec![Flow::new(VarId(0), Expr::int(1)), Flow::new(VarId(0), Expr::int(2))];
        assert!(matches!(toposort_flows(flows, &names), Err(ModelError::DuplicateName(_))));
    }

    #[test]
    fn self_dependency_is_a_cycle() {
        let flows = vec![Flow::new(VarId(0), Expr::var(VarId(0)).add(Expr::int(1)))];
        assert!(matches!(toposort_flows(flows, &names), Err(ModelError::FlowCycle { .. })));
    }

    #[test]
    fn run_flows_chains_values() {
        let flows = toposort_flows(
            vec![
                Flow::new(VarId(0), Expr::var(VarId(1)).add(Expr::int(1))),
                Flow::new(VarId(1), Expr::var(VarId(2)).mul(Expr::int(2))),
            ],
            &names,
        )
        .unwrap();
        let mut nu = Valuation::new(vec![Value::Int(0), Value::Int(0), Value::Int(5)]);
        let ty = |_v: VarId| VarType::INT;
        run_flows(&flows, &mut nu, &ty, &names).unwrap();
        assert_eq!(nu.get(VarId(1)), Ok(Value::Int(10)));
        assert_eq!(nu.get(VarId(0)), Ok(Value::Int(11)));
    }

    #[test]
    fn run_flows_checks_ranges() {
        let flows = vec![Flow::new(VarId(0), Expr::int(9))];
        let mut nu = Valuation::new(vec![Value::Int(0)]);
        let ty = |_v: VarId| VarType::Int { lo: 0, hi: 5 };
        let err = run_flows(&flows, &mut nu, &ty, &names).unwrap_err();
        assert!(matches!(err, crate::error::EvalError::IntOutOfRange { value: 9, .. }));
    }

    #[test]
    fn run_flows_canonicalizes_int_to_real() {
        let flows = vec![Flow::new(VarId(0), Expr::int(3))];
        let mut nu = Valuation::new(vec![Value::Real(0.0)]);
        let ty = |_v: VarId| VarType::Real;
        run_flows(&flows, &mut nu, &ty, &names).unwrap();
        assert_eq!(nu.get(VarId(0)), Ok(Value::Real(3.0)));
    }
}
