//! Runtime values and variable types.

use crate::error::EvalError;
use std::fmt;

/// A runtime value of a SLIM data component.
///
/// Clocks and continuous variables hold [`Value::Real`] values; the type
/// distinction lives in [`VarType`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Boolean value.
    Bool(bool),
    /// (Range-bounded) integer value.
    Int(i64),
    /// Real, clock or continuous value.
    Real(f64),
}

impl Value {
    /// Returns the Boolean payload.
    ///
    /// # Errors
    /// Returns [`EvalError::TypeConfusion`] if the value is not a Boolean.
    pub fn as_bool(self) -> Result<bool, EvalError> {
        match self {
            Value::Bool(b) => Ok(b),
            _ => Err(EvalError::TypeConfusion { context: format!("expected bool, got {self}") }),
        }
    }

    /// Returns the integer payload.
    ///
    /// # Errors
    /// Returns [`EvalError::TypeConfusion`] if the value is not an integer.
    pub fn as_int(self) -> Result<i64, EvalError> {
        match self {
            Value::Int(i) => Ok(i),
            _ => Err(EvalError::TypeConfusion { context: format!("expected int, got {self}") }),
        }
    }

    /// Returns the value as a float, coercing integers.
    ///
    /// # Errors
    /// Returns [`EvalError::TypeConfusion`] for Booleans.
    pub fn as_real(self) -> Result<f64, EvalError> {
        match self {
            Value::Real(r) => Ok(r),
            Value::Int(i) => Ok(i as f64),
            Value::Bool(_) => {
                Err(EvalError::TypeConfusion { context: format!("expected number, got {self}") })
            }
        }
    }

    /// True if this value is numeric (int or real).
    pub fn is_numeric(self) -> bool {
        matches!(self, Value::Int(_) | Value::Real(_))
    }

    /// Structural kind name, for diagnostics.
    pub fn kind(self) -> &'static str {
        match self {
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Real(_) => "real",
        }
    }

    /// Numeric equality with int/real coercion; Booleans compare to Booleans.
    pub fn loosely_eq(self, other: Value) -> bool {
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (a, b) if a.is_numeric() && b.is_numeric() => {
                // unwrap: both sides numeric by the pattern guard
                a.as_real().unwrap() == b.as_real().unwrap()
            }
            _ => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Real(r) => write!(f, "{r}"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(r: f64) -> Self {
        Value::Real(r)
    }
}

/// The declared type of a variable (SLIM data component).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VarType {
    /// Boolean data component.
    Bool,
    /// Integer data component restricted to `[lo, hi]` (inclusive).
    Int {
        /// Lower bound (inclusive).
        lo: i64,
        /// Upper bound (inclusive).
        hi: i64,
    },
    /// Unbounded real data component (no dynamics).
    Real,
    /// Clock: real-valued, derivative 1 in every location, resettable.
    Clock,
    /// Continuous variable: real-valued with per-location constant
    /// derivative (linear-hybrid dynamics).
    Continuous,
}

impl VarType {
    /// Unrestricted integer type (full `i64` range).
    pub const INT: VarType = VarType::Int { lo: i64::MIN, hi: i64::MAX };

    /// True for clock and continuous variables, whose value changes under
    /// timed transitions.
    pub fn is_timed(self) -> bool {
        matches!(self, VarType::Clock | VarType::Continuous)
    }

    /// True if the type is numeric when read in expressions.
    pub fn is_numeric(self) -> bool {
        !matches!(self, VarType::Bool)
    }

    /// The default initial value for the type.
    pub fn default_value(self) -> Value {
        match self {
            VarType::Bool => Value::Bool(false),
            VarType::Int { lo, hi } => {
                if lo <= 0 && 0 <= hi {
                    Value::Int(0)
                } else {
                    Value::Int(lo)
                }
            }
            VarType::Real | VarType::Clock | VarType::Continuous => Value::Real(0.0),
        }
    }

    /// Checks that `v` inhabits this type (kind and integer range).
    pub fn admits(self, v: Value) -> bool {
        match (self, v) {
            (VarType::Bool, Value::Bool(_)) => true,
            (VarType::Int { lo, hi }, Value::Int(i)) => lo <= i && i <= hi,
            (VarType::Real | VarType::Clock | VarType::Continuous, Value::Real(_)) => true,
            // Allow integer literals to initialize real-kinded variables.
            (VarType::Real | VarType::Clock | VarType::Continuous, Value::Int(_)) => true,
            _ => false,
        }
    }

    /// Coerces `v` into this type's canonical representation (ints used to
    /// initialize real-kinded variables become reals).
    pub fn canonicalize(self, v: Value) -> Value {
        match (self, v) {
            (VarType::Real | VarType::Clock | VarType::Continuous, Value::Int(i)) => {
                Value::Real(i as f64)
            }
            _ => v,
        }
    }
}

impl fmt::Display for VarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VarType::Bool => write!(f, "bool"),
            VarType::Int { lo, hi } => {
                if *lo == i64::MIN && *hi == i64::MAX {
                    write!(f, "int")
                } else {
                    write!(f, "int[{lo}..{hi}]")
                }
            }
            VarType::Real => write!(f, "real"),
            VarType::Clock => write!(f, "clock"),
            VarType::Continuous => write!(f, "continuous"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_accessors() {
        assert_eq!(Value::Bool(true).as_bool(), Ok(true));
        assert!(Value::Int(1).as_bool().is_err());
        assert!(Value::Bool(true).as_real().is_err());
    }

    #[test]
    fn numeric_coercion() {
        assert_eq!(Value::Int(3).as_real(), Ok(3.0));
        assert_eq!(Value::Real(2.5).as_real(), Ok(2.5));
        assert!(Value::Real(2.5).as_int().is_err());
    }

    #[test]
    fn loose_equality_coerces() {
        assert!(Value::Int(2).loosely_eq(Value::Real(2.0)));
        assert!(!Value::Int(2).loosely_eq(Value::Bool(true)));
        assert!(Value::Bool(false).loosely_eq(Value::Bool(false)));
    }

    #[test]
    fn int_range_admission() {
        let t = VarType::Int { lo: 1, hi: 5 };
        assert!(t.admits(Value::Int(1)));
        assert!(t.admits(Value::Int(5)));
        assert!(!t.admits(Value::Int(0)));
        assert!(!t.admits(Value::Real(3.0)));
        assert_eq!(t.default_value(), Value::Int(1));
        assert_eq!(VarType::Int { lo: -3, hi: 3 }.default_value(), Value::Int(0));
    }

    #[test]
    fn clock_is_timed_and_real_kinded() {
        assert!(VarType::Clock.is_timed());
        assert!(VarType::Continuous.is_timed());
        assert!(!VarType::Real.is_timed());
        assert!(VarType::Clock.admits(Value::Real(0.0)));
        assert_eq!(VarType::Clock.canonicalize(Value::Int(2)), Value::Real(2.0));
    }

    #[test]
    fn display_forms() {
        assert_eq!(VarType::Int { lo: 1, hi: 5 }.to_string(), "int[1..5]");
        assert_eq!(VarType::INT.to_string(), "int");
        assert_eq!(Value::Real(1.5).to_string(), "1.5");
    }
}
