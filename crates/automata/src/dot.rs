//! Graphviz (DOT) export of a network's automata — the textual stand-in
//! for the paper's automata figures (Fig. 2).

use crate::automaton::GuardKind;
use crate::network::Network;
use std::fmt::Write;

/// Renders the network as a Graphviz digraph, one cluster per automaton.
///
/// Locations are nodes (initial ones double-circled), transitions are
/// edges labeled with `action [guard|rate] / effects`; urgent transitions
/// are drawn bold, Markovian ones dashed.
///
/// # Examples
///
/// ```
/// use slim_automata::prelude::*;
/// use slim_automata::dot::to_dot;
///
/// let mut b = NetworkBuilder::new();
/// let mut a = AutomatonBuilder::new("unit");
/// let ok = a.location("ok");
/// let dead = a.location("dead");
/// a.markovian(ok, 0.1, [], dead);
/// b.add_automaton(a);
/// let net = b.build()?;
/// let dot = to_dot(&net);
/// assert!(dot.contains("digraph") && dot.contains("ok") && dot.contains("0.1"));
/// # Ok::<(), slim_automata::error::ModelError>(())
/// ```
pub fn to_dot(net: &Network) -> String {
    let mut out = String::from("digraph network {\n  rankdir=LR;\n  node [shape=ellipse];\n");
    for (p, a) in net.automata().iter().enumerate() {
        let _ = writeln!(out, "  subgraph cluster_{p} {{");
        let _ = writeln!(out, "    label=\"{}\";", escape(&a.name));
        for (l, loc) in a.locations.iter().enumerate() {
            let shape = if l == a.init.0 { "doublecircle" } else { "ellipse" };
            let mut label = loc.name.clone();
            if !loc.invariant.is_const_true() {
                let _ = write!(label, "\\nwhile {}", net.render_expr(&loc.invariant));
            }
            for (v, r) in &loc.rates {
                let _ = write!(label, "\\nder {} = {r}", net.name_of(*v));
            }
            let _ = writeln!(out, "    n{p}_{l} [shape={shape}, label=\"{}\"];", escape(&label));
        }
        for t in &a.transitions {
            let mut label = String::new();
            if !t.action.is_tau() {
                let _ = write!(label, "{} ", net.actions()[t.action.0].name);
            }
            match &t.guard {
                GuardKind::Markovian(r) => {
                    let _ = write!(label, "λ={r}");
                }
                GuardKind::Boolean(g) if g.is_const_true() => {}
                GuardKind::Boolean(g) => {
                    let _ = write!(label, "when {}", net.render_expr(g));
                }
            }
            for eff in &t.effects {
                let _ =
                    write!(label, "\\n{} := {}", net.name_of(eff.var), net.render_expr(&eff.expr));
            }
            let style = match (&t.guard, t.urgent) {
                (GuardKind::Markovian(_), _) => ", style=dashed",
                (_, true) => ", style=bold",
                _ => "",
            };
            let _ = writeln!(
                out,
                "    n{p}_{} -> n{p}_{} [label=\"{}\"{style}];",
                t.from.0,
                t.to.0,
                escape(&label)
            );
        }
        let _ = writeln!(out, "  }}");
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::Effect;
    use crate::prelude::*;

    fn sample() -> Network {
        let mut b = NetworkBuilder::new();
        let x = b.var("x", VarType::Clock, Value::Real(0.0));
        let go = b.action("go");
        let mut a = AutomatonBuilder::new("proc");
        let l0 = a.location_with("wait", Expr::var(x).le(Expr::real(5.0)), []);
        let l1 = a.location("done");
        a.guarded_urgent(
            l0,
            go,
            Expr::var(x).ge(Expr::real(2.0)),
            [Effect::assign(x, Expr::real(0.0))],
            l1,
        );
        a.markovian(l1, 0.5, [], l0);
        let mut peer = AutomatonBuilder::new("peer");
        let p0 = peer.location("p0");
        peer.guarded(p0, go, Expr::TRUE, [], p0);
        b.add_automaton(a);
        b.add_automaton(peer);
        b.build().unwrap()
    }

    #[test]
    fn dot_contains_all_elements() {
        let dot = to_dot(&sample());
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("cluster_0") && dot.contains("cluster_1"));
        assert!(dot.contains("doublecircle"), "initial location marked");
        assert!(dot.contains("while (x <= 5)"), "invariant rendered");
        assert!(dot.contains("λ=0.5"), "rate rendered");
        assert!(dot.contains("style=dashed"), "Markovian dashed");
        assert!(dot.contains("style=bold"), "urgent bold");
        assert!(dot.contains("x := 0"), "effect rendered");
        assert!(dot.contains("go "), "action name rendered");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn dot_escapes_quotes() {
        assert_eq!(escape("a\"b"), "a\\\"b");
    }
}
