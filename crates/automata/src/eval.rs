//! Concrete expression evaluation over a valuation.

use crate::error::EvalError;
use crate::expr::{BinOp, Expr, VarId};
use crate::value::Value;

/// A valuation `ν : Var → V` assigning a value to every variable of the
/// network, indexed by [`VarId`].
#[derive(Debug, Clone, PartialEq)]
pub struct Valuation {
    values: Vec<Value>,
}

impl Valuation {
    /// Creates a valuation from a vector of values (one per variable, in
    /// [`VarId`] order).
    pub fn new(values: Vec<Value>) -> Self {
        Valuation { values }
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the valuation holds no variables.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Reads variable `v`.
    ///
    /// # Errors
    /// [`EvalError::BadVarIndex`] when `v` is out of range.
    pub fn get(&self, v: VarId) -> Result<Value, EvalError> {
        self.values.get(v.0).copied().ok_or(EvalError::BadVarIndex(v.0))
    }

    /// Writes variable `v`.
    ///
    /// # Errors
    /// [`EvalError::BadVarIndex`] when `v` is out of range.
    pub fn set(&mut self, v: VarId, value: Value) -> Result<(), EvalError> {
        match self.values.get_mut(v.0) {
            Some(slot) => {
                *slot = value;
                Ok(())
            }
            None => Err(EvalError::BadVarIndex(v.0)),
        }
    }

    /// Iterates over `(VarId, Value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, Value)> + '_ {
        self.values.iter().enumerate().map(|(i, v)| (VarId(i), *v))
    }

    /// Raw slice of values.
    pub fn as_slice(&self) -> &[Value] {
        &self.values
    }

    /// Replaces the contents with a copy of `other`, reusing the buffer
    /// (no allocation once capacities match).
    pub fn copy_from(&mut self, other: &Valuation) {
        self.values.clear();
        self.values.extend_from_slice(&other.values);
    }
}

impl FromIterator<Value> for Valuation {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Valuation::new(iter.into_iter().collect())
    }
}

/// Evaluates `expr` under valuation `nu`.
///
/// Numeric operators coerce `int` to `real` when operand kinds are mixed;
/// `int op int` stays exact (checked for overflow).
///
/// # Errors
/// Returns [`EvalError`] on division by zero, overflow, dynamic type
/// confusion (prevented for validated models) or bad variable indices.
pub fn eval(expr: &Expr, nu: &Valuation) -> Result<Value, EvalError> {
    match expr {
        Expr::Const(v) => Ok(*v),
        Expr::Var(v) => nu.get(*v),
        Expr::Not(e) => Ok(Value::Bool(!eval(e, nu)?.as_bool()?)),
        Expr::Neg(e) => match eval(e, nu)? {
            Value::Int(i) => i.checked_neg().map(Value::Int).ok_or(EvalError::Overflow),
            Value::Real(r) => Ok(Value::Real(-r)),
            v => Err(EvalError::TypeConfusion { context: format!("negating {v}") }),
        },
        Expr::Bin(op, a, b) => {
            // Short-circuit logical operators first.
            match op {
                BinOp::And => {
                    return Ok(Value::Bool(eval(a, nu)?.as_bool()? && eval(b, nu)?.as_bool()?))
                }
                BinOp::Or => {
                    return Ok(Value::Bool(eval(a, nu)?.as_bool()? || eval(b, nu)?.as_bool()?))
                }
                BinOp::Implies => {
                    return Ok(Value::Bool(!eval(a, nu)?.as_bool()? || eval(b, nu)?.as_bool()?))
                }
                BinOp::Xor => {
                    return Ok(Value::Bool(eval(a, nu)?.as_bool()? ^ eval(b, nu)?.as_bool()?))
                }
                _ => {}
            }
            let va = eval(a, nu)?;
            let vb = eval(b, nu)?;
            eval_bin(*op, va, vb)
        }
        Expr::Ite(c, t, e) => {
            if eval(c, nu)?.as_bool()? {
                eval(t, nu)
            } else {
                eval(e, nu)
            }
        }
    }
}

/// Evaluates `expr` and requires a Boolean result.
///
/// # Errors
/// Propagates [`eval`] errors; additionally fails if the result is numeric.
pub fn eval_bool(expr: &Expr, nu: &Valuation) -> Result<bool, EvalError> {
    eval(expr, nu)?.as_bool()
}

/// Evaluates `expr` and requires a numeric result, returned as `f64`.
///
/// # Errors
/// Propagates [`eval`] errors; additionally fails if the result is Boolean.
pub fn eval_real(expr: &Expr, nu: &Valuation) -> Result<f64, EvalError> {
    eval(expr, nu)?.as_real()
}

pub(crate) fn eval_bin(op: BinOp, va: Value, vb: Value) -> Result<Value, EvalError> {
    if op.is_comparison() {
        return eval_cmp(op, va, vb);
    }
    debug_assert!(op.is_arithmetic());
    match (va, vb) {
        (Value::Int(x), Value::Int(y)) if op != BinOp::Div => {
            let r = match op {
                BinOp::Add => x.checked_add(y),
                BinOp::Sub => x.checked_sub(y),
                BinOp::Mul => x.checked_mul(y),
                BinOp::Min => Some(x.min(y)),
                BinOp::Max => Some(x.max(y)),
                _ => unreachable!("div handled below, logical handled by caller"),
            };
            r.map(Value::Int).ok_or(EvalError::Overflow)
        }
        (a, b) => {
            let x = a.as_real()?;
            let y = b.as_real()?;
            let r = match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => {
                    if y == 0.0 {
                        return Err(EvalError::DivisionByZero);
                    }
                    x / y
                }
                BinOp::Min => x.min(y),
                BinOp::Max => x.max(y),
                _ => unreachable!(),
            };
            Ok(Value::Real(r))
        }
    }
}

fn eval_cmp(op: BinOp, va: Value, vb: Value) -> Result<Value, EvalError> {
    // Boolean equality.
    if let (Value::Bool(a), Value::Bool(b)) = (va, vb) {
        return match op {
            BinOp::Eq => Ok(Value::Bool(a == b)),
            BinOp::Ne => Ok(Value::Bool(a != b)),
            _ => Err(EvalError::TypeConfusion { context: format!("{a} {} {b}", op.symbol()) }),
        };
    }
    let x = va.as_real()?;
    let y = vb.as_real()?;
    let r = match op {
        BinOp::Eq => x == y,
        BinOp::Ne => x != y,
        BinOp::Lt => x < y,
        BinOp::Le => x <= y,
        BinOp::Gt => x > y,
        BinOp::Ge => x >= y,
        _ => unreachable!(),
    };
    Ok(Value::Bool(r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    fn nu(vals: &[Value]) -> Valuation {
        Valuation::new(vals.to_vec())
    }

    #[test]
    fn arithmetic_int_exact() {
        let v = nu(&[Value::Int(7)]);
        let e = Expr::var(VarId(0)).mul(Expr::int(6));
        assert_eq!(eval(&e, &v), Ok(Value::Int(42)));
    }

    #[test]
    fn arithmetic_mixed_coerces() {
        let v = nu(&[Value::Int(7), Value::Real(0.5)]);
        let e = Expr::var(VarId(0)).add(Expr::var(VarId(1)));
        assert_eq!(eval(&e, &v), Ok(Value::Real(7.5)));
    }

    #[test]
    fn division_always_real_and_checked() {
        let v = nu(&[]);
        assert_eq!(eval(&Expr::int(7).div(Expr::int(2)), &v), Ok(Value::Real(3.5)));
        assert_eq!(eval(&Expr::int(7).div(Expr::int(0)), &v), Err(EvalError::DivisionByZero));
    }

    #[test]
    fn overflow_detected() {
        let v = nu(&[]);
        let e = Expr::int(i64::MAX).add(Expr::int(1));
        assert_eq!(eval(&e, &v), Err(EvalError::Overflow));
        let n = Expr::int(i64::MIN).neg();
        assert_eq!(eval(&n, &v), Err(EvalError::Overflow));
    }

    #[test]
    fn short_circuit_skips_errors() {
        // false and (1/0 = 1) must not evaluate the division.
        let v = nu(&[]);
        let bad = Expr::int(1).div(Expr::int(0)).eq(Expr::int(1));
        let e = Expr::FALSE.and(bad.clone());
        assert_eq!(eval(&e, &v), Ok(Value::Bool(false)));
        let e = Expr::TRUE.or(bad);
        assert_eq!(eval(&e, &v), Ok(Value::Bool(true)));
    }

    #[test]
    fn implication_truth_table() {
        let v = nu(&[]);
        for (a, b, want) in
            [(false, false, true), (false, true, true), (true, false, false), (true, true, true)]
        {
            let e = Expr::bool(a).implies(Expr::bool(b));
            assert_eq!(eval(&e, &v), Ok(Value::Bool(want)), "{a} => {b}");
        }
    }

    #[test]
    fn comparisons_coerce() {
        let v = nu(&[Value::Real(2.0)]);
        assert_eq!(eval_bool(&Expr::var(VarId(0)).eq(Expr::int(2)), &v), Ok(true));
        assert_eq!(eval_bool(&Expr::var(VarId(0)).lt(Expr::int(2)), &v), Ok(false));
    }

    #[test]
    fn bool_comparison_with_number_rejected() {
        let v = nu(&[Value::Bool(true)]);
        assert!(eval(&Expr::var(VarId(0)).lt(Expr::int(1)), &v).is_err());
    }

    #[test]
    fn ite_selects_branch() {
        let v = nu(&[Value::Bool(true)]);
        let e = Expr::ite(Expr::var(VarId(0)), Expr::int(1), Expr::int(2));
        assert_eq!(eval(&e, &v), Ok(Value::Int(1)));
    }

    #[test]
    fn min_max() {
        let v = nu(&[]);
        assert_eq!(eval(&Expr::int(3).min(Expr::int(5)), &v), Ok(Value::Int(3)));
        assert_eq!(eval(&Expr::real(3.0).max(Expr::int(5)), &v), Ok(Value::Real(5.0)));
    }

    #[test]
    fn valuation_accessors() {
        let mut v = nu(&[Value::Int(1), Value::Bool(false)]);
        assert_eq!(v.len(), 2);
        assert!(!v.is_empty());
        v.set(VarId(1), Value::Bool(true)).unwrap();
        assert_eq!(v.get(VarId(1)), Ok(Value::Bool(true)));
        assert!(v.get(VarId(5)).is_err());
        assert!(v.set(VarId(5), Value::Int(0)).is_err());
        let pairs: Vec<_> = v.iter().collect();
        assert_eq!(pairs[0], (VarId(0), Value::Int(1)));
    }
}
