//! Symbolic evaluation of expressions as *linear functions of a delay*.
//!
//! For a fixed state, every clock/continuous variable evolves linearly in
//! the prospective delay `d`: `v(d) = ν(v) + rate(v)·d`. Numeric expressions
//! therefore evaluate to affine forms `k + m·d` ([`Aff`]), and Boolean
//! guards/invariants evaluate to [`IntervalSet`]s of delays at which they
//! hold ([`solve`]). This is the exact-interval machinery behind the
//! Progressive/Local/ASAP/MaxTime strategies (§III-B of the paper).
//!
//! The SLIM subset has *linear* hybrid dynamics: products or quotients of
//! two delay-dependent quantities, and `min`/`max`/`if` over delay-dependent
//! numeric operands, are rejected with [`EvalError::NonLinear`].

use crate::error::EvalError;
use crate::eval::Valuation;
use crate::expr::{BinOp, Expr, VarId};
use crate::interval::{Interval, IntervalSet};
use crate::value::Value;

/// An affine form `k + m·d` over the delay `d`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aff {
    /// Constant coefficient (value at `d = 0`).
    pub k: f64,
    /// Slope with respect to the delay.
    pub m: f64,
}

impl Aff {
    /// A constant (delay-independent) form.
    pub fn constant(k: f64) -> Aff {
        Aff { k, m: 0.0 }
    }

    /// True if the form does not depend on the delay.
    pub fn is_constant(&self) -> bool {
        self.m == 0.0
    }

    /// Value of the form at delay `d`.
    pub fn at(&self, d: f64) -> f64 {
        self.k + self.m * d
    }
}

/// Evaluation context for delay-dependent evaluation: the current valuation
/// plus the active derivative of every variable (1 for clocks, the current
/// location's rate for continuous variables, 0 for discrete data).
pub struct DelayEnv<'a> {
    /// Current valuation (values at `d = 0`).
    pub nu: &'a Valuation,
    /// Active derivative of each variable.
    pub rate: &'a dyn Fn(VarId) -> f64,
}

impl std::fmt::Debug for DelayEnv<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DelayEnv").field("nu", &self.nu).finish_non_exhaustive()
    }
}

impl<'a> DelayEnv<'a> {
    /// Convenience constructor.
    pub fn new(nu: &'a Valuation, rate: &'a dyn Fn(VarId) -> f64) -> Self {
        DelayEnv { nu, rate }
    }
}

/// Evaluates a numeric expression to an affine form over the delay.
///
/// # Errors
/// [`EvalError::NonLinear`] for delay-dependent products, quotients,
/// `min`/`max` or `if`; other [`EvalError`]s as in concrete evaluation.
pub fn lin_eval(expr: &Expr, env: &DelayEnv<'_>) -> Result<Aff, EvalError> {
    match expr {
        Expr::Const(v) => Ok(Aff::constant(v.as_real()?)),
        Expr::Var(v) => {
            let base = env.nu.get(*v)?.as_real()?;
            Ok(Aff { k: base, m: (env.rate)(*v) })
        }
        Expr::Neg(e) => {
            let a = lin_eval(e, env)?;
            Ok(Aff { k: -a.k, m: -a.m })
        }
        Expr::Not(_) => {
            Err(EvalError::TypeConfusion { context: "boolean `not` in numeric position".into() })
        }
        Expr::Bin(op, a, b) => {
            let fa = lin_eval(a, env)?;
            let fb = lin_eval(b, env)?;
            match op {
                BinOp::Add => Ok(Aff { k: fa.k + fb.k, m: fa.m + fb.m }),
                BinOp::Sub => Ok(Aff { k: fa.k - fb.k, m: fa.m - fb.m }),
                BinOp::Mul => {
                    if fa.is_constant() {
                        Ok(Aff { k: fa.k * fb.k, m: fa.k * fb.m })
                    } else if fb.is_constant() {
                        Ok(Aff { k: fa.k * fb.k, m: fa.m * fb.k })
                    } else {
                        Err(EvalError::NonLinear { context: format!("{expr}") })
                    }
                }
                BinOp::Div => {
                    if !fb.is_constant() {
                        return Err(EvalError::NonLinear { context: format!("{expr}") });
                    }
                    if fb.k == 0.0 {
                        return Err(EvalError::DivisionByZero);
                    }
                    Ok(Aff { k: fa.k / fb.k, m: fa.m / fb.k })
                }
                BinOp::Min | BinOp::Max => {
                    if fa.is_constant() && fb.is_constant() {
                        let k = if *op == BinOp::Min { fa.k.min(fb.k) } else { fa.k.max(fb.k) };
                        Ok(Aff::constant(k))
                    } else if fa.m == fb.m {
                        // Parallel lines: min/max decided by intercepts.
                        let k = if *op == BinOp::Min { fa.k.min(fb.k) } else { fa.k.max(fb.k) };
                        Ok(Aff { k, m: fa.m })
                    } else {
                        Err(EvalError::NonLinear { context: format!("{expr}") })
                    }
                }
                _ => Err(EvalError::TypeConfusion {
                    context: format!("boolean operator `{}` in numeric position", op.symbol()),
                }),
            }
        }
        Expr::Ite(c, t, e) => {
            // Exact only when the condition is delay-independent.
            let cond = solve(c, env)?;
            if cond == IntervalSet::all() {
                lin_eval(t, env)
            } else if cond.is_empty() {
                lin_eval(e, env)
            } else {
                Err(EvalError::NonLinear {
                    context: format!("delay-dependent condition in {expr}"),
                })
            }
        }
    }
}

/// Solves a Boolean expression for the set of delays `d ∈ [0, ∞)` at which
/// it holds.
///
/// # Errors
/// See [`lin_eval`]; additionally fails on dynamic type confusion (e.g.
/// comparing a Boolean to a number), which validated models never exhibit.
pub fn solve(expr: &Expr, env: &DelayEnv<'_>) -> Result<IntervalSet, EvalError> {
    match expr {
        Expr::Const(Value::Bool(true)) => Ok(IntervalSet::all()),
        Expr::Const(Value::Bool(false)) => Ok(IntervalSet::empty()),
        Expr::Const(v) => {
            Err(EvalError::TypeConfusion { context: format!("numeric constant {v} as guard") })
        }
        Expr::Var(v) => match env.nu.get(*v)? {
            Value::Bool(true) => Ok(IntervalSet::all()),
            Value::Bool(false) => Ok(IntervalSet::empty()),
            other => Err(EvalError::TypeConfusion {
                context: format!("numeric variable {other} as guard"),
            }),
        },
        Expr::Not(e) => Ok(solve(e, env)?.complement()),
        Expr::Neg(_) => {
            Err(EvalError::TypeConfusion { context: "numeric negation as guard".into() })
        }
        Expr::Bin(op, a, b) => match op {
            BinOp::And => Ok(solve(a, env)?.intersect(&solve(b, env)?)),
            BinOp::Or => Ok(solve(a, env)?.union(&solve(b, env)?)),
            BinOp::Implies => Ok(solve(a, env)?.complement().union(&solve(b, env)?)),
            BinOp::Xor => {
                let sa = solve(a, env)?;
                let sb = solve(b, env)?;
                Ok(sa.intersect(&sb.complement()).union(&sb.intersect(&sa.complement())))
            }
            BinOp::Eq | BinOp::Ne if is_boolish(a, env) && is_boolish(b, env) => {
                let sa = solve(a, env)?;
                let sb = solve(b, env)?;
                let eq = sa.intersect(&sb).union(&sa.complement().intersect(&sb.complement()));
                if *op == BinOp::Eq {
                    Ok(eq)
                } else {
                    Ok(eq.complement())
                }
            }
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                let fa = lin_eval(a, env)?;
                let fb = lin_eval(b, env)?;
                Ok(solve_cmp(*op, Aff { k: fa.k - fb.k, m: fa.m - fb.m }))
            }
            _ => Err(EvalError::TypeConfusion {
                context: format!("arithmetic operator `{}` as guard", op.symbol()),
            }),
        },
        Expr::Ite(c, t, e) => {
            let sc = solve(c, env)?;
            let st = solve(t, env)?;
            let se = solve(e, env)?;
            Ok(st.intersect(&sc).union(&se.intersect(&sc.complement())))
        }
    }
}

/// Heuristic: does the expression denote a Boolean under this environment?
/// Used to dispatch `=`/`!=` between Boolean and numeric semantics.
fn is_boolish(expr: &Expr, env: &DelayEnv<'_>) -> bool {
    match expr {
        Expr::Const(Value::Bool(_)) => true,
        Expr::Var(v) => matches!(env.nu.get(*v), Ok(Value::Bool(_))),
        Expr::Not(_) => true,
        Expr::Bin(op, ..) => op.is_logical() || op.is_comparison(),
        Expr::Ite(_, t, _) => is_boolish(t, env),
        _ => false,
    }
}

/// Solves `f(d) cmp 0` for the affine form `f = k + m·d`, intersected with
/// `[0, ∞)`.
fn solve_cmp(op: BinOp, f: Aff) -> IntervalSet {
    if f.m == 0.0 {
        let truth = match op {
            BinOp::Eq => f.k == 0.0,
            BinOp::Ne => f.k != 0.0,
            BinOp::Lt => f.k < 0.0,
            BinOp::Le => f.k <= 0.0,
            BinOp::Gt => f.k > 0.0,
            BinOp::Ge => f.k >= 0.0,
            _ => unreachable!("caller dispatches comparisons only"),
        };
        return if truth { IntervalSet::all() } else { IntervalSet::empty() };
    }
    let root = -f.k / f.m;
    // Normalize to `m > 0` by flipping the comparison when m < 0.
    let (op, root) = if f.m > 0.0 {
        (op, root)
    } else {
        let flipped = match op {
            BinOp::Lt => BinOp::Gt,
            BinOp::Le => BinOp::Ge,
            BinOp::Gt => BinOp::Lt,
            BinOp::Ge => BinOp::Le,
            other => other,
        };
        (flipped, root)
    };
    // Now f is increasing with zero at `root`.
    match op {
        BinOp::Eq => {
            if root >= 0.0 {
                IntervalSet::from(Interval::point(root))
            } else {
                IntervalSet::empty()
            }
        }
        BinOp::Ne => {
            if root >= 0.0 {
                IntervalSet::from(Interval::point(root)).complement()
            } else {
                IntervalSet::all()
            }
        }
        BinOp::Lt => interval_or_empty(Interval::closed_open(0.0, root)),
        BinOp::Le => interval_or_empty(Interval::closed(0.0, root)),
        BinOp::Gt => {
            interval_or_empty(Interval::new(root.max(0.0), f64::INFINITY, root < 0.0, false))
        }
        BinOp::Ge => interval_or_empty(Interval::new(root.max(0.0), f64::INFINITY, true, false)),
        _ => unreachable!(),
    }
}

fn interval_or_empty(iv: Option<Interval>) -> IntervalSet {
    match iv {
        Some(iv) => IntervalSet::from(iv),
        None => IntervalSet::empty(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Valuation;

    /// Environment with one clock `x` (rate 1) at value `x0` and one
    /// discrete int `n`.
    fn env_with(x0: f64, n: i64) -> (Valuation, &'static dyn Fn(VarId) -> f64) {
        let nu = Valuation::new(vec![Value::Real(x0), Value::Int(n)]);
        fn rate(v: VarId) -> f64 {
            if v.0 == 0 {
                1.0
            } else {
                0.0
            }
        }
        (nu, &rate)
    }

    fn x() -> Expr {
        Expr::var(VarId(0))
    }

    fn n() -> Expr {
        Expr::var(VarId(1))
    }

    #[test]
    fn lin_eval_clock_is_affine() {
        let (nu, rate) = env_with(5.0, 3);
        let env = DelayEnv::new(&nu, rate);
        let a = lin_eval(&x(), &env).unwrap();
        assert_eq!(a, Aff { k: 5.0, m: 1.0 });
        let b = lin_eval(&x().mul(Expr::real(2.0)).add(n()), &env).unwrap();
        assert_eq!(b, Aff { k: 13.0, m: 2.0 });
        assert_eq!(b.at(1.5), 16.0);
    }

    #[test]
    fn lin_eval_rejects_nonlinear() {
        let (nu, rate) = env_with(5.0, 3);
        let env = DelayEnv::new(&nu, rate);
        assert!(matches!(lin_eval(&x().mul(x()), &env), Err(EvalError::NonLinear { .. })));
        assert!(matches!(
            lin_eval(&Expr::real(1.0).div(x()), &env),
            Err(EvalError::NonLinear { .. })
        ));
        assert!(matches!(
            lin_eval(&x().min(Expr::real(3.0)), &env),
            Err(EvalError::NonLinear { .. })
        ));
    }

    #[test]
    fn lin_eval_parallel_min_ok() {
        let (nu, rate) = env_with(5.0, 3);
        let env = DelayEnv::new(&nu, rate);
        let e = x().min(x().add(Expr::real(2.0)));
        assert_eq!(lin_eval(&e, &env).unwrap(), Aff { k: 5.0, m: 1.0 });
    }

    #[test]
    fn solve_simple_window() {
        // x in [5, +1/d]; guard: x >= 200 and x <= 300 with x0 = 0.
        let (nu, rate) = env_with(0.0, 0);
        let env = DelayEnv::new(&nu, rate);
        let g = x().ge(Expr::real(200.0)).and(x().le(Expr::real(300.0)));
        let s = solve(&g, &env).unwrap();
        assert_eq!(s.intervals().len(), 1);
        assert!(s.contains(200.0) && s.contains(300.0));
        assert!(!s.contains(199.999) && !s.contains(300.001));
    }

    #[test]
    fn solve_accounts_for_elapsed_clock() {
        // Same guard but the clock already reads 250.
        let (nu, rate) = env_with(250.0, 0);
        let env = DelayEnv::new(&nu, rate);
        let g = x().ge(Expr::real(200.0)).and(x().le(Expr::real(300.0)));
        let s = solve(&g, &env).unwrap();
        assert_eq!(s.prefix_from_zero(), Some((50.0, true)));
    }

    #[test]
    fn solve_strict_bounds_open() {
        let (nu, rate) = env_with(0.0, 0);
        let env = DelayEnv::new(&nu, rate);
        let s = solve(&x().gt(Expr::real(2.0)).and(x().lt(Expr::real(3.0))), &env).unwrap();
        assert!(!s.contains(2.0) && s.contains(2.5) && !s.contains(3.0));
    }

    #[test]
    fn solve_equality_is_point() {
        let (nu, rate) = env_with(0.0, 0);
        let env = DelayEnv::new(&nu, rate);
        let s = solve(&x().eq(Expr::real(7.0)), &env).unwrap();
        assert_eq!(s.measure(), 0.0);
        assert!(s.contains(7.0) && !s.contains(7.1));
        let ne = solve(&x().ne(Expr::real(7.0)), &env).unwrap();
        assert!(!ne.contains(7.0) && ne.contains(7.1) && ne.contains(0.0));
    }

    #[test]
    fn solve_negative_root_clamps() {
        // x >= -3 always true for x0=0, rate 1.
        let (nu, rate) = env_with(0.0, 0);
        let env = DelayEnv::new(&nu, rate);
        assert_eq!(solve(&x().ge(Expr::real(-3.0)), &env).unwrap(), IntervalSet::all());
        assert!(solve(&x().lt(Expr::real(-3.0)), &env).unwrap().is_empty());
        assert!(solve(&x().eq(Expr::real(-3.0)), &env).unwrap().is_empty());
    }

    #[test]
    fn solve_decreasing_variable() {
        // Continuous var with rate -2 starting at 10; guard v <= 4 ⇒ d >= 3.
        let nu = Valuation::new(vec![Value::Real(10.0)]);
        fn rate(_: VarId) -> f64 {
            -2.0
        }
        let env = DelayEnv::new(&nu, &rate);
        let s = solve(&Expr::var(VarId(0)).le(Expr::real(4.0)), &env).unwrap();
        assert!(!s.contains(2.999) && s.contains(3.0) && s.contains(100.0));
    }

    #[test]
    fn solve_discrete_guard_constant() {
        let (nu, rate) = env_with(0.0, 3);
        let env = DelayEnv::new(&nu, rate);
        assert_eq!(solve(&n().ge(Expr::int(2)), &env).unwrap(), IntervalSet::all());
        assert!(solve(&n().ge(Expr::int(4)), &env).unwrap().is_empty());
    }

    #[test]
    fn solve_boolean_structure() {
        let (nu, rate) = env_with(0.0, 0);
        let env = DelayEnv::new(&nu, rate);
        // not (x <= 5) == x > 5
        let s = solve(&x().le(Expr::real(5.0)).not(), &env).unwrap();
        assert!(!s.contains(5.0) && s.contains(5.1));
        // xor of overlapping windows
        let a = x().le(Expr::real(10.0));
        let b = x().ge(Expr::real(5.0));
        let s = solve(&a.xor(b), &env).unwrap();
        assert!(s.contains(2.0) && !s.contains(7.0) && s.contains(12.0));
    }

    #[test]
    fn solve_bool_var_equality() {
        let nu = Valuation::new(vec![Value::Bool(true), Value::Bool(false)]);
        fn rate(_: VarId) -> f64 {
            0.0
        }
        let env = DelayEnv::new(&nu, &rate);
        let e = Expr::var(VarId(0)).eq(Expr::var(VarId(1)));
        assert!(solve(&e, &env).unwrap().is_empty());
        let e = Expr::var(VarId(0)).ne(Expr::var(VarId(1)));
        assert_eq!(solve(&e, &env).unwrap(), IntervalSet::all());
    }

    #[test]
    fn solve_ite_guard() {
        // if n >= 2 then x <= 5 else x <= 1   with n = 3
        let (nu, rate) = env_with(0.0, 3);
        let env = DelayEnv::new(&nu, rate);
        let e = Expr::ite(n().ge(Expr::int(2)), x().le(Expr::real(5.0)), x().le(Expr::real(1.0)));
        let s = solve(&e, &env).unwrap();
        assert!(s.contains(5.0) && !s.contains(5.1));
    }

    #[test]
    fn ite_numeric_constant_condition_ok() {
        let (nu, rate) = env_with(0.0, 3);
        let env = DelayEnv::new(&nu, rate);
        let e = Expr::ite(n().ge(Expr::int(2)), Expr::real(10.0), Expr::real(20.0));
        let g = x().le(e);
        let s = solve(&g, &env).unwrap();
        assert_eq!(s.prefix_from_zero(), Some((10.0, true)));
    }
}
