//! Error types for the automata substrate.

use std::fmt;

/// Errors raised while constructing or validating a [`crate::network::Network`].
///
/// These are *modeling* errors: the input specification violates a
/// well-formedness rule of the SLIM semantics (see DESIGN.md §4), such as
/// mixing guarded and Markovian transitions in one location.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum ModelError {
    /// A name was declared twice in the same namespace.
    DuplicateName(String),
    /// A referenced name does not exist.
    UnknownName(String),
    /// A location mixes Boolean-guarded and Markovian (rate) transitions.
    ///
    /// The SLIM semantics forbid this to keep probabilistic transitions
    /// well-defined (§II-E of the paper).
    MixedTransitionKinds { automaton: String, location: String },
    /// A Markovian transition is labeled with a synchronizing action.
    ///
    /// Rate transitions carry the internal action τ and may never
    /// synchronize.
    MarkovianNotInternal { automaton: String, location: String },
    /// A location with Markovian transitions has a non-trivial invariant.
    MarkovianInvariant { automaton: String, location: String },
    /// A Markovian transition has a non-positive rate.
    NonPositiveRate { automaton: String, rate: f64 },
    /// Two automata assign a derivative to the same continuous variable.
    RateConflict { variable: String },
    /// A derivative was assigned to a variable that is not continuous.
    RateOnDiscrete { variable: String },
    /// The data-flow assignments contain a dependency cycle.
    FlowCycle { involving: String },
    /// A flow targets a variable that is also written by transition effects
    /// or has a derivative; flow targets must be pure outputs.
    FlowTargetConflict { variable: String },
    /// An expression failed to type-check.
    Type(TypeError),
    /// An initial value does not match its variable's declared type/range.
    BadInit { variable: String, detail: String },
    /// The model has no automata.
    Empty,
    /// An automaton has no locations.
    NoLocations { automaton: String },
    /// An index (location, transition, variable, action) is out of range.
    IndexOutOfRange { what: &'static str, index: usize, len: usize },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DuplicateName(n) => write!(f, "duplicate name `{n}`"),
            ModelError::UnknownName(n) => write!(f, "unknown name `{n}`"),
            ModelError::MixedTransitionKinds { automaton, location } => write!(
                f,
                "location `{location}` of `{automaton}` mixes guarded and Markovian transitions"
            ),
            ModelError::MarkovianNotInternal { automaton, location } => write!(
                f,
                "Markovian transition in location `{location}` of `{automaton}` must use the internal action"
            ),
            ModelError::MarkovianInvariant { automaton, location } => write!(
                f,
                "location `{location}` of `{automaton}` has Markovian transitions but a non-trivial invariant"
            ),
            ModelError::NonPositiveRate { automaton, rate } => {
                write!(f, "non-positive exponential rate {rate} in `{automaton}`")
            }
            ModelError::RateConflict { variable } => {
                write!(f, "conflicting derivative assignments for continuous variable `{variable}`")
            }
            ModelError::RateOnDiscrete { variable } => {
                write!(f, "derivative assigned to non-continuous variable `{variable}`")
            }
            ModelError::FlowCycle { involving } => {
                write!(f, "data-flow cycle involving `{involving}`")
            }
            ModelError::FlowTargetConflict { variable } => {
                write!(f, "flow target `{variable}` is also written by effects or has a derivative")
            }
            ModelError::Type(e) => write!(f, "type error: {e}"),
            ModelError::BadInit { variable, detail } => {
                write!(f, "bad initial value for `{variable}`: {detail}")
            }
            ModelError::Empty => write!(f, "network contains no automata"),
            ModelError::NoLocations { automaton } => {
                write!(f, "automaton `{automaton}` has no locations")
            }
            ModelError::IndexOutOfRange { what, index, len } => {
                write!(f, "{what} index {index} out of range (len {len})")
            }
        }
    }
}

impl std::error::Error for ModelError {}

impl From<TypeError> for ModelError {
    fn from(e: TypeError) -> Self {
        ModelError::Type(e)
    }
}

/// Static type errors for expressions.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)]
pub enum TypeError {
    /// Operands of an operator have incompatible types.
    Mismatch { context: String },
    /// A Boolean was used where a number was expected, or vice versa.
    Expected { expected: &'static str, found: &'static str, context: String },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::Mismatch { context } => write!(f, "operand type mismatch in {context}"),
            TypeError::Expected { expected, found, context } => {
                write!(f, "expected {expected} but found {found} in {context}")
            }
        }
    }
}

impl std::error::Error for TypeError {}

/// Runtime errors raised while evaluating expressions or stepping a network.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)]
pub enum EvalError {
    /// Division by zero.
    DivisionByZero,
    /// A value fell outside its integer range declaration.
    IntOutOfRange { variable: String, value: i64, lo: i64, hi: i64 },
    /// Integer overflow in arithmetic.
    Overflow,
    /// Dynamic type confusion (should be prevented by validation).
    TypeConfusion { context: String },
    /// An expression over the delay variable is not linear.
    ///
    /// The SLIM subset supports *linear* hybrid dynamics; products or
    /// quotients of two delay-dependent quantities are rejected.
    NonLinear { context: String },
    /// Attempted to advance time in a state whose invariant is already
    /// violated.
    InvariantViolated { automaton: String, location: String },
    /// Attempted to advance time beyond the allowed delay window.
    DelayNotAllowed { requested: f64, allowed_up_to: f64 },
    /// A variable index was out of range for the valuation.
    BadVarIndex(usize),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::DivisionByZero => write!(f, "division by zero"),
            EvalError::IntOutOfRange { variable, value, lo, hi } => {
                write!(f, "value {value} for `{variable}` outside range [{lo}, {hi}]")
            }
            EvalError::Overflow => write!(f, "integer overflow"),
            EvalError::TypeConfusion { context } => {
                write!(f, "dynamic type confusion in {context}")
            }
            EvalError::NonLinear { context } => {
                write!(f, "expression is not linear in the delay: {context}")
            }
            EvalError::InvariantViolated { automaton, location } => {
                write!(f, "invariant of `{automaton}`/`{location}` violated")
            }
            EvalError::DelayNotAllowed { requested, allowed_up_to } => {
                write!(f, "delay {requested} exceeds allowed window (up to {allowed_up_to})")
            }
            EvalError::BadVarIndex(i) => write!(f, "variable index {i} out of range"),
        }
    }
}

impl std::error::Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let errs: Vec<Box<dyn std::error::Error>> = vec![
            Box::new(ModelError::DuplicateName("x".into())),
            Box::new(ModelError::Empty),
            Box::new(TypeError::Mismatch { context: "plus".into() }),
            Box::new(EvalError::DivisionByZero),
            Box::new(EvalError::NonLinear { context: "d*d".into() }),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn type_error_converts_to_model_error() {
        let te = TypeError::Mismatch { context: "test".into() };
        let me: ModelError = te.clone().into();
        assert_eq!(me, ModelError::Type(te));
    }
}
