//! `slimsim rare` — rare-event analysis by importance sampling.

use crate::args::Args;
use crate::common::{load_bound, load_goal, load_hold, load_network};
use slimsim_core::prelude::*;

/// Runs an importance-sampling analysis with boosted fault rates.
pub fn run(args: &Args) -> Result<(), String> {
    let net = load_network(args)?;
    let goal = load_goal(args, &net)?;
    let hold = load_hold(args, &net)?;
    let bound = load_bound(args)?;
    let property = match hold {
        None => TimedReach::new(goal, bound),
        Some(h) => TimedReach::until(h, goal, bound),
    };
    let strategy = StrategyKind::parse(args.opt("strategy", "progressive"))
        .ok_or_else(|| format!("unknown strategy `{}`", args.opt("strategy", "")))?;
    let config = RareEventConfig {
        boost: args.opt_f64("boost", 100.0)?,
        rel_err: args.opt_f64("rel-err", 0.1)?,
        confidence: 1.0 - args.opt_f64("delta", 0.05)?,
        strategy,
        max_paths: args.opt_u64("max-paths", 1_000_000)?,
        seed: args.opt_u64("seed", 0xAE0C0FFE)?,
        ..Default::default()
    };

    let r = analyze_rare(&net, &property, &config).map_err(|e| e.to_string())?;
    if !args.has_flag("quiet") {
        println!("model      : {} automata, {} variables", net.automata().len(), net.vars().len());
        println!("property   : P(◇[0,{bound}] goal), importance sampling");
        println!("boost      : ×{} on all Markovian rates", config.boost);
        println!("strategy   : {}", config.strategy);
        println!(
            "paths      : {} ({} hits under the biased measure)",
            r.estimate.samples, r.estimate.hits
        );
        println!("converged  : {}", if r.converged { "yes" } else { "NO (max-paths hit)" });
        println!("wall time  : {:?}", r.wall);
    }
    println!("{}", r.estimate);
    if !r.converged {
        eprintln!(
            "warning: relative precision {} not reached; raise --boost or --max-paths",
            config.rel_err
        );
    }
    Ok(())
}
