//! `slimsim info` — print the lowered network.

use crate::args::Args;
use crate::common::load_network;
use slim_automata::automaton::GuardKind;

/// Prints a structural summary of the lowered network (or, with `--dot`,
/// a Graphviz rendering of its automata).
pub fn run(args: &Args) -> Result<(), String> {
    let net = load_network(args)?;
    if args.has_flag("dot") {
        print!("{}", slim_automata::dot::to_dot(&net));
        return Ok(());
    }
    println!(
        "network: {} automata, {} variables, {} actions, {} flows",
        net.automata().len(),
        net.vars().len(),
        net.actions().len(),
        net.flows().len()
    );
    println!("\nvariables:");
    for decl in net.vars() {
        println!("  {:<40} {:<12} init {}", decl.name, decl.ty.to_string(), decl.init);
    }
    println!("\nautomata:");
    for a in net.automata() {
        let markovian = a.transitions.iter().filter(|t| t.guard.is_markovian()).count();
        println!(
            "  {:<40} {} locations, {} transitions ({} Markovian)",
            a.name,
            a.locations.len(),
            a.transitions.len(),
            markovian
        );
        for (i, loc) in a.locations.iter().enumerate() {
            let init = if i == a.init.0 { " (initial)" } else { "" };
            let inv = if loc.invariant.is_const_true() {
                String::new()
            } else {
                format!(" while {}", net.render_expr(&loc.invariant))
            };
            println!("    mode {}{init}{inv}", loc.name);
        }
        for t in &a.transitions {
            let label = match &t.guard {
                GuardKind::Markovian(r) => format!("rate {r}"),
                GuardKind::Boolean(g) if g.is_const_true() => String::new(),
                GuardKind::Boolean(g) => format!("when {}", net.render_expr(g)),
            };
            let urgent = if t.urgent { "urgent " } else { "" };
            println!(
                "    {} -[ {urgent}{} {label} ]-> {}",
                a.locations[t.from.0].name,
                net.actions()[t.action.0].name,
                a.locations[t.to.0].name
            );
        }
    }
    if !net.flows().is_empty() {
        println!("\nflows (topological order):");
        for f in net.flows() {
            println!("  {} := {}", net.name_of(f.target), net.render_expr(&f.expr));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn info_runs_on_builtins() {
        for model in ["gps", "launcher", "power-system"] {
            let a = crate::args::Args::parse(["info", model].iter().map(|s| s.to_string()));
            run(&a).expect(model);
        }
    }

    #[test]
    fn dot_flag_produces_digraph() {
        // `run` prints; just ensure it succeeds with the flag set.
        let a = crate::args::Args::parse(["info", "gps", "--dot"].iter().map(|s| s.to_string()));
        run(&a).expect("dot output");
    }
}
