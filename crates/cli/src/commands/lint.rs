//! `slimsim lint` — run the static lint passes over a model.
//!
//! For a `.slim` file the front-end lints (`S0xx`) run first, with source
//! excerpts; when the front end is clean and a `--root Type.Impl` is given
//! (or the model has exactly one implementation) the model is lowered and
//! the network passes (`S1xx`/`S2xx`/`S3xx`) run too. Built-in models
//! skip the front end and lint the instantiated network directly.
//!
//! `--verify-bytecode` additionally compiles the (lint-clean) network's
//! step tables and runs the bytecode verifier over every compiled
//! program — guards, effects, invariants, flows.

use crate::args::Args;
use crate::common::load_network;
use slim_automata::network::Network;
use slim_lang::{analyze_model, lower, parse};
use slim_lint::{
    error_count, has_errors, lint_network, render_json_all, render_text_all, Diagnostic, Level,
    LintConfig, SourceFile,
};

/// Builds the lint configuration from `--allow`/`--warn`/`--deny`
/// (comma-separated code lists) and `--deny-lints`.
pub fn load_lint_config(args: &Args) -> Result<LintConfig, String> {
    let mut cfg = LintConfig::new();
    cfg.deny_warnings = args.has_flag("deny-lints");
    for (key, level) in [("allow", Level::Allow), ("warn", Level::Warn), ("deny", Level::Deny)] {
        if let Some(list) = args.options.get(key) {
            for lint in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                if !cfg.set_by_name(lint, level) {
                    return Err(format!("--{key}: unknown lint `{lint}`"));
                }
            }
        }
    }
    Ok(cfg)
}

/// Prints diagnostics in text (with excerpts when the source is at hand)
/// or JSON-lines form.
fn emit(args: &Args, diags: &[Diagnostic], src: Option<&SourceFile<'_>>) {
    if args.has_flag("json") {
        let rendered = render_json_all(diags, src.map(|s| s.name));
        if !rendered.is_empty() {
            println!("{rendered}");
        }
    } else {
        let rendered = render_text_all(diags, src);
        if !rendered.is_empty() {
            println!("{rendered}");
        }
    }
}

/// Runs the linter; exits nonzero iff error-level diagnostics remain.
pub fn run(args: &Args) -> Result<(), String> {
    let target = args.positional.first().ok_or("expected a model: a .slim file or a built-in")?;
    let cfg = load_lint_config(args)?;
    let mut all: Vec<Diagnostic> = Vec::new();
    // Network kept around for `--verify-bytecode` (only lowered models
    // have one; compiling requires a well-formed network, so the stage
    // runs only when no error-level lints remain).
    let mut compiled_target: Option<Network> = None;

    if std::path::Path::new(target.as_str()).extension().is_some_and(|e| e == "slim") {
        let text =
            std::fs::read_to_string(target).map_err(|e| format!("cannot read `{target}`: {e}"))?;
        let src = SourceFile::new(target, &text);
        let model = parse(&text).map_err(|e| format!("{target}: {e}"))?;
        let front = cfg.apply(analyze_model(&model));
        let front_clean = !has_errors(&front);
        all.extend(front);

        // Lower and lint the network when the front end is clean and a
        // root is known (explicit --root, or an unambiguous model).
        let root = match args.options.get("root") {
            Some(r) => {
                let (ty, im) = r
                    .split_once('.')
                    .ok_or_else(|| format!("--root must be Type.Impl, got `{r}`"))?;
                Some((ty.to_string(), im.to_string()))
            }
            None if model.impls.len() == 1 => {
                let (ty, im) = &model.impls[0].name;
                Some((ty.clone(), im.clone()))
            }
            None => None,
        };
        if front_clean {
            if let Some((ty, im)) = root {
                let name = args.opt("name", "root");
                let net =
                    lower(&model, &ty, &im, name).map_err(|e| format!("{target}: {e}"))?.network;
                all.extend(lint_network(&net, &cfg));
                compiled_target = Some(net);
            } else if !args.has_flag("quiet") {
                let impls: Vec<String> =
                    model.impls.iter().map(|i| format!("{}.{}", i.name.0, i.name.1)).collect();
                eprintln!(
                    "note: network lints skipped: {} implementations ({}); pass --root Type.Impl",
                    impls.len(),
                    impls.join(", ")
                );
            }
        }
        emit(args, &all, Some(&src));
    } else {
        let net = load_network(args)?;
        all = lint_network(&net, &cfg);
        emit(args, &all, None);
        compiled_target = Some(net);
    }

    let errors = error_count(&all);
    if errors > 0 {
        Err(format!("{errors} error-level lint(s)"))
    } else {
        if args.has_flag("verify-bytecode") {
            match &compiled_target {
                Some(net) => verify_bytecode(net, args.has_flag("quiet"))?,
                None => {
                    return Err(
                        "--verify-bytecode needs a lowered network; pass --root Type.Impl".into()
                    )
                }
            }
        }
        if all.is_empty() && !args.has_flag("json") && !args.has_flag("quiet") {
            println!("clean: no lints");
        }
        Ok(())
    }
}

/// Compiles the step tables and runs the stack-depth/type/jump-target
/// verifier over every compiled program, printing a one-line inventory.
fn verify_bytecode(net: &Network, quiet: bool) -> Result<(), String> {
    let report = net
        .compile()
        .verify_bytecode()
        .map_err(|e| format!("bytecode verification failed: {e}"))?;
    if !quiet {
        println!(
            "bytecode: {} program(s) verified, {} op(s); {} static guard(s), {} fallback guard(s)",
            report.programs(),
            report.ops,
            report.static_guards,
            report.fallback_guards
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(str::to_string))
    }

    fn example(name: &str) -> String {
        format!("{}/../../examples/models/{name}", env!("CARGO_MANIFEST_DIR"))
    }

    #[test]
    fn verify_bytecode_on_clean_model() {
        let a = args(&format!(
            "lint {} --verify-bytecode --deny-lints --quiet",
            example("heartbeat.slim")
        ));
        run(&a).expect("heartbeat.slim is lint-clean and its bytecode verifies");
    }

    #[test]
    fn verify_bytecode_on_builtin() {
        let a = args("lint gps --verify-bytecode --quiet");
        run(&a).expect("builtin models compile to verifiable bytecode");
    }

    #[test]
    fn broken_model_fails_deny_lints_before_verification() {
        let a = args(&format!(
            "lint {} --verify-bytecode --deny-lints --quiet",
            example("broken.slim")
        ));
        assert!(run(&a).is_err(), "warnings escalate to errors under --deny-lints");
    }
}
