//! `slimsim profile` — kernel profiling run.
//!
//! Runs the full statistical analysis with the kernel profiler attached
//! and renders the result as bytecode/guard/transition heat maps plus a
//! hierarchical phase-attribution tree. `--out <file>` additionally
//! writes the versioned [`ProfileReport`] JSON document, which is
//! byte-identical across worker counts at a fixed seed (see
//! `docs/profiling.md`). `--suggest-fusions` annotates the top-K digrams
//! with the compiler's superinstruction (if any) that covers each, so
//! users can see why a model does or doesn't benefit from fusion.

use crate::args::Args;
use crate::common::{
    load_bound, load_config, load_goal, load_hold, load_network_spanned, profile_labels_with_spans,
};
use slim_obs::{PhaseProfiler, ProfileReport};
use slimsim_core::prelude::*;

/// Runs the profiled analysis and prints the heat maps.
pub fn run(args: &Args) -> Result<(), String> {
    let mut phases = PhaseProfiler::new();
    phases.begin("profile");
    phases.begin("load");
    let loaded = load_network_spanned(args);
    phases.end();
    let (net, spans) = loaded?;
    let goal = load_goal(args, &net)?;
    let hold = load_hold(args, &net)?;
    let bound = load_bound(args)?;
    let config = load_config(args)?;
    let property = match hold {
        None => TimedReach::new(goal, bound),
        Some(h) => TimedReach::until(h, goal, bound),
    };
    phases.begin("simulate");
    let outcome = analyze_profiled(&net, &property, &config, None);
    phases.end();
    let (result, profile) = outcome.map_err(|e| e.to_string())?;
    let report = phases.time("report", || {
        let labels = profile_labels_with_spans(&net, &spans);
        let model = args.positional.first().cloned().unwrap_or_default();
        ProfileReport::from_profile(&profile, &labels, &model, config.seed, result.estimate.samples)
    });
    let problems = report.validate();
    if !problems.is_empty() {
        return Err(format!("internal: profile fails validation: {}", problems.join("; ")));
    }
    if let Some(path) = args.options.get("out") {
        let text = report.to_json().to_pretty() + "\n";
        std::fs::write(path, text).map_err(|e| format!("cannot write `{path}`: {e}"))?;
    }
    phases.end();
    if !args.has_flag("quiet") {
        let top = args.opt_usize("top", 10)?;
        print!("{}", report.render_text(top));
        println!("\nphases:");
        print!("{}", phases.render());
        if let Some(path) = args.options.get("out") {
            println!("profile written to {path}");
        }
    }
    if args.has_flag("suggest-fusions") {
        let top = args.opt_usize("top", 10)?;
        print!("{}", render_fusion_suggestions(&report, top));
    }
    println!("{}", result.estimate);
    Ok(())
}

/// Renders the top-K digrams with the fused opcode (if any) the peephole
/// pass rewrites each into. Printed even under `--quiet` so CI can
/// capture the section as a standalone artifact.
fn render_fusion_suggestions(report: &ProfileReport, top: usize) -> String {
    use std::fmt::Write as _;

    let mut out = String::new();
    let shown = report.digrams.len().min(top);
    let _ = writeln!(out, "fusion coverage of the top {shown} digram(s):");
    if report.digrams.is_empty() {
        let _ = writeln!(out, "  (no digrams recorded — no bytecode executed)");
        return out;
    }
    let width = report.digrams.iter().take(top).map(|e| e.label.len()).max().unwrap_or(0);
    let mut covered = 0usize;
    for e in report.digrams.iter().take(top) {
        use slim_automata::prelude::{fusion_for_digram, is_fused_op_name};
        let pair = e.label.split_once(" -> ");
        let note = match pair.and_then(|(a, b)| fusion_for_digram(a, b)) {
            Some(f) => {
                covered += 1;
                format!("fused into {f}")
            }
            // The profiled stream is post-fusion: a digram touching a
            // superinstruction is already the peephole pass's output.
            None if pair.is_some_and(|(a, b)| is_fused_op_name(a) || is_fused_op_name(b)) => {
                covered += 1;
                "already fused".to_string()
            }
            None => "not fused".to_string(),
        };
        let _ = writeln!(out, "  {:width$}  {:>12}  {note}", e.label, e.count);
    }
    let _ = writeln!(out, "  {covered}/{shown} digram(s) covered by the current fusion set");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_obs::Json;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(str::to_string))
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(name)
    }

    #[test]
    fn profile_builtin_writes_valid_report() {
        let path = tmp("slimsim_test_profile_cmd.json");
        let a = args(&format!(
            "profile sensor-filter --size 2 --bound 1.0 --epsilon 0.2 --delta 0.2 --quiet \
             --out {}",
            path.display()
        ));
        run(&a).expect("profiled run succeeds");
        let text = std::fs::read_to_string(&path).unwrap();
        let report = ProfileReport::from_json(&Json::parse(&text).unwrap()).expect("schema parses");
        assert_eq!(report.validate(), Vec::<String>::new());
        assert_eq!(report.model, "sensor-filter");
        assert!(report.total_ops > 0, "the sensor filter's guards execute bytecode");
        assert!(!report.digrams.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn profile_output_is_worker_count_invariant() {
        // The serialized profile is a function of (model, seed) alone:
        // worker count must not leak into a single byte of it.
        let mut texts = Vec::new();
        for workers in [1usize, 2, 4] {
            let path = tmp(&format!("slimsim_test_profile_w{workers}.json"));
            let a = args(&format!(
                "profile voting --bound 1.0 --epsilon 0.2 --delta 0.2 --seed 42 \
                 --workers {workers} --quiet --out {}",
                path.display()
            ));
            run(&a).expect("profiled run succeeds");
            texts.push(std::fs::read_to_string(&path).unwrap());
            let _ = std::fs::remove_file(&path);
        }
        assert_eq!(texts[0], texts[1], "1 vs 2 workers");
        assert_eq!(texts[0], texts[2], "1 vs 4 workers");
    }

    #[test]
    fn profile_of_slim_file_resolves_source_spans() {
        let model = format!("{}/../../examples/models/prunable.slim", env!("CARGO_MANIFEST_DIR"));
        let path = tmp("slimsim_test_profile_spans.json");
        let a = args(&format!(
            "profile {model} --root Pump.Main --bound 1.0 --goal-var root.done \
             --epsilon 0.2 --delta 0.2 --quiet --out {}",
            path.display()
        ));
        run(&a).expect("profiled run succeeds");
        let text = std::fs::read_to_string(&path).unwrap();
        let report = ProfileReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert!(!report.transitions.is_empty(), "something must fire to reach the goal");
        let spanned = report.transitions.iter().filter_map(|t| t.span.as_deref());
        for span in spanned.clone() {
            // file:line:col — the file part is the path as given.
            assert!(span.starts_with(&model), "unexpected span `{span}`");
            let tail = &span[model.len() + 1..];
            let (line, col) = tail.split_once(':').expect("line:col tail");
            assert!(line.parse::<u32>().unwrap() > 0);
            assert!(col.parse::<u32>().unwrap() > 0);
        }
        assert!(spanned.count() > 0, "fired .slim transitions carry source spans");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn suggest_fusions_annotates_digrams() {
        let path = tmp("slimsim_test_profile_fusions.json");
        let a = args(&format!(
            "profile sensor-filter --size 2 --bound 1.0 --epsilon 0.2 --delta 0.2 --quiet \
             --suggest-fusions --out {}",
            path.display()
        ));
        run(&a).expect("profiled run succeeds");
        let text = std::fs::read_to_string(&path).unwrap();
        let report = ProfileReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        let rendered = render_fusion_suggestions(&report, 10);
        assert!(rendered.contains("fusion coverage"), "{rendered}");
        assert!(rendered.contains("digram(s) covered by the current fusion set"), "{rendered}");
        // The sensor filter's guards are fused compares, so the hottest
        // digrams must be recognized as already-fused superinstructions.
        assert!(
            rendered.contains("already fused") || rendered.contains("fused into"),
            "{rendered}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn profile_rejects_sequential_generators() {
        let a = args("profile voting --bound 1.0 --generator gauss --quiet");
        let err = run(&a).unwrap_err();
        assert!(err.contains("fixed-target"), "{err}");
    }
}
