//! `slimsim replay` — re-drive the engine from a recorded trace and
//! verify step-by-step state agreement and the final verdict.
//!
//! The trace's `Start` header is self-describing: it names the model (a
//! builtin or a `.slim` path), the goal/hold selectors and the bound, so
//! `slimsim replay <trace.jsonl>` needs no further arguments. Model
//! options from the command line override the header (useful when a
//! `.slim` file moved).

use crate::args::Args;
use crate::common::{args_from_header, load_goal, load_hold, load_network};
use slimsim_core::prelude::*;

/// Replays one recorded trace file and reports the verification result.
pub fn run(args: &Args) -> Result<(), String> {
    let path = args.positional.first().ok_or("expected a trace file: slimsim replay <trace>")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let events = parse_trace(&text).map_err(|e| format!("{path}: {e}"))?;
    let Some(TraceEvent::Start {
        format_version,
        model,
        path_index,
        seed,
        strategy,
        bound,
        args: kv,
        ..
    }) = events.first()
    else {
        return Err(format!("{path}: trace does not begin with a Start header"));
    };
    if *format_version > TRACE_FORMAT_VERSION {
        return Err(format!(
            "{path}: trace format v{format_version} is newer than this tool's v{TRACE_FORMAT_VERSION}"
        ));
    }

    // Rebuild the run context from the header, letting explicit command
    // line options (e.g. a relocated --root model file) take precedence.
    let mut header = args_from_header(model, *bound, kv);
    for (k, v) in &args.options {
        header.options.insert(k.clone(), v.clone());
    }
    if let Some(override_model) = args.positional.get(1) {
        header.positional[0] = override_model.clone();
    }
    let net = load_network(&header)?;
    let goal = load_goal(&header, &net)?;
    let hold = load_hold(&header, &net)?;
    let property = match hold {
        None => TimedReach::new(goal, *bound),
        Some(h) => TimedReach::until(h, goal, *bound),
    };

    let outcome = replay_events(&net, &property, &events).map_err(|e| e.to_string())?;
    if !args.has_flag("quiet") {
        println!("trace      : {path}");
        println!("model      : {model}");
        println!("recorded   : path {path_index}, seed {seed}, strategy {strategy}");
        println!(
            "verified   : {} events ({} snapshots compared)",
            outcome.events_checked, outcome.snapshots_checked
        );
    }
    println!(
        "verdict    : {} at t={:.6} after {} steps — replay agrees",
        outcome.verdict, outcome.end_time, outcome.steps
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(str::to_string))
    }

    /// End-to-end: analyze with witness capture, then replay every
    /// written witness through the `replay` command.
    #[test]
    fn captured_witnesses_replay_cleanly() {
        let dir = std::env::temp_dir().join("slimsim_test_replay_cmd");
        let _ = std::fs::remove_dir_all(&dir);
        let a = args(&format!(
            "analyze voting --bound 1.0 --epsilon 0.2 --delta 0.2 --workers 2 --seed 11 --quiet --witnesses 2 --trace-dir {}",
            dir.display()
        ));
        crate::commands::analyze::run(&a).expect("analysis with witness capture succeeds");
        let mut files: Vec<_> =
            std::fs::read_dir(&dir).expect("trace dir exists").map(|e| e.unwrap().path()).collect();
        files.sort();
        assert!(!files.is_empty(), "no witness traces were written");
        for f in &files {
            let r = args(&format!("replay {} --quiet", f.display()));
            run(&r).unwrap_or_else(|e| panic!("replay of {} failed: {e}", f.display()));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_header_is_rejected() {
        let path = std::env::temp_dir().join("slimsim_test_replay_noheader.jsonl");
        std::fs::write(
            &path,
            "{\"type\":\"verdict\",\"verdict\":\"satisfied\",\"at\":0,\"steps\":0}\n",
        )
        .unwrap();
        let r = args(&format!("replay {}", path.display()));
        let err = run(&r).expect_err("header-less trace must be rejected");
        assert!(err.contains("Start header"), "unexpected error: {err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_error() {
        assert!(run(&args("replay /nonexistent/trace.jsonl")).is_err());
    }
}
