//! `slimsim ctmc` — the COMPASS-style CTMC baseline pipeline.

use crate::args::Args;
use crate::common::{load_bound, load_goal, load_network};
use slim_automata::prelude::NetState;
use slim_ctmc::analysis::{check_timed_reachability, PipelineConfig};

/// Runs the explore → eliminate → lump → uniformization pipeline.
pub fn run(args: &Args) -> Result<(), String> {
    let net = load_network(args)?;
    let goal = load_goal(args, &net)?;
    let bound = load_bound(args)?;
    let config =
        PipelineConfig { skip_lumping: args.has_flag("skip-lumping"), ..Default::default() };

    let net_ref = &net;
    let goal_fn = move |s: &NetState| goal.holds(net_ref, s);
    let r = check_timed_reachability(&net, &goal_fn, bound, &config).map_err(|e| e.to_string())?;

    if !args.has_flag("quiet") {
        println!("states     : {} reachable, {} transitions", r.states, r.transitions);
        println!("tangible   : {} (after vanishing elimination)", r.tangible_states);
        println!("lumped     : {}", r.lumped_states);
        println!("memory     : ~{} KiB (stored state space)", r.approx_memory_bytes / 1024);
        let (explore, eliminate, lump, transient) = r.phase_wall;
        println!(
            "wall time  : {:?} (explore {:?}, eliminate {:?}, lump {:?}, transient {:?})",
            r.wall, explore, eliminate, lump, transient
        );
    }
    println!("P(◇[0,{bound}] goal) = {:.9}", r.probability);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        crate::args::Args::parse(s.split_whitespace().map(str::to_string))
    }

    #[test]
    fn ctmc_builtin_runs() {
        run(&args("ctmc sensor-filter --size 2 --bound 1.0 --quiet")).expect("pipeline runs");
        run(&args("ctmc sensor-filter --size 2 --bound 1.0 --quiet --skip-lumping"))
            .expect("ablation runs");
    }

    #[test]
    fn ctmc_rejects_timed_models() {
        let r = run(&args("ctmc gps --bound 1.0 --goal-var gps.measurement --quiet"));
        assert!(r.is_err(), "timed model must be rejected");
        assert!(r.unwrap_err().contains("timed"));
    }
}
