//! CLI subcommands.

pub mod analyze;
pub mod ctmc;
pub mod fuzz;
pub mod info;
pub mod interactive;
pub mod lint;
pub mod profile;
pub mod rare;
pub mod replay;
pub mod report;
pub mod validate;
