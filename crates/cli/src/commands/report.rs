//! `slimsim report` — parse, validate and summarize a report document.
//!
//! Reads a JSON document written by `slimsim analyze --report <path>`
//! (a [`RunReport`]), by `slimsim profile --out <path>` /
//! `analyze --profile <path>` (a [`ProfileReport`], recognized by its
//! `"kind": "kernel-profile"` member), or by
//! `analyze --analysis-summary <path>` (an analysis summary, recognized
//! by `"kind": "analysis-summary"` — or, for v1 documents predating the
//! `kind` member, by its `automata` + `dead_transitions` arrays), checks
//! it against the schema and the structural validator, and prints a
//! short summary. Exits non-zero on any schema or consistency problem,
//! which is what the CI smoke jobs key on.

use crate::args::Args;
use slim_obs::{Json, ProfileReport, RunReport, PROFILE_KIND};

/// Validates the report file and prints its summary.
pub fn run(args: &Args) -> Result<(), String> {
    let path = args.positional.first().ok_or("expected a report file: slimsim report <path>")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let json = Json::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    // Kernel-profile documents are self-describing via their `kind`.
    if json.get("kind").and_then(Json::as_str) == Some(PROFILE_KIND) {
        let report = ProfileReport::from_json(&json).map_err(|e| format!("{path}: {e}"))?;
        fail_on_problems(path, report.validate())?;
        if !args.has_flag("quiet") {
            println!("{path}: valid kernel profile (schema v{})", report.schema_version);
            print_profile_summary(&report);
        }
        return Ok(());
    }
    // Analysis summaries: v2 documents carry `kind`; v1 documents are
    // recognized structurally so pre-bump artifacts keep validating.
    let is_summary = json.get("kind").and_then(Json::as_str) == Some("analysis-summary")
        || (json.get("kind").is_none()
            && json.get("automata").is_some()
            && json.get("dead_transitions").is_some());
    if is_summary {
        let problems = validate_analysis_summary(&json);
        fail_on_problems(path, problems)?;
        if !args.has_flag("quiet") {
            print_analysis_summary(path, &json);
        }
        return Ok(());
    }
    let report = RunReport::from_json(&json).map_err(|e| format!("{path}: {e}"))?;
    fail_on_problems(path, report.validate())?;
    if !args.has_flag("quiet") {
        print_summary(path, &report);
    }
    Ok(())
}

/// Structural validation of an analysis-summary document (v1 or v2).
fn validate_analysis_summary(json: &Json) -> Vec<String> {
    let mut problems = Vec::new();
    let version = json.get("schema_version").and_then(Json::as_u64).unwrap_or(1);
    if version == 0 || version > 2 {
        problems.push(format!("unknown analysis-summary schema_version {version}"));
    }
    let Some(automata) = json.get("automata").and_then(Json::as_arr) else {
        problems.push("missing `automata` array".to_string());
        return problems;
    };
    if automata.is_empty() {
        problems.push("`automata` is empty".to_string());
    }
    for a in automata {
        let name = a.get("name").and_then(Json::as_str).unwrap_or("?");
        let locs = a.get("locations").and_then(Json::as_u64).unwrap_or(0);
        let reach = a.get("reachable").and_then(Json::as_u64).unwrap_or(0);
        let trans = a.get("transitions").and_then(Json::as_u64).unwrap_or(0);
        let live = a.get("live").and_then(Json::as_u64).unwrap_or(0);
        if reach > locs {
            problems.push(format!("automaton `{name}`: reachable {reach} > locations {locs}"));
        }
        if live > trans {
            problems.push(format!("automaton `{name}`: live {live} > transitions {trans}"));
        }
    }
    let dead = json.get("dead_transitions").and_then(Json::as_arr);
    match dead {
        None => problems.push("missing `dead_transitions` array".to_string()),
        Some(rows) => {
            for d in rows {
                match d.get("reason").and_then(Json::as_str) {
                    Some("dead-source" | "dead-guard" | "zone-dead-guard" | "sync-blocked") => {}
                    Some(other) => problems.push(format!("unknown dead reason `{other}`")),
                    None => problems.push("dead transition without `reason`".to_string()),
                }
            }
        }
    }
    if version >= 2 {
        match json.get("locations").and_then(Json::as_arr) {
            None => problems.push("v2 summary missing `locations` array".to_string()),
            Some(rows) => {
                for l in rows {
                    if l.get("automaton").and_then(Json::as_str).is_none()
                        || l.get("location").and_then(Json::as_str).is_none()
                    {
                        problems.push("location row missing automaton/location".to_string());
                    }
                    if let Some(t) = l.get("min_time").and_then(Json::as_f64) {
                        if t < 0.0 {
                            problems.push(format!("negative min_time {t}"));
                        }
                    }
                }
            }
        }
        if json.get("zones").is_none() {
            problems.push("v2 summary missing `zones` member".to_string());
        }
    }
    problems
}

fn print_analysis_summary(path: &str, json: &Json) {
    let version = json.get("schema_version").and_then(Json::as_u64).unwrap_or(1);
    println!("{path}: valid analysis summary (schema v{version})");
    let rounds = json.get("rounds").and_then(Json::as_u64).unwrap_or(0);
    let widenings = json.get("widenings").and_then(Json::as_u64).unwrap_or(0);
    println!("  fixpoint : {rounds} round(s), {widenings} widening(s)");
    if let Some(z) = json.get("zones") {
        if !matches!(z, Json::Null) {
            println!(
                "  zones    : {} clock(s), k = {}, {} zone-dead guard(s), {} timelock(s)",
                z.get("clocks").and_then(Json::as_u64).unwrap_or(0),
                z.get("k").and_then(Json::as_f64).unwrap_or(0.0),
                z.get("zone_dead_guards").and_then(Json::as_u64).unwrap_or(0),
                z.get("timelocks").and_then(Json::as_u64).unwrap_or(0),
            );
        }
    }
    for a in json.get("automata").and_then(Json::as_arr).unwrap_or(&[]) {
        println!(
            "  {} : {}/{} locations reachable, {}/{} transitions live",
            a.get("name").and_then(Json::as_str).unwrap_or("?"),
            a.get("reachable").and_then(Json::as_u64).unwrap_or(0),
            a.get("locations").and_then(Json::as_u64).unwrap_or(0),
            a.get("live").and_then(Json::as_u64).unwrap_or(0),
            a.get("transitions").and_then(Json::as_u64).unwrap_or(0),
        );
    }
    let dead = json.get("dead_transitions").and_then(Json::as_arr).map_or(0, <[Json]>::len);
    println!("  dead     : {dead} transition(s)");
    let with_goal = json.get("locations").and_then(Json::as_arr).map_or(0, |rows| {
        rows.iter().filter(|l| l.get("steps_to_goal").and_then(Json::as_u64).is_some()).count()
    });
    if with_goal > 0 {
        println!("  distance : {with_goal} location(s) with a goal distance");
    }
}

fn fail_on_problems(path: &str, problems: Vec<String>) -> Result<(), String> {
    if problems.is_empty() {
        return Ok(());
    }
    let mut msg = format!("{path}: report fails validation:");
    for p in &problems {
        msg.push_str("\n  - ");
        msg.push_str(p);
    }
    Err(msg)
}

fn print_profile_summary(p: &ProfileReport) {
    println!("  model    : {} (seed {}, {} paths)", p.model, p.seed, p.samples);
    println!(
        "  kernel   : {} ops across {} opcodes, {} digrams, {} delay solves",
        p.total_ops,
        p.ops.len(),
        p.digrams.len(),
        p.delay_solves
    );
    println!(
        "  heat     : {} guards, {} transitions, {} locations ranked",
        p.guards.len(),
        p.transitions.len(),
        p.locations.len()
    );
    if p.batches > 0 {
        println!("  batches  : {} ({} scalar drains)", p.batches, p.scalar_drains);
    }
    if let Some(hot) = p.ops.first() {
        println!("  hottest  : {} ({} executions)", hot.label, hot.count);
    }
}

fn print_summary(path: &str, r: &RunReport) {
    println!("{path}: valid run report (schema v{})", r.schema_version);
    println!(
        "  tool     : {} {} on {}/{} ({} cpus)",
        r.tool_name, r.tool_version, r.host.os, r.host.arch, r.host.cpus
    );
    println!(
        "  model    : {} ({} automata, {} variables)",
        r.model.name, r.model.automata, r.model.variables
    );
    println!(
        "  property : {} bound={} goal={}",
        r.property.kind, r.property.bound, r.property.goal
    );
    println!(
        "  config   : ε={} δ={} {} / {} seed={} workers={}",
        r.config.epsilon,
        r.config.delta,
        r.config.strategy,
        r.config.generator,
        r.config.seed,
        r.config.workers
    );
    println!(
        "  estimate : {:.6} ± {} at {:.1}% confidence ({} samples, {} successes)",
        r.estimate.mean,
        r.estimate.epsilon,
        r.estimate.confidence * 100.0,
        r.estimate.samples,
        r.estimate.successes
    );
    let phases = r
        .phases
        .iter()
        .map(|(name, ms)| format!("{name} {ms:.1}ms"))
        .collect::<Vec<_>>()
        .join(", ");
    println!("  phases   : {phases} (wall {:.1}ms)", r.wall_ms);
    for w in &r.workers {
        println!(
            "  worker {} : {} paths ({} satisfied), busy {:.1}ms, {:.0} paths/s",
            w.worker, w.paths, w.satisfied, w.busy_ms, w.paths_per_sec
        );
    }
    if let Some(p) = &r.profile {
        println!("  profile  : embedded kernel profile (schema v{})", p.schema_version);
        print_profile_summary(p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(str::to_string))
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(name)
    }

    #[test]
    fn analyze_report_then_validate() {
        let path = tmp("slimsim_test_report_cmd.json");
        let a = args(&format!(
            "analyze sensor-filter --size 2 --bound 1.0 --epsilon 0.2 --delta 0.2 --quiet --report {}",
            path.display()
        ));
        super::super::analyze::run(&a).expect("analysis with report succeeds");
        let v = args(&format!("report {} --quiet", path.display()));
        run(&v).expect("fresh report validates");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn profile_report_then_validate() {
        let path = tmp("slimsim_test_report_profile_cmd.json");
        let a = args(&format!(
            "profile sensor-filter --size 2 --bound 1.0 --epsilon 0.2 --delta 0.2 --quiet \
             --out {}",
            path.display()
        ));
        super::super::profile::run(&a).expect("profiled run succeeds");
        let v = args(&format!("report {} --quiet", path.display()));
        run(&v).expect("fresh kernel profile validates");
        // Corrupt an invariant: total_ops must equal the op-count sum.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut report = ProfileReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        report.total_ops += 1;
        std::fs::write(&path, report.to_json().to_pretty()).unwrap();
        let err = run(&args(&format!("report {}", path.display()))).unwrap_err();
        assert!(err.contains("fails validation"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn embedded_profile_in_run_report_validates() {
        let report_path = tmp("slimsim_test_report_embedded.json");
        let profile_path = tmp("slimsim_test_report_embedded_profile.json");
        let a = args(&format!(
            "analyze sensor-filter --size 2 --bound 1.0 --epsilon 0.2 --delta 0.2 --quiet \
             --report {} --profile {}",
            report_path.display(),
            profile_path.display()
        ));
        super::super::analyze::run(&a).expect("profiled analysis succeeds");
        run(&args(&format!("report {} --quiet", report_path.display()))).expect("report validates");
        let text = std::fs::read_to_string(&report_path).unwrap();
        let report = RunReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        let embedded = report.profile.expect("profile section embedded");
        // The embedded section is the same document as the standalone file.
        let standalone = std::fs::read_to_string(&profile_path).unwrap();
        let standalone = ProfileReport::from_json(&Json::parse(&standalone).unwrap()).unwrap();
        assert_eq!(embedded, standalone);
        assert!(embedded.total_ops > 0);
        let _ = std::fs::remove_file(&report_path);
        let _ = std::fs::remove_file(&profile_path);
    }

    #[test]
    fn analysis_summary_then_validate() {
        let model = format!("{}/../../examples/models/deadline.slim", env!("CARGO_MANIFEST_DIR"));
        let path = tmp("slimsim_test_report_analysis_summary.json");
        let a = args(&format!(
            "analyze {model} --root Timer.Main --goal-var root.done --bound 20 \
             --epsilon 0.2 --delta 0.2 --quiet --analysis-summary {}",
            path.display()
        ));
        super::super::analyze::run(&a).expect("analysis with summary succeeds");
        run(&args(&format!("report {} --quiet", path.display()))).expect("v2 summary validates");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn v1_analysis_summary_fixture_still_validates() {
        // Committed artifact predating the `kind`/`schema_version` bump:
        // recognized structurally, validated under v1 rules.
        let fixture =
            format!("{}/../../tests/golden/analysis-summary-v1.json", env!("CARGO_MANIFEST_DIR"));
        run(&args(&format!("report {fixture} --quiet"))).expect("v1 fixture validates");
    }

    #[test]
    fn rejects_inconsistent_analysis_summaries() {
        let path = tmp("slimsim_test_report_bad_summary.json");
        // reachable > locations and an unknown dead reason.
        std::fs::write(
            &path,
            "{\"kind\":\"analysis-summary\",\"schema_version\":2,\"rounds\":1,\"widenings\":0,\
             \"zones\":null,\
             \"automata\":[{\"name\":\"p\",\"locations\":1,\"reachable\":2,\"transitions\":0,\"live\":0}],\
             \"locations\":[],\
             \"dead_transitions\":[{\"automaton\":\"p\",\"from\":\"a\",\"to\":\"b\",\"reason\":\"bogus\"}]}",
        )
        .unwrap();
        let err = run(&args(&format!("report {}", path.display()))).unwrap_err();
        assert!(err.contains("reachable 2 > locations 1"), "{err}");
        assert!(err.contains("unknown dead reason `bogus`"), "{err}");
        // A v2 document missing its `locations` array is also rejected.
        std::fs::write(
            &path,
            "{\"kind\":\"analysis-summary\",\"schema_version\":2,\"rounds\":1,\"widenings\":0,\
             \"zones\":null,\"automata\":[{\"name\":\"p\",\"locations\":1,\"reachable\":1,\
             \"transitions\":0,\"live\":0}],\"dead_transitions\":[]}",
        )
        .unwrap();
        let err = run(&args(&format!("report {}", path.display()))).unwrap_err();
        assert!(err.contains("missing `locations`"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_missing_and_malformed_files() {
        assert!(run(&args("report /nonexistent/report.json")).is_err());
        let path = tmp("slimsim_test_report_bad.json");
        std::fs::write(&path, "{not json").unwrap();
        let err = run(&args(&format!("report {}", path.display()))).unwrap_err();
        assert!(err.contains("invalid JSON"), "{err}");
        std::fs::write(&path, "{\"schema_version\": 1}").unwrap();
        assert!(run(&args(&format!("report {}", path.display()))).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_internally_inconsistent_reports() {
        let path = tmp("slimsim_test_report_inconsistent.json");
        let a = args(&format!(
            "analyze sensor-filter --size 2 --bound 1.0 --epsilon 0.2 --delta 0.2 --quiet --report {}",
            path.display()
        ));
        super::super::analyze::run(&a).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let json = Json::parse(&text).unwrap();
        let mut report = RunReport::from_json(&json).unwrap();
        report.paths.total += 1;
        std::fs::write(&path, report.to_json().to_pretty()).unwrap();
        let err = run(&args(&format!("report {}", path.display()))).unwrap_err();
        assert!(err.contains("fails validation"), "{err}");
        let _ = std::fs::remove_file(&path);
    }
}
