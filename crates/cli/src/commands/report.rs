//! `slimsim report` — parse, validate and summarize a run report.
//!
//! Reads a JSON document written by `slimsim analyze --report <path>`,
//! checks it against the schema ([`RunReport::from_json`]) and the
//! structural validator ([`RunReport::validate`]), and prints a short
//! summary. Exits non-zero on any schema or consistency problem, which
//! is what the CI smoke job keys on.

use crate::args::Args;
use slim_obs::{Json, RunReport};

/// Validates the report file and prints its summary.
pub fn run(args: &Args) -> Result<(), String> {
    let path = args.positional.first().ok_or("expected a report file: slimsim report <path>")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let json = Json::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
    let report = RunReport::from_json(&json).map_err(|e| format!("{path}: {e}"))?;
    let problems = report.validate();
    if !problems.is_empty() {
        let mut msg = format!("{path}: report fails validation:");
        for p in &problems {
            msg.push_str("\n  - ");
            msg.push_str(p);
        }
        return Err(msg);
    }
    if !args.has_flag("quiet") {
        print_summary(path, &report);
    }
    Ok(())
}

fn print_summary(path: &str, r: &RunReport) {
    println!("{path}: valid run report (schema v{})", r.schema_version);
    println!(
        "  tool     : {} {} on {}/{} ({} cpus)",
        r.tool_name, r.tool_version, r.host.os, r.host.arch, r.host.cpus
    );
    println!(
        "  model    : {} ({} automata, {} variables)",
        r.model.name, r.model.automata, r.model.variables
    );
    println!(
        "  property : {} bound={} goal={}",
        r.property.kind, r.property.bound, r.property.goal
    );
    println!(
        "  config   : ε={} δ={} {} / {} seed={} workers={}",
        r.config.epsilon,
        r.config.delta,
        r.config.strategy,
        r.config.generator,
        r.config.seed,
        r.config.workers
    );
    println!(
        "  estimate : {:.6} ± {} at {:.1}% confidence ({} samples, {} successes)",
        r.estimate.mean,
        r.estimate.epsilon,
        r.estimate.confidence * 100.0,
        r.estimate.samples,
        r.estimate.successes
    );
    let phases = r
        .phases
        .iter()
        .map(|(name, ms)| format!("{name} {ms:.1}ms"))
        .collect::<Vec<_>>()
        .join(", ");
    println!("  phases   : {phases} (wall {:.1}ms)", r.wall_ms);
    for w in &r.workers {
        println!(
            "  worker {} : {} paths ({} satisfied), busy {:.1}ms, {:.0} paths/s",
            w.worker, w.paths, w.satisfied, w.busy_ms, w.paths_per_sec
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(str::to_string))
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(name)
    }

    #[test]
    fn analyze_report_then_validate() {
        let path = tmp("slimsim_test_report_cmd.json");
        let a = args(&format!(
            "analyze sensor-filter --size 2 --bound 1.0 --epsilon 0.2 --delta 0.2 --quiet --report {}",
            path.display()
        ));
        super::super::analyze::run(&a).expect("analysis with report succeeds");
        let v = args(&format!("report {} --quiet", path.display()));
        run(&v).expect("fresh report validates");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_missing_and_malformed_files() {
        assert!(run(&args("report /nonexistent/report.json")).is_err());
        let path = tmp("slimsim_test_report_bad.json");
        std::fs::write(&path, "{not json").unwrap();
        let err = run(&args(&format!("report {}", path.display()))).unwrap_err();
        assert!(err.contains("invalid JSON"), "{err}");
        std::fs::write(&path, "{\"schema_version\": 1}").unwrap();
        assert!(run(&args(&format!("report {}", path.display()))).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_internally_inconsistent_reports() {
        let path = tmp("slimsim_test_report_inconsistent.json");
        let a = args(&format!(
            "analyze sensor-filter --size 2 --bound 1.0 --epsilon 0.2 --delta 0.2 --quiet --report {}",
            path.display()
        ));
        super::super::analyze::run(&a).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let json = Json::parse(&text).unwrap();
        let mut report = RunReport::from_json(&json).unwrap();
        report.paths.total += 1;
        std::fs::write(&path, report.to_json().to_pretty()).unwrap();
        let err = run(&args(&format!("report {}", path.display()))).unwrap_err();
        assert!(err.contains("fails validation"), "{err}");
        let _ = std::fs::remove_file(&path);
    }
}
