//! `slimsim fuzz` — seeded differential fuzzing of the whole pipeline.
//!
//! Generates models with `slim-fuzz`, runs the eight-oracle differential
//! stack on each, shrinks any failure, and (optionally) records it into
//! the regression corpus. `--replay <dir>` instead re-runs the committed
//! corpus and fails on any regression — the hard gate CI uses.

use std::path::PathBuf;

use slim_fuzz::runner::CampaignEvent;
use slim_fuzz::{replay_corpus, run_campaign, CampaignConfig, GenParams, OracleConfig, OracleKind};

use crate::args::Args;

/// Entry point for `slimsim fuzz`.
pub fn run(args: &Args) -> Result<(), String> {
    if let Some(dir) = args.options.get("replay") {
        return replay(args, PathBuf::from(dir));
    }

    let seed = args.opt_u64("seed", 1)?;
    let count = args.opt_u64("count", 1000)?;
    let start_index = args.opt_u64("start-index", 0)?;
    let params = match args.opt("params", "default") {
        "default" => GenParams::default(),
        "tiny" => GenParams::tiny(),
        "stress" => GenParams::stress(),
        other => return Err(format!("--params must be tiny|default|stress, got `{other}`")),
    };
    let oracle =
        if args.has_flag("thorough") { OracleConfig::thorough() } else { OracleConfig::quick() };
    let quiet = args.has_flag("quiet");

    let cfg = CampaignConfig {
        seed,
        count,
        start_index,
        params,
        oracle,
        shrink: !args.has_flag("no-shrink"),
        max_failures: args.opt_usize("max-failures", 10)?,
        corpus_dir: args.options.get("corpus-dir").map(PathBuf::from),
    };

    let summary = run_campaign(&cfg, &mut |event| match event {
        CampaignEvent::Progress { done, total } if !quiet => {
            eprintln!("fuzz: {done}/{total} models checked");
        }
        CampaignEvent::Failure(f) => {
            eprintln!("fuzz: FAILURE at index {} — oracle `{}`", f.index, f.kind.name());
            eprintln!("      {}", f.detail);
            if let Some(path) = &f.corpus_path {
                eprintln!("      corpus entry: {}", path.display());
            }
            if !quiet {
                eprintln!("      minimized model:");
                for line in f.source.lines() {
                    eprintln!("        {line}");
                }
            }
        }
        CampaignEvent::Progress { .. } => {}
    });

    println!(
        "fuzz: {} models in {:.1}s (seed {seed}, indices {start_index}..{}), {} failure(s)",
        summary.models,
        summary.wall.as_secs_f64(),
        start_index + summary.models,
        summary.failures.len()
    );
    println!(
        "  oracles: {}",
        OracleKind::ALL
            .iter()
            .map(|k| format!("{} {}", k.name(), summary.runs_of(*k)))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "  fixpoint pre-verdicts: P=0 on {} model(s), P=1 on {} model(s)",
        summary.pre_zero, summary.pre_one
    );
    for f in &summary.failures {
        println!(
            "  failure: index {} oracle {} — repro: slimsim fuzz --seed {seed} \
             --start-index {} --count 1",
            f.index,
            f.kind.name(),
            f.index
        );
    }

    if summary.failures.is_empty() {
        Ok(())
    } else {
        Err(format!("{} oracle failure(s) found", summary.failures.len()))
    }
}

fn replay(args: &Args, dir: PathBuf) -> Result<(), String> {
    let oracle =
        if args.has_flag("thorough") { OracleConfig::thorough() } else { OracleConfig::quick() };
    let rows = replay_corpus(&dir, &oracle).map_err(|e| format!("reading corpus: {e}"))?;
    let mut regressions = 0;
    for (name, result) in &rows {
        match result {
            Ok(()) => {
                if !args.has_flag("quiet") {
                    println!("replay: {name} ok");
                }
            }
            Err(detail) => {
                regressions += 1;
                eprintln!("replay: {name} FAILED — {detail}");
            }
        }
    }
    println!("replay: {} corpus entr(ies), {regressions} regression(s)", rows.len());
    if regressions == 0 {
        Ok(())
    } else {
        Err(format!("{regressions} corpus regression(s)"))
    }
}
