//! `slimsim analyze` — Monte Carlo timed-reachability analysis.

use crate::args::Args;
use crate::common::{load_bound, load_config, load_goal, load_hold, load_network};
use slim_stats::rng::path_rng;
use slimsim_core::prelude::*;

/// Runs the analysis and prints the estimate.
pub fn run(args: &Args) -> Result<(), String> {
    let net = load_network(args)?;

    // Pre-flight lint stage: surface suspicious model structure before
    // spending simulation time. `--no-lint` skips it, `--deny-lints`
    // escalates warnings to hard errors.
    if !args.has_flag("no-lint") {
        let cfg = super::lint::load_lint_config(args)?;
        let diags = slim_lint::lint_network(&net, &cfg);
        if !diags.is_empty() && !args.has_flag("quiet") {
            eprintln!("{}", slim_lint::render_text_all(&diags, None));
        }
        let errors = slim_lint::error_count(&diags);
        if errors > 0 {
            return Err(format!(
                "{errors} error-level lint(s); fix the model or pass --no-lint to proceed anyway"
            ));
        }
    }

    let goal = load_goal(args, &net)?;
    let hold = load_hold(args, &net)?;
    let bound = load_bound(args)?;
    let config = load_config(args)?;
    let property = match hold {
        None => TimedReach::new(goal, bound),
        Some(h) => TimedReach::until(h, goal, bound),
    };

    if args.has_flag("trace") {
        print_sample_path(&net, &property, &config, None)?;
    } else if let Some(path) = args.options.get("trace-csv") {
        print_sample_path(&net, &property, &config, Some(path))?;
    }

    let result = analyze(&net, &property, &config).map_err(|e| e.to_string())?;
    if !args.has_flag("quiet") {
        println!("model      : {} automata, {} variables", net.automata().len(), net.vars().len());
        if property.hold.is_some() {
            println!("property   : P(hold U[0,{bound}] goal)");
        } else {
            println!("property   : P(◇[0,{bound}] goal)");
        }
        println!("strategy   : {}", config.strategy);
        println!("generator  : {}", config.generator);
        println!("workers    : {}", config.workers);
        println!(
            "paths      : {} (satisfied {}, bound-exceeded {}, hold-violated {}, deadlock {}, timelock {})",
            result.stats.total(),
            result.stats.satisfied,
            result.stats.time_bound_exceeded,
            result.stats.hold_violated,
            result.stats.deadlocks,
            result.stats.timelocks,
        );
        println!("mean steps : {:.1}", result.stats.mean_steps());
        if let Some(mean_t) = result.stats.mean_satisfaction_time() {
            println!(
                "goal hits  : mean t={:.4}, min t={:.4}, max t={:.4}",
                mean_t,
                result.stats.min_satisfaction_time().unwrap_or(0.0),
                result.stats.max_satisfaction_time().unwrap_or(0.0)
            );
        }
        println!("wall time  : {:?}", result.wall);
        println!("memory     : ~{} KiB", result.approx_memory_bytes / 1024);
    }
    println!("{}", result.estimate);
    Ok(())
}

/// Generates and prints one seeded path (the `--trace` flag).
fn print_sample_path(
    net: &slim_automata::prelude::Network,
    property: &TimedReach,
    config: &SimConfig,
    csv_path: Option<&str>,
) -> Result<(), String> {
    let gen = PathGenerator::new(net, property, config.max_steps);
    let mut strategy = config.strategy.instantiate();
    let mut rng = path_rng(config.seed, 0);
    let mut trace = VecTrace::default();
    let outcome =
        gen.generate_traced(strategy.as_mut(), &mut rng, &mut trace).map_err(|e| e.to_string())?;
    if let Some(path) = csv_path {
        std::fs::write(path, trace.to_csv()).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        println!("sample path (seed {}, path 0) written to {path}", config.seed);
        return Ok(());
    }
    println!("--- sample path (seed {}, path 0) ---", config.seed);
    for event in &trace.events {
        println!("  {event}");
    }
    println!(
        "  verdict: {} at t={:.6} after {} steps",
        outcome.verdict, outcome.end_time, outcome.steps
    );
    println!("--------------------------------------");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(str::to_string))
    }

    #[test]
    fn analyze_builtin_runs() {
        let a =
            args("analyze sensor-filter --size 2 --bound 1.0 --epsilon 0.2 --delta 0.2 --quiet");
        run(&a).expect("analysis succeeds");
    }

    #[test]
    fn analyze_until_runs() {
        let a = args(
            "analyze launcher --bound 0.5 --epsilon 0.2 --delta 0.2 --hold-var nav.ok --quiet",
        );
        run(&a).expect("until analysis succeeds");
    }

    #[test]
    fn analyze_requires_bound() {
        let a = args("analyze gps --goal-var gps.measurement");
        assert!(run(&a).is_err());
    }

    #[test]
    fn trace_csv_written() {
        let path = std::env::temp_dir().join("slimsim_test_trace.csv");
        let a = args(&format!(
            "analyze gps --bound 1.0 --goal-var gps.measurement --epsilon 0.2 --delta 0.2 --quiet --trace-csv {}",
            path.display()
        ));
        run(&a).expect("analysis with trace succeeds");
        let csv = std::fs::read_to_string(&path).unwrap();
        assert!(csv.starts_with("time,kind"));
        let _ = std::fs::remove_file(&path);
    }
}
