//! `slimsim analyze` — Monte Carlo timed-reachability analysis.

use crate::args::Args;
use crate::common::{
    load_bound, load_config, load_goal, load_hold, load_network_spanned, profile_labels_with_spans,
    start_event,
};
use slim_automata::network::{PruneMaps, PrunePlan};
use slim_obs::{
    ConfigInfo, EstimateInfo, HostInfo, ModelInfo, PathInfo, ProfileReport, ProgressMeter,
    PropertyInfo, RunReport, WorkerInfo, SCHEMA_VERSION,
};
use slim_stats::rng::path_rng;
use slimsim_core::prelude::*;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Runs the analysis and prints the estimate.
pub fn run(args: &Args) -> Result<(), String> {
    let load_start = Instant::now();
    let (net, mut spans) = load_network_spanned(args)?;
    let load_time = load_start.elapsed();

    // Pre-flight lint stage: surface suspicious model structure before
    // spending simulation time. `--no-lint` skips it, `--deny-lints`
    // escalates warnings to hard errors.
    if !args.has_flag("no-lint") {
        let cfg = super::lint::load_lint_config(args)?;
        match slim_lint::preflight(&net, &cfg) {
            Ok(diags) => {
                if !diags.is_empty() && !args.has_flag("quiet") {
                    eprintln!("{}", slim_lint::render_text_all(&diags, None));
                }
            }
            Err(diags) => {
                if !args.has_flag("quiet") {
                    eprintln!("{}", slim_lint::render_text_all(&diags, None));
                }
                let errors = slim_lint::error_count(&diags);
                return Err(format!(
                    "{errors} error-level lint(s); fix the model or pass --no-lint to proceed anyway"
                ));
            }
        }
    }

    let goal = load_goal(args, &net)?;
    let hold = load_hold(args, &net)?;
    let bound = load_bound(args)?;
    let config = load_config(args)?;
    let property = match hold {
        None => TimedReach::new(goal, bound),
        Some(h) => TimedReach::until(h, goal, bound),
    };

    // Static-analysis consumers: `--analysis-summary <path>` writes the
    // fixpoint's proof artifact; `--prune` strips statically dead
    // transitions and locations before the step tables are compiled.
    // Pruning is observationally invisible — estimates are byte-identical
    // at any fixed (seed, workers); see `Network::prune`. The summary
    // always describes the network as loaded, pre-prune.
    let summary_path = args.options.get("analysis-summary");
    let (net, property) = if summary_path.is_some() || args.has_flag("prune") {
        let opts = slim_analysis::AnalysisOptions {
            zones: !args.has_flag("no-zones"),
            deadline: Some(property.bound),
        };
        let fix = slim_analysis::analyze_network_with(&net, &opts);
        if let Some(path) = summary_path {
            // Seed the distance-to-goal map from the property's goal, so
            // the summary carries per-location splitting levels.
            let mut targets = goal_distance_targets(&net, &fix, &property.goal);
            if let Some(h) = &property.hold {
                targets.extend(goal_distance_targets(&net, &fix, h));
            }
            let text = fix.summary_with_goals(&net, &targets).render_json() + "\n";
            std::fs::write(path, text).map_err(|e| format!("cannot write `{path}`: {e}"))?;
            if !args.has_flag("quiet") {
                println!("analysis   : proof summary written to {path}");
            }
        }
        if args.has_flag("prune") {
            let mut plan = fix.prune_plan(&net);
            // Locations named by the property must survive so their
            // `LocId`s can be remapped onto the pruned network.
            keep_goal_locations(&property.goal, &mut plan);
            if let Some(h) = &property.hold {
                keep_goal_locations(h, &mut plan);
            }
            if plan.is_noop() {
                if !args.has_flag("quiet") {
                    println!("prune      : nothing statically dead to remove");
                }
                (net, property)
            } else {
                let (dropped_t, dropped_l) = (plan.dropped_transitions(), plan.dropped_locations());
                let (pruned, maps) = net.prune(&plan);
                if !args.has_flag("quiet") {
                    println!(
                        "prune      : removed {dropped_t} transition(s), {dropped_l} location(s)"
                    );
                }
                let property = TimedReach {
                    goal: remap_goal(property.goal, &maps),
                    hold: property.hold.map(|h| remap_goal(h, &maps)),
                    bound: property.bound,
                };
                // Pruning renumbers transitions; remap the lowering's
                // span table through the id maps so profiler heat maps
                // and lints keep file:line:col on the pruned model.
                spans = remap_spans(&spans, &pruned, &maps);
                (pruned, property)
            }
        } else {
            (net, property)
        }
    } else {
        (net, property)
    };

    if args.has_flag("trace") {
        print_sample_path(args, &net, &property, &config, None)?;
    } else if let Some(path) = args.options.get("trace-csv") {
        print_sample_path(args, &net, &property, &config, Some(path))?;
    }

    // Observability: `--report <path>` captures a full RunReport JSON
    // document, `--progress` renders a throttled live line on stderr,
    // and `--trace-dir`/`--witnesses` selects witness paths for capture.
    // All share one observer; without any of them, `analyze_observed`
    // gets `None` and the run is instrumentation-free.
    let report_path = args.options.get("report");
    let want_progress = args.has_flag("progress");
    let trace_dir = args.options.get("trace-dir");
    let want_witnesses = trace_dir.is_some() || args.options.contains_key("witnesses");
    let observer = if report_path.is_some() || want_progress || want_witnesses {
        let mut obs = SimObserver::new(config.workers.max(1));
        obs.record_phase("load", load_time);
        if want_progress {
            let meter = Mutex::new(ProgressMeter::new(Duration::from_millis(100)));
            obs = obs.with_progress(Box::new(move |done, target, estimate| {
                if let Some(line) = meter.lock().unwrap().tick(done, target, estimate) {
                    eprint!("\r\x1b[2K{line}");
                }
            }));
        }
        if want_witnesses {
            obs = obs.with_witness_capture(args.opt_usize("witnesses", 2)?);
        }
        Some(obs)
    } else {
        None
    };

    // `--profile <file>` swaps in the profiled runner: same estimate and
    // metrics, plus a kernel profile written as its own JSON document
    // (and embedded into the run report when `--report` is also given).
    // The profiled runner skips the pre-verdict short-circuit and
    // requires a fixed-target generator; see `analyze_profiled`.
    let profile_path = args.options.get("profile");
    let (result, profile_report) = if let Some(ppath) = profile_path {
        let (result, profile) = analyze_profiled(&net, &property, &config, observer.as_ref())
            .map_err(|e| e.to_string())?;
        let labels = profile_labels_with_spans(&net, &spans);
        let model = args.positional.first().cloned().unwrap_or_default();
        let report = ProfileReport::from_profile(
            &profile,
            &labels,
            &model,
            config.seed,
            result.estimate.samples,
        );
        let text = report.to_json().to_pretty() + "\n";
        std::fs::write(ppath, text).map_err(|e| format!("cannot write `{ppath}`: {e}"))?;
        if !args.has_flag("quiet") {
            println!("profile    : {ppath}");
        }
        (result, Some(report))
    } else {
        let result = analyze_observed(&net, &property, &config, observer.as_ref())
            .map_err(|e| e.to_string())?;
        (result, None)
    };
    if want_progress {
        eprintln!();
    }
    if want_witnesses {
        let obs = observer.as_ref().expect("witness capture implies an observer");
        write_witnesses(args, &net, &property, &config, obs, trace_dir.map(String::as_str))?;
    }
    if let (Some(path), Some(obs)) = (report_path, observer.as_ref()) {
        let report = build_report(args, &net, &property, &config, &result, obs, profile_report);
        let text = report.to_json().to_pretty() + "\n";
        std::fs::write(path, text).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        if !args.has_flag("quiet") {
            println!("report     : {path}");
        }
    }
    if !args.has_flag("quiet") {
        println!("model      : {} automata, {} variables", net.automata().len(), net.vars().len());
        if property.hold.is_some() {
            println!("property   : P(hold U[0,{bound}] goal)");
        } else {
            println!("property   : P(◇[0,{bound}] goal)");
        }
        println!("strategy   : {}", config.strategy);
        println!("generator  : {}", config.generator);
        println!("workers    : {}", config.workers);
        if let Some(p) = result.pre_verdict.exact_probability() {
            println!(
                "pre-verdict: {} — exact P = {p} from the static fixpoint, no samples drawn",
                result.pre_verdict
            );
        }
        println!(
            "paths      : {} (satisfied {}, bound-exceeded {}, hold-violated {}, deadlock {}, timelock {})",
            result.stats.total(),
            result.stats.satisfied,
            result.stats.time_bound_exceeded,
            result.stats.hold_violated,
            result.stats.deadlocks,
            result.stats.timelocks,
        );
        println!("mean steps : {:.1}", result.stats.mean_steps());
        if let Some(mean_t) = result.stats.mean_satisfaction_time() {
            println!(
                "goal hits  : mean t={:.4}, min t={:.4}, max t={:.4}",
                mean_t,
                result.stats.min_satisfaction_time().unwrap_or(0.0),
                result.stats.max_satisfaction_time().unwrap_or(0.0)
            );
        }
        println!("wall time  : {:?}", result.wall);
        println!("memory     : ~{} KiB", result.approx_memory_bytes / 1024);
    }
    println!("{}", result.estimate);
    Ok(())
}

/// Assembles the [`RunReport`] for `--report` from the analysis result
/// and the observer's metrics, phases, and per-worker stats.
fn build_report(
    args: &Args,
    net: &slim_automata::prelude::Network,
    property: &TimedReach,
    config: &SimConfig,
    result: &AnalysisResult,
    obs: &SimObserver,
    profile: Option<ProfileReport>,
) -> RunReport {
    let goal = match (args.options.get("goal-var"), args.options.get("goal-loc")) {
        (Some(v), Some(l)) => format!("var {v} | loc {l}"),
        (Some(v), None) => format!("var {v}"),
        (None, Some(l)) => format!("loc {l}"),
        (None, None) => "default failure flag".to_string(),
    };
    let stats = &result.stats;
    let workers = obs
        .worker_stats()
        .iter()
        .enumerate()
        .map(|(w, s)| {
            let busy_secs = s.busy_nanos as f64 / 1e9;
            WorkerInfo {
                worker: w as u64,
                paths: s.paths,
                satisfied: s.satisfied,
                busy_ms: busy_secs * 1e3,
                paths_per_sec: if busy_secs > 0.0 { s.paths as f64 / busy_secs } else { 0.0 },
            }
        })
        .collect();
    RunReport {
        schema_version: SCHEMA_VERSION,
        tool_name: "slimsim".to_string(),
        tool_version: env!("CARGO_PKG_VERSION").to_string(),
        host: HostInfo::current(),
        model: ModelInfo {
            name: args.positional.first().cloned().unwrap_or_default(),
            automata: net.automata().len() as u64,
            variables: net.vars().len() as u64,
        },
        property: PropertyInfo {
            kind: if property.hold.is_some() { "bounded-until" } else { "timed-reachability" }
                .to_string(),
            bound: property.bound,
            goal,
        },
        config: ConfigInfo {
            epsilon: config.accuracy.epsilon(),
            delta: config.accuracy.delta(),
            strategy: config.strategy.to_string(),
            generator: config.generator.to_string(),
            deadlock_policy: match config.deadlock_policy {
                DeadlockPolicy::Falsify => "falsify".to_string(),
                DeadlockPolicy::Error => "error".to_string(),
            },
            max_steps: config.max_steps,
            seed: config.seed,
            workers: config.workers as u64,
        },
        estimate: EstimateInfo {
            mean: result.estimate.mean,
            epsilon: result.estimate.epsilon,
            confidence: result.estimate.confidence,
            samples: result.estimate.samples,
            successes: result.estimate.successes,
        },
        convergence: obs.convergence(),
        pre_verdict: Some(result.pre_verdict.as_str().to_string()),
        paths: PathInfo {
            satisfied: stats.satisfied,
            time_bound_exceeded: stats.time_bound_exceeded,
            hold_violated: stats.hold_violated,
            deadlock: stats.deadlocks,
            timelock: stats.timelocks,
            step_limit: stats.step_limited,
            total: stats.total(),
            total_steps: stats.total_steps,
            mean_steps: stats.mean_steps(),
            mean_satisfaction_time: stats.mean_satisfaction_time(),
            min_satisfaction_time: stats.min_satisfaction_time(),
            max_satisfaction_time: stats.max_satisfaction_time(),
        },
        wall_ms: result.wall.as_secs_f64() * 1e3,
        approx_memory_bytes: result.approx_memory_bytes as u64,
        phases: obs
            .phases()
            .iter()
            .map(|(name, d)| (name.clone(), d.as_secs_f64() * 1e3))
            .collect(),
        workers,
        metrics: obs.snapshot(),
        profile,
    }
}

/// Rebuilds the transition span table for a pruned network: surviving
/// transitions keep their original `file:line:col`, dropped ones vanish
/// with their rows renumbered densely, matching the pruned ids.
fn remap_spans(
    spans: &[Vec<Option<String>>],
    pruned: &slim_automata::prelude::Network,
    maps: &PruneMaps,
) -> Vec<Vec<Option<String>>> {
    let mut out: Vec<Vec<Option<String>>> =
        pruned.automata().iter().map(|a| vec![None; a.transitions.len()]).collect();
    for (p, row) in spans.iter().enumerate() {
        for (t, span) in row.iter().enumerate() {
            if let Some(new_t) = maps.trans.get(p).and_then(|m| m.get(t)).copied().flatten() {
                out[p][new_t.0] = span.clone();
            }
        }
    }
    out
}

/// Pins every location the goal names into the prune plan, so the
/// property stays expressible on the pruned network.
fn keep_goal_locations(goal: &Goal, plan: &mut PrunePlan) {
    match goal {
        Goal::Expr(_) => {}
        Goal::InLocation(p, l) => plan.keep_location(*p, *l),
        Goal::And(a, b) | Goal::Or(a, b) => {
            keep_goal_locations(a, plan);
            keep_goal_locations(b, plan);
        }
        Goal::Not(a) => keep_goal_locations(a, plan),
    }
}

/// Rewrites the goal's location atoms through the prune maps. Variables
/// are never pruned, so expression atoms pass through unchanged.
fn remap_goal(goal: Goal, maps: &PruneMaps) -> Goal {
    match goal {
        Goal::Expr(e) => Goal::Expr(e),
        Goal::InLocation(p, l) => {
            let new = maps.locs[p.0][l.0].expect("goal locations are pinned before pruning");
            Goal::InLocation(p, new)
        }
        Goal::And(a, b) => {
            Goal::And(Box::new(remap_goal(*a, maps)), Box::new(remap_goal(*b, maps)))
        }
        Goal::Or(a, b) => Goal::Or(Box::new(remap_goal(*a, maps)), Box::new(remap_goal(*b, maps))),
        Goal::Not(a) => Goal::Not(Box::new(remap_goal(*a, maps))),
    }
}

/// Re-generates the selected witness paths and writes them as JSON-lines
/// traces into `--trace-dir` (or just summarizes the selection without
/// one). File names are `witness-{goal|lock}-{index:06}.jsonl`; each file
/// starts with a self-describing `Start` header so `slimsim replay` can
/// rebuild the run from the trace alone.
fn write_witnesses(
    args: &Args,
    net: &slim_automata::prelude::Network,
    property: &TimedReach,
    config: &SimConfig,
    obs: &SimObserver,
    trace_dir: Option<&str>,
) -> Result<(), String> {
    let selector = obs.witness_selection().expect("observer was built with witness capture");
    let witnesses = capture_witnesses(net, property, config, &selector, TraceOptions::default())
        .map_err(|e| e.to_string())?;
    let quiet = args.has_flag("quiet");
    if !quiet {
        println!(
            "witnesses  : {} goal, {} lock (first {} per category)",
            selector.goal().len(),
            selector.lock().len(),
            selector.capacity()
        );
    }
    let Some(dir) = trace_dir else {
        if !quiet && !witnesses.is_empty() {
            println!("             pass --trace-dir <dir> to write witness traces");
        }
        return Ok(());
    };
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create `{dir}`: {e}"))?;
    for w in &witnesses {
        let mut events = Vec::with_capacity(w.events.len() + 1);
        events.push(start_event(args, config, property, w.index));
        events.extend(w.events.iter().cloned());
        let name = format!("witness-{}-{:06}.jsonl", w.category.code(), w.index);
        let path = std::path::Path::new(dir).join(&name);
        std::fs::write(&path, events_to_json_lines(&events))
            .map_err(|e| format!("cannot write `{}`: {e}", path.display()))?;
        if !quiet {
            println!(
                "             path {} ({}, {} at t={:.6}) -> {}",
                w.index,
                w.category.code(),
                w.outcome.verdict,
                w.outcome.end_time,
                path.display()
            );
        }
    }
    Ok(())
}

/// Generates and prints one seeded path (the `--trace` flag).
fn print_sample_path(
    args: &Args,
    net: &slim_automata::prelude::Network,
    property: &TimedReach,
    config: &SimConfig,
    csv_path: Option<&str>,
) -> Result<(), String> {
    let gen = PathGenerator::new(net, property, config.max_steps);
    let mut strategy = config.strategy.instantiate();
    let mut rng = path_rng(config.seed, 0);
    let mut sink = MemorySink::default();
    let outcome = {
        let mut tracer = PathTracer::new(net, &mut sink);
        tracer.emit(start_event(args, config, property, 0));
        gen.generate_traced(strategy.as_mut(), &mut rng, &mut tracer)
    }
    .map_err(|e| e.to_string())?;
    if let Some(path) = csv_path {
        std::fs::write(path, events_to_csv(&sink.events))
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
        println!("sample path (seed {}, path 0) written to {path}", config.seed);
        return Ok(());
    }
    println!("--- sample path (seed {}, path 0) ---", config.seed);
    for event in &sink.events {
        println!("  {event}");
    }
    println!(
        "  verdict: {} at t={:.6} after {} steps",
        outcome.verdict, outcome.end_time, outcome.steps
    );
    println!("--------------------------------------");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(str::to_string))
    }

    #[test]
    fn analyze_builtin_runs() {
        let a =
            args("analyze sensor-filter --size 2 --bound 1.0 --epsilon 0.2 --delta 0.2 --quiet");
        run(&a).expect("analysis succeeds");
    }

    #[test]
    fn analyze_until_runs() {
        let a = args(
            "analyze launcher --bound 0.5 --epsilon 0.2 --delta 0.2 --hold-var nav.ok --quiet",
        );
        run(&a).expect("until analysis succeeds");
    }

    #[test]
    fn analyze_requires_bound() {
        let a = args("analyze gps --goal-var gps.measurement");
        assert!(run(&a).is_err());
    }

    #[test]
    fn report_written_and_schema_valid_with_workers() {
        let path = std::env::temp_dir().join("slimsim_test_analyze_report.json");
        let a = args(&format!(
            "analyze voting --bound 1.0 --epsilon 0.2 --delta 0.2 --workers 2 --quiet --report {}",
            path.display()
        ));
        run(&a).expect("analysis with report succeeds");
        let text = std::fs::read_to_string(&path).unwrap();
        let report =
            RunReport::from_json(&slim_obs::Json::parse(&text).unwrap()).expect("schema parses");
        assert_eq!(report.validate(), Vec::<String>::new());
        assert_eq!(report.config.workers, 2);
        assert_eq!(report.workers.len(), 2);
        assert_eq!(report.model.name, "voting");
        for phase in ["load", "simulate", "estimate"] {
            assert!(report.phases.iter().any(|(n, _)| n == phase), "missing phase {phase}");
        }
        assert!(report.metrics.counters["sim.steps_total"] > 0);
        // Schema v2: the convergence series is populated and ends at the
        // final estimate.
        assert!(!report.convergence.is_empty());
        let last = report.convergence.last().unwrap();
        assert_eq!(last.samples, report.estimate.samples);
        assert!((last.mean - report.estimate.mean).abs() < 1e-12);
        let _ = std::fs::remove_file(&path);
    }

    /// Path of a model under `examples/models/` relative to this crate.
    fn example(name: &str) -> String {
        format!("{}/../../examples/models/{name}", env!("CARGO_MANIFEST_DIR"))
    }

    #[test]
    fn prune_differential_identical_reports() {
        // `--prune` must be observationally invisible: at a fixed
        // (seed, workers) the pruned and unpruned runs draw the same
        // paths and produce bit-identical estimates.
        let model = example("prunable.slim");
        let base = std::env::temp_dir().join("slimsim_test_prune_base.json");
        let pruned = std::env::temp_dir().join("slimsim_test_prune_pruned.json");
        let common = format!(
            "analyze {model} --root Pump.Main --bound 1.0 --goal-var root.done \
             --no-lint --seed 11 --epsilon 0.1 --delta 0.1 --quiet"
        );
        run(&args(&format!("{common} --report {}", base.display()))).expect("unpruned run");
        run(&args(&format!("{common} --prune --report {}", pruned.display()))).expect("pruned run");
        let read = |p: &std::path::Path| {
            let text = std::fs::read_to_string(p).unwrap();
            RunReport::from_json(&slim_obs::Json::parse(&text).unwrap()).expect("schema parses")
        };
        let (a, b) = (read(&base), read(&pruned));
        assert_eq!(a.estimate.mean.to_bits(), b.estimate.mean.to_bits());
        assert_eq!(a.estimate.samples, b.estimate.samples);
        assert_eq!(a.estimate.successes, b.estimate.successes);
        assert_eq!(a.paths.total_steps, b.paths.total_steps);
        assert!(a.estimate.samples > 0, "goal must be reachable so sampling runs");
        let _ = std::fs::remove_file(&base);
        let _ = std::fs::remove_file(&pruned);
    }

    #[test]
    fn pre_verdict_unreachable_skips_sampling() {
        // The static fixpoint proves `done` unreachable in broken.slim,
        // so the analysis returns exact P = 0 without drawing a sample.
        let path = std::env::temp_dir().join("slimsim_test_preverdict_report.json");
        let a = args(&format!(
            "analyze {} --root Probe.Main --bound 2.0 --goal-var root.done \
             --no-lint --quiet --report {}",
            example("broken.slim"),
            path.display()
        ));
        run(&a).expect("analysis succeeds");
        let text = std::fs::read_to_string(&path).unwrap();
        let report =
            RunReport::from_json(&slim_obs::Json::parse(&text).unwrap()).expect("schema parses");
        assert_eq!(report.pre_verdict.as_deref(), Some("unreachable"));
        assert_eq!(report.estimate.samples, 0);
        assert_eq!(report.estimate.mean, 0.0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn deadline_miss_pre_verdict_skips_sampling() {
        // The clock-zone fixpoint proves `done` cannot be set before
        // t = 8, so a bound of 2 short-circuits with exact P = 0.
        let path = std::env::temp_dir().join("slimsim_test_deadline_report.json");
        let common = format!(
            "analyze {} --root Timer.Main --bound 2.0 --goal-var root.done \
             --no-lint --epsilon 0.2 --delta 0.2 --quiet",
            example("deadline.slim")
        );
        run(&args(&format!("{common} --report {}", path.display()))).expect("analysis succeeds");
        let text = std::fs::read_to_string(&path).unwrap();
        let report =
            RunReport::from_json(&slim_obs::Json::parse(&text).unwrap()).expect("schema parses");
        assert_eq!(report.validate(), Vec::<String>::new());
        assert_eq!(report.pre_verdict.as_deref(), Some("deadline-unreachable"));
        assert_eq!(report.estimate.samples, 0);
        assert_eq!(report.estimate.mean, 0.0);

        // `--no-zones` opts out: interval-only analysis cannot decide the
        // deadline, so the run falls back to sampling.
        run(&args(&format!("{common} --no-zones --report {}", path.display())))
            .expect("no-zones analysis succeeds");
        let text = std::fs::read_to_string(&path).unwrap();
        let report =
            RunReport::from_json(&slim_obs::Json::parse(&text).unwrap()).expect("schema parses");
        assert_eq!(report.pre_verdict.as_deref(), Some("unknown"));
        assert!(report.estimate.samples > 0, "sampling must actually run");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn prune_keeps_spans_for_profile_labels() {
        // PR 8 cleared the span table under `--prune`; spans must now be
        // remapped through the prune id maps so profiler heat maps keep
        // file:line:col labels on the surviving transitions.
        let ppath = std::env::temp_dir().join("slimsim_test_prune_profile.json");
        let a = args(&format!(
            "analyze {} --root Pump.Main --bound 1.0 --goal-var root.done \
             --no-lint --seed 11 --epsilon 0.2 --delta 0.2 --quiet --prune --profile {}",
            example("prunable.slim"),
            ppath.display()
        ));
        run(&a).expect("pruned profiled run succeeds");
        let text = std::fs::read_to_string(&ppath).unwrap();
        assert!(
            text.contains("prunable.slim:"),
            "profile labels lost their source spans under --prune: {text}"
        );
        let _ = std::fs::remove_file(&ppath);
    }

    #[test]
    fn analysis_summary_carries_distance_to_goal() {
        let spath = std::env::temp_dir().join("slimsim_test_summary_distance.json");
        let a = args(&format!(
            "analyze {} --root Timer.Main --bound 20.0 --goal-var root.done \
             --no-lint --epsilon 0.2 --delta 0.2 --quiet --analysis-summary {}",
            example("deadline.slim"),
            spath.display()
        ));
        run(&a).expect("analysis with summary succeeds");
        let text = std::fs::read_to_string(&spath).unwrap();
        assert!(text.contains("\"kind\":\"analysis-summary\""), "{text}");
        assert!(text.contains("\"schema_version\":2"), "{text}");
        // The goal writes `done` from mode `ready`, so `ready` is the
        // offset-1 seed and `arm` sits one live hop further out.
        assert!(
            text.contains(
                "\"location\":\"ready\",\"reachable\":true,\"min_time\":5.0,\"steps_to_goal\":1"
            ),
            "{text}"
        );
        assert!(
            text.contains(
                "\"location\":\"arm\",\"reachable\":true,\"min_time\":0.0,\"steps_to_goal\":2"
            ),
            "{text}"
        );
        let _ = std::fs::remove_file(&spath);
    }

    #[test]
    fn trace_csv_written() {
        let path = std::env::temp_dir().join("slimsim_test_trace.csv");
        let a = args(&format!(
            "analyze gps --bound 1.0 --goal-var gps.measurement --epsilon 0.2 --delta 0.2 --quiet --trace-csv {}",
            path.display()
        ));
        run(&a).expect("analysis with trace succeeds");
        let csv = std::fs::read_to_string(&path).unwrap();
        assert!(csv.starts_with("time,kind"));
        let _ = std::fs::remove_file(&path);
    }
}
