//! `slimsim interactive` — step a path manually with the Input strategy
//! (the paper's GUI/manual mode, §III-B).

use crate::args::Args;
use crate::common::{load_bound, load_config, load_goal, load_network, start_event};
use slim_stats::rng::path_rng;
use slimsim_core::prelude::*;
use std::io::{BufRead, Write};

/// An oracle that prints the alternatives and reads decisions from stdin.
struct StdinOracle;

impl InputOracle for StdinOracle {
    fn choose(&mut self, view: &StepView<'_>) -> Result<InputChoice, SimError> {
        println!("\nstate: {}", view.state);
        println!("allowed delay window: {}", view.window);
        if view.guarded.is_empty() {
            println!("no guarded transitions are schedulable from here");
        }
        for (i, c) in view.guarded.iter().enumerate() {
            let action = &view.net.actions()[c.transition.action.0].name;
            let participants: Vec<String> = c
                .transition
                .parts
                .iter()
                .map(|(p, _)| view.net.automata()[p.0].name.clone())
                .collect();
            println!(
                "  [{i}] {action} ({}) enabled at delays {}",
                participants.join("∥"),
                c.window
            );
        }
        loop {
            print!("> fire <i> <delay> | wait <delay> | abort: ");
            std::io::stdout().flush().ok();
            let mut line = String::new();
            if std::io::stdin().lock().read_line(&mut line).unwrap_or(0) == 0 {
                return Ok(InputChoice::Abort);
            }
            let parts: Vec<&str> = line.split_whitespace().collect();
            match parts.as_slice() {
                ["abort"] | ["quit"] | ["q"] => return Ok(InputChoice::Abort),
                ["wait", d] => {
                    if let Ok(delay) = d.parse() {
                        return Ok(InputChoice::Wait { delay });
                    }
                }
                ["fire", i, d] => {
                    if let (Ok(candidate), Ok(delay)) = (i.parse(), d.parse()) {
                        return Ok(InputChoice::Fire { candidate, delay });
                    }
                }
                _ => {}
            }
            println!("could not parse that — try again");
        }
    }
}

/// Parses a decision script: one `fire <i> <delay>` / `wait <delay>` /
/// `abort` per line (`#` comments and blank lines ignored).
fn parse_script(text: &str) -> Result<Vec<InputChoice>, String> {
    let mut out = Vec::new();
    for (no, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        let choice = match parts.as_slice() {
            ["abort"] => InputChoice::Abort,
            ["wait", d] => InputChoice::Wait {
                delay: d.parse().map_err(|_| format!("line {}: bad delay `{d}`", no + 1))?,
            },
            ["fire", i, d] => InputChoice::Fire {
                candidate: i.parse().map_err(|_| format!("line {}: bad index `{i}`", no + 1))?,
                delay: d.parse().map_err(|_| format!("line {}: bad delay `{d}`", no + 1))?,
            },
            _ => return Err(format!("line {}: cannot parse `{line}`", no + 1)),
        };
        out.push(choice);
    }
    Ok(out)
}

/// Runs one interactively-driven path (or replays a `--script` file).
pub fn run(args: &Args) -> Result<(), String> {
    let net = load_network(args)?;
    let goal = load_goal(args, &net)?;
    let bound = load_bound(args)?;
    let property = TimedReach::new(goal, bound);
    let config = load_config(args)?;
    let seed = config.seed;

    let gen = PathGenerator::new(&net, &property, config.max_steps);
    let mut rng = path_rng(seed, 0);
    let mut sink = MemorySink::default();

    let result = {
        let mut tracer = PathTracer::new(&net, &mut sink);
        let mut header = start_event(args, &config, &property, 0);
        if let TraceEvent::Start { strategy, .. } = &mut header {
            // The path is driven by the user, not the configured strategy.
            *strategy = "input".to_string();
        }
        tracer.emit(header);
        if let Some(path) = args.options.get("script") {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
            let choices = parse_script(&text)?;
            println!("replaying {} scripted decisions from {path}", choices.len());
            let mut strategy = Input::new(ScriptedOracle::new(choices));
            gen.generate_traced(&mut strategy, &mut rng, &mut tracer)
        } else {
            println!("interactive simulation — P(◇[0,{bound}] goal); you are the strategy.");
            println!("(Markovian transitions still race with your schedule.)");
            let mut strategy = Input::new(StdinOracle);
            gen.generate_traced(&mut strategy, &mut rng, &mut tracer)
        }
    };
    match result {
        Ok(outcome) => {
            if let Some(path) = args.options.get("save-trace") {
                std::fs::write(path, events_to_json_lines(&sink.events))
                    .map_err(|e| format!("cannot write `{path}`: {e}"))?;
                println!("trace written to {path} (replay with `slimsim replay {path}`)");
            }
            println!("\n--- path ---");
            for e in &sink.events {
                println!("  {e}");
            }
            println!(
                "verdict: {} at t={:.6} after {} steps — the property is {}",
                outcome.verdict,
                outcome.end_time,
                outcome.steps,
                if outcome.verdict.is_success() { "satisfied" } else { "falsified" }
            );
            Ok(())
        }
        Err(SimError::InputAborted) => {
            println!("aborted.");
            Ok(())
        }
        Err(e) => Err(e.to_string()),
    }
}
