//! `slimsim validate` — parse and statically analyze a SLIM file.

use crate::args::Args;
use slim_lang::{analyze_model, is_lowerable, lower, parse};
use slim_lint::{error_count, render_text_all, SourceFile};

/// Parses the file, prints diagnostics, and (if a `--root` is given and
/// no errors were found) attempts full lowering.
pub fn run(args: &Args) -> Result<(), String> {
    let path = args.positional.first().ok_or("expected a .slim file")?;
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let model = parse(&src).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "parsed `{path}`: {} types, {} implementations, {} error models, {} injections",
        model.types.len(),
        model.impls.len(),
        model.error_models.len(),
        model.injections.len()
    );

    let diags = analyze_model(&model);
    let source = SourceFile::new(path, &src);
    if !diags.is_empty() {
        println!("{}", render_text_all(&diags, Some(&source)));
    }
    let errors = error_count(&diags);

    if let Some(root) = args.options.get("root") {
        if !is_lowerable(&diags) {
            return Err("not lowering: fix the errors above first".into());
        }
        let (ty, im) = root
            .split_once('.')
            .ok_or_else(|| format!("--root must be Type.Impl, got `{root}`"))?;
        let name = args.opt("name", "root");
        let net = lower(&model, ty, im, name).map_err(|e| format!("{path}: {e}"))?.network;
        println!(
            "lowering OK: {} automata, {} variables, {} actions, {} flows",
            net.automata().len(),
            net.vars().len(),
            net.actions().len(),
            net.flows().len()
        );
    }
    if errors > 0 {
        Err(format!("{errors} error(s)"))
    } else {
        Ok(())
    }
}
