//! Minimal dependency-free argument parsing for the `slimsim` CLI.

use std::collections::HashMap;

/// Parsed command line: a subcommand, positional arguments and
/// `--key value` / `--flag` options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first argument).
    pub command: String,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
    /// `--key value` options.
    pub options: HashMap<String, String>,
    /// Bare `--flag` options.
    pub flags: Vec<String>,
}

/// Option keys that take no value.
const FLAG_KEYS: &[&str] = &[
    "help",
    "trace",
    "skip-lumping",
    "quiet",
    "dot",
    "paper-accuracy",
    "no-lint",
    "no-zones",
    "deny-lints",
    "json",
    "progress",
    "prune",
    "verify-bytecode",
    "thorough",
    "no-shrink",
    "suggest-fusions",
];

impl Args {
    /// Parses an iterator of arguments (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Args {
        let mut out = Args::default();
        let mut it = args.into_iter().peekable();
        if let Some(cmd) = it.next() {
            out.command = cmd;
        }
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                if FLAG_KEYS.contains(&key) {
                    out.flags.push(key.to_string());
                } else if let Some(v) = it.next() {
                    out.options.insert(key.to_string(), v);
                } else {
                    out.flags.push(key.to_string());
                }
            } else {
                out.positional.push(a);
            }
        }
        out
    }

    /// String option with default.
    pub fn opt<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.options.get(key).map(String::as_str).unwrap_or(default)
    }

    /// Required string option.
    pub fn required(&self, key: &str) -> Result<&str, String> {
        self.options.get(key).map(String::as_str).ok_or_else(|| format!("missing --{key}"))
    }

    /// f64 option with default.
    pub fn opt_f64(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: not a number: {v}")),
        }
    }

    /// u64 option with default.
    pub fn opt_u64(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: not an integer: {v}")),
        }
    }

    /// usize option with default.
    pub fn opt_usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: not an integer: {v}")),
        }
    }

    /// True if a bare flag was given.
    pub fn has_flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(str::to_string))
    }

    #[test]
    fn parses_command_positional_options_flags() {
        let a = parse("analyze model.slim --bound 3.5 --strategy asap --trace");
        assert_eq!(a.command, "analyze");
        assert_eq!(a.positional, vec!["model.slim"]);
        assert_eq!(a.opt("strategy", "progressive"), "asap");
        assert_eq!(a.opt_f64("bound", 1.0).unwrap(), 3.5);
        assert!(a.has_flag("trace"));
        assert!(!a.has_flag("quiet"));
    }

    #[test]
    fn defaults_and_errors() {
        let a = parse("ctmc m.slim");
        assert_eq!(a.opt_f64("bound", 2.0).unwrap(), 2.0);
        assert!(a.required("root").is_err());
        let bad = parse("x --bound abc");
        assert!(bad.opt_f64("bound", 1.0).is_err());
    }

    #[test]
    fn trailing_option_without_value_becomes_flag() {
        let a = parse("run --verbose");
        assert!(a.has_flag("verbose"));
    }
}
