//! `slimsim` — statistical model checking for SLIM/AADL models.
//!
//! A reproduction of the tool from *"A Statistical Approach for Timed
//! Reachability in AADL Models"* (DSN 2015). Commands:
//!
//! ```text
//! slimsim analyze <model> --bound u [--goal-var v] [--strategy s] [...]
//! slimsim ctmc <model> --bound u [--goal-var v]           (baseline pipeline)
//! slimsim interactive <model> --bound u [--goal-var v]    (Input strategy)
//! slimsim info <model>                                    (network summary)
//! ```
//!
//! `<model>` is a `.slim` file (with `--root Type.Impl`) or a built-in:
//! `gps`, `launcher`, `launcher-permanent`, `sensor-filter [--size n]`.

#![forbid(unsafe_code)]

mod args;
mod commands;
mod common;

use args::Args;

const USAGE: &str = "\
slimsim — statistical model checking for SLIM/AADL models

USAGE:
  slimsim analyze <model> --bound <u> [options]   Monte Carlo analysis
  slimsim ctmc <model> --bound <u> [options]      CTMC pipeline (untimed models)
  slimsim rare <model> --bound <u> --boost <k>    rare events (importance sampling)
  slimsim interactive <model> --bound <u>         step a path manually
                      [--script <file>] [--save-trace <file>]
  slimsim replay <trace.jsonl>                    verify a recorded trace
  slimsim profile <model> --bound <u> [options]   kernel heat maps + phase times
                  [--out <file>] [--top <k>]
  slimsim info <model> [--dot]                    print the lowered network
  slimsim lint <model> [--json]                   static lint passes (S0xx-S3xx)
  slimsim report <file.json>                      validate + summarize a run or
                                                  kernel-profile report
  slimsim validate <file.slim> [--root Type.Impl] static analysis + lowering check
  slimsim fuzz [--seed n] [--count k]             differential fuzzing campaign
               [--replay <dir>]                   replay the regression corpus

MODELS:
  a .slim file (requires --root Type.Impl [--name instance]) or a built-in:
  gps | launcher | launcher-permanent | launcher-threeclass |
  power-system | sensor-filter [--size n] | voting | repair

GOAL (analyze/ctmc/interactive):
  --goal-var <variable>            Boolean variable that must become true
  --goal-loc <automaton>@<loc>     location to reach (may combine; ORed)
  --hold-var / --hold-loc          optional: bounded until P(hold U[0,u] goal)

OPTIONS:
  --bound <u>            time bound of P(<> [0,u] goal)   (required)
  --epsilon <e>          error bound epsilon    [0.01]
  --delta <d>            significance delta     [0.05]
  --strategy <s>         asap|progressive|local|max-time  [progressive]
  --generator <g>        chernoff-hoeffding|gauss|chow-robbins [chernoff-hoeffding]
  --deadlock <p>         falsify|error          [falsify]
  --workers <k>          worker threads         [1]
  --seed <n>             RNG master seed
  --size <n>             sensor-filter redundancy [2]
  --boost <k>            (rare) fault-rate multiplier          [100]
  --rel-err <r>          (rare) target relative half-width     [0.1]
  --max-paths <n>        (rare) path cap                       [1e6]
  --skip-lumping         (ctmc) skip the bisimulation reduction
  --trace                (analyze) print the first generated path
  --trace-csv <file>     (analyze) write the first path as CSV
  --trace-dir <dir>      (analyze) write witness traces as JSON-lines files
  --witnesses <k>        (analyze) keep first k goal + k lock paths [2]
  --report <file>        (analyze) write a JSON run report (see `slimsim report`)
  --profile <file>       (analyze) profile the kernel, write the profile JSON
  --out <file>           (profile) write the profile report JSON
  --top <k>              (profile) heat-map rows per section [10]
  --progress             (analyze) live progress line with p-hat ± half-width
  --prune                (analyze) strip statically dead transitions/locations
  --analysis-summary <file> (analyze) write the fixpoint proof artifact JSON
  --no-zones             (analyze) disable the clock-zone domain (interval-only
                         fixpoint; no deadline-unreachable pre-verdicts)

LINTS (lint/analyze):
  --json                 (lint) one JSON object per diagnostic, one per line
  --allow/--warn/--deny <codes>  comma-separated lint codes or names
  --deny-lints           treat warning-level lints as errors
  --no-lint              (analyze) skip the pre-flight lint stage
  --verify-bytecode      (lint) verify the compiled step-table bytecode
";

fn main() {
    let args = Args::parse(std::env::args().skip(1));
    if args.command.is_empty() || args.has_flag("help") || args.command == "help" {
        print!("{USAGE}");
        return;
    }
    let result = match args.command.as_str() {
        "analyze" => commands::analyze::run(&args),
        "ctmc" => commands::ctmc::run(&args),
        "fuzz" => commands::fuzz::run(&args),
        "rare" => commands::rare::run(&args),
        "interactive" => commands::interactive::run(&args),
        "replay" => commands::replay::run(&args),
        "info" => commands::info::run(&args),
        "lint" => commands::lint::run(&args),
        "profile" => commands::profile::run(&args),
        "report" => commands::report::run(&args),
        "validate" => commands::validate::run(&args),
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    if let Err(msg) = result {
        eprintln!("error: {msg}");
        std::process::exit(1);
    }
}
