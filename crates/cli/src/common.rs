//! Shared plumbing for the CLI commands: model loading, goal parsing,
//! configuration assembly.

use crate::args::Args;
use slim_automata::prelude::{profile_labels, profile_shape, Expr, Network};
use slim_lang::{lower, parse};
use slim_obs::ProfileLabels;

/// Per-transition source spans (`file:line:col`), indexed
/// `[automaton][transition]` in network order. Empty for built-in
/// models; `None` entries mark synthesized transitions.
pub type SpanTable = Vec<Vec<Option<String>>>;
use slim_models::{
    gps_network, launcher_network, power_system_network, repair_network, sensor_filter_network,
    voting_network, DpuFaultMode, GpsParams, LauncherParams, PowerSystemParams, RepairParams,
    SensorFilterParams, VotingParams,
};
use slim_stats::{Accuracy, GeneratorKind};
use slimsim_core::prelude::*;

/// Loads the analyzed network: either a SLIM file (with `--root Type.Impl`)
/// or a built-in model (`gps`, `launcher`, `launcher-permanent`,
/// `sensor-filter`, with optional `--size n`).
pub fn load_network(args: &Args) -> Result<Network, String> {
    load_network_spanned(args).map(|(net, _)| net)
}

/// Like [`load_network`], but also returns the per-transition source
/// spans as `file:line:col` strings, indexed `[automaton][transition]`
/// in network order. Built-in models are constructed programmatically
/// and have no source text, so their span table is empty; profile
/// consumers fall back to structural labels.
pub fn load_network_spanned(args: &Args) -> Result<(Network, SpanTable), String> {
    let target = args
        .positional
        .first()
        .ok_or("expected a model: a .slim file or gps|launcher|launcher-permanent|launcher-threeclass|power-system|sensor-filter|voting|repair")?;
    let no_spans = |net: Network| (net, Vec::new());
    match target.as_str() {
        "gps" => Ok(no_spans(gps_network(&GpsParams::default()))),
        "launcher" => Ok(no_spans(launcher_network(&LauncherParams::default()))),
        "launcher-permanent" => Ok(no_spans(launcher_network(&LauncherParams {
            dpu_faults: DpuFaultMode::Permanent,
            ..Default::default()
        }))),
        "launcher-threeclass" => Ok(no_spans(launcher_network(&LauncherParams {
            dpu_faults: DpuFaultMode::ThreeClass,
            ..Default::default()
        }))),
        "power-system" => Ok(no_spans(power_system_network(&PowerSystemParams::default()))),
        "voting" => Ok(no_spans(voting_network(&VotingParams::default()))),
        "repair" => Ok(no_spans(repair_network(&RepairParams::default()))),
        "sensor-filter" => {
            let size = args.opt_usize("size", 2)?;
            Ok(no_spans(sensor_filter_network(&SensorFilterParams {
                redundancy: size,
                ..Default::default()
            })))
        }
        path => {
            let src =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
            let model = parse(&src).map_err(|e| format!("{path}: {e}"))?;
            let root = args.required("root")?;
            let (ty, im) = root
                .split_once('.')
                .ok_or_else(|| format!("--root must be Type.Impl, got `{root}`"))?;
            let name = args.opt("name", "root");
            let lowered = lower(&model, ty, im, name).map_err(|e| format!("{path}: {e}"))?;
            let spans = lowered
                .transition_spans
                .iter()
                .map(|ts| ts.iter().map(|p| p.map(|pos| format!("{path}:{pos}"))).collect())
                .collect();
            Ok((lowered.network, spans))
        }
    }
}

/// Builds [`ProfileLabels`] for `net`, overlaying source spans from the
/// lowering's span table (see [`load_network_spanned`]) onto the
/// structural transition labels. An empty span table (built-in models)
/// leaves every span `None`.
pub fn profile_labels_with_spans(net: &Network, spans: &SpanTable) -> ProfileLabels {
    let mut labels = profile_labels(net);
    if spans.is_empty() {
        return labels;
    }
    let shape = profile_shape(net);
    for (p, ts) in spans.iter().enumerate() {
        for (t, span) in ts.iter().enumerate() {
            if let Some(s) = span {
                if let Some(slot) =
                    shape.trans_offsets.get(p).and_then(|off| labels.transitions.get_mut(off + t))
                {
                    slot.1 = Some(s.clone());
                }
            }
        }
    }
    labels
}

/// Builds the goal from `--goal-var <name>` (Boolean variable) and/or
/// `--goal-loc <automaton>@<location>`; defaults to the model's `failure`
/// variable if present.
pub fn load_goal(args: &Args, net: &Network) -> Result<Goal, String> {
    let mut goals: Vec<Goal> = Vec::new();
    if let Some(var) = args.options.get("goal-var") {
        let id = net.var_id(var).ok_or_else(|| format!("unknown variable `{var}`"))?;
        goals.push(Goal::expr(Expr::var(id)));
    }
    if let Some(loc) = args.options.get("goal-loc") {
        let (proc, l) = loc
            .split_once('@')
            .ok_or_else(|| format!("--goal-loc must be automaton@location, got `{loc}`"))?;
        goals.push(Goal::in_location(net, proc, l).map_err(|n| format!("unknown location `{n}`"))?);
    }
    if goals.is_empty() {
        // Convention: models expose a Boolean `failure` (launcher) or
        // `monitor.system_failed` (sensor-filter).
        for candidate in [
            "failure",
            "monitor.system_failed",
            "voter.system_failed",
            "sys.failed",
            "plant.ctrl.failed",
        ] {
            if let Some(id) = net.var_id(candidate) {
                return Ok(Goal::expr(Expr::var(id)));
            }
        }
        return Err("no goal: pass --goal-var <name> or --goal-loc <automaton>@<location>".into());
    }
    let mut it = goals.into_iter();
    let first = it.next().expect("nonempty");
    Ok(it.fold(first, Goal::or))
}

/// Assembles the simulation configuration from the common options.
pub fn load_config(args: &Args) -> Result<SimConfig, String> {
    let epsilon = args.opt_f64("epsilon", 0.01)?;
    let delta = args.opt_f64("delta", 0.05)?;
    let accuracy = Accuracy::new(epsilon, delta).map_err(|e| e.to_string())?;
    let strategy = StrategyKind::parse(args.opt("strategy", "progressive"))
        .ok_or_else(|| format!("unknown strategy `{}`", args.opt("strategy", "")))?;
    let generator = match args.opt("generator", "chernoff-hoeffding") {
        "chernoff-hoeffding" | "ch" => GeneratorKind::ChernoffHoeffding,
        "gauss" => GeneratorKind::Gauss,
        "chow-robbins" | "cr" => GeneratorKind::ChowRobbins,
        other => return Err(format!("unknown generator `{other}`")),
    };
    let deadlock_policy = match args.opt("deadlock", "falsify") {
        "falsify" => DeadlockPolicy::Falsify,
        "error" => DeadlockPolicy::Error,
        other => return Err(format!("unknown deadlock policy `{other}`")),
    };
    Ok(SimConfig::default()
        .with_accuracy(accuracy)
        .with_strategy(strategy)
        .with_generator(generator)
        .with_deadlock_policy(deadlock_policy)
        .with_seed(args.opt_u64("seed", 0xC0FFEE)?)
        .with_workers(args.opt_usize("workers", 1)?.max(1))
        .with_zone_pre_verdicts(!args.has_flag("no-zones")))
}

/// Builds the optional `hold` predicate (`--hold-var` / `--hold-loc`) of
/// a bounded-until property `P(hold U[0,u] goal)`.
pub fn load_hold(args: &Args, net: &Network) -> Result<Option<Goal>, String> {
    let mut goals: Vec<Goal> = Vec::new();
    if let Some(var) = args.options.get("hold-var") {
        let id = net.var_id(var).ok_or_else(|| format!("unknown variable `{var}`"))?;
        goals.push(Goal::expr(Expr::var(id)));
    }
    if let Some(loc) = args.options.get("hold-loc") {
        let (proc, l) = loc
            .split_once('@')
            .ok_or_else(|| format!("--hold-loc must be automaton@location, got `{loc}`"))?;
        goals.push(Goal::in_location(net, proc, l).map_err(|n| format!("unknown location `{n}`"))?);
    }
    let mut it = goals.into_iter();
    match it.next() {
        None => Ok(None),
        Some(first) => Ok(Some(it.fold(first, Goal::and))),
    }
}

/// Model/goal option keys a trace `Start` header carries so `slimsim
/// replay` can rebuild the run from the header alone (stable order).
const HEADER_KEYS: &[&str] =
    &["root", "name", "size", "goal-var", "goal-loc", "hold-var", "hold-loc"];

/// Builds the self-describing [`TraceEvent::Start`] header for a trace
/// recorded by this invocation.
pub fn start_event(
    args: &Args,
    config: &SimConfig,
    property: &TimedReach,
    path_index: u64,
) -> TraceEvent {
    let kv = HEADER_KEYS
        .iter()
        .filter_map(|&k| args.options.get(k).map(|v| (k.to_string(), v.clone())))
        .collect();
    TraceEvent::Start {
        format_version: TRACE_FORMAT_VERSION,
        model: args.positional.first().cloned().unwrap_or_default(),
        path_index,
        seed: config.seed,
        strategy: config.strategy.to_string(),
        bound: property.bound,
        max_steps: config.max_steps,
        args: kv,
    }
}

/// Rebuilds a synthetic argument set from a trace `Start` header, so the
/// normal model/goal loaders apply to recorded traces.
pub fn args_from_header(model: &str, bound: f64, kv: &[(String, String)]) -> Args {
    let mut out = Args { command: "replay".to_string(), ..Args::default() };
    out.positional.push(model.to_string());
    for (k, v) in kv {
        out.options.insert(k.clone(), v.clone());
    }
    out.options.insert("bound".to_string(), format!("{bound}"));
    out
}

/// The property bound `--bound u` (required).
pub fn load_bound(args: &Args) -> Result<f64, String> {
    let bound = args.opt_f64("bound", f64::NAN)?;
    if bound.is_nan() || bound < 0.0 {
        Err("missing or invalid --bound <u>".into())
    } else {
        Ok(bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(str::to_string))
    }

    #[test]
    fn builtin_models_load() {
        for name in [
            "gps",
            "launcher",
            "launcher-permanent",
            "launcher-threeclass",
            "power-system",
            "voting",
            "repair",
        ] {
            let a = args(&format!("analyze {name}"));
            assert!(load_network(&a).is_ok(), "{name}");
        }
        let a = args("analyze sensor-filter --size 3");
        let net = load_network(&a).unwrap();
        assert_eq!(net.automata().len(), 7);
    }

    #[test]
    fn unknown_file_is_error() {
        let a = args("analyze /nonexistent/model.slim --root A.B");
        assert!(load_network(&a).is_err());
    }

    #[test]
    fn goal_resolution() {
        let a = args("analyze launcher");
        let net = load_network(&a).unwrap();
        // Default goal convention: the launcher's `failure` flow.
        assert!(load_goal(&a, &net).is_ok());
        let bad = args("analyze launcher --goal-var nosuch");
        assert!(load_goal(&bad, &net).is_err());
        let loc = args("analyze launcher --goal-loc mission@flight");
        assert!(load_goal(&loc, &net).is_ok());
        let badloc = args("analyze launcher --goal-loc missionflight");
        assert!(load_goal(&badloc, &net).is_err());
    }

    #[test]
    fn hold_resolution() {
        let a = args("analyze launcher");
        let net = load_network(&a).unwrap();
        assert_eq!(load_hold(&a, &net).unwrap(), None);
        let h = args("analyze launcher --hold-var nav.ok");
        assert!(load_hold(&h, &net).unwrap().is_some());
    }

    #[test]
    fn config_assembly_and_errors() {
        let a = args("analyze gps --epsilon 0.02 --strategy max-time --generator gauss --workers 3 --deadlock error");
        let c = load_config(&a).unwrap();
        assert_eq!(c.strategy, StrategyKind::MaxTime);
        assert_eq!(c.workers, 3);
        assert_eq!(c.deadlock_policy, DeadlockPolicy::Error);
        assert!(load_config(&args("x --strategy bogus")).is_err());
        assert!(load_config(&args("x --generator bogus")).is_err());
        assert!(load_config(&args("x --epsilon 2.0")).is_err());
        assert!(load_config(&args("x --deadlock maybe")).is_err());
    }

    #[test]
    fn start_header_round_trips_through_args() {
        let a = args(
            "analyze sensor-filter --size 3 --bound 2.0 --goal-var monitor.system_failed --seed 42",
        );
        let cfg = load_config(&a).unwrap();
        let net = load_network(&a).unwrap();
        let goal = load_goal(&a, &net).unwrap();
        let property = TimedReach::new(goal, load_bound(&a).unwrap());
        let ev = start_event(&a, &cfg, &property, 7);
        let TraceEvent::Start { model, path_index, seed, bound, args: kv, .. } = &ev else {
            panic!("not a Start event");
        };
        assert_eq!(model, "sensor-filter");
        assert_eq!(*path_index, 7);
        assert_eq!(*seed, 42);
        assert_eq!(*bound, 2.0);
        let rebuilt = args_from_header(model, *bound, kv);
        assert_eq!(rebuilt.opt("size", ""), "3");
        assert_eq!(rebuilt.opt("goal-var", ""), "monitor.system_failed");
        assert_eq!(load_bound(&rebuilt).unwrap(), 2.0);
        let net2 = load_network(&rebuilt).unwrap();
        assert_eq!(net2.automata().len(), net.automata().len());
        assert!(load_goal(&rebuilt, &net2).is_ok());
    }

    #[test]
    fn bound_required() {
        assert!(load_bound(&args("analyze gps")).is_err());
        assert!(load_bound(&args("analyze gps --bound -1")).is_err());
        assert_eq!(load_bound(&args("analyze gps --bound 2.5")).unwrap(), 2.5);
    }
}
