//! The *generator* abstraction (§III-A of the paper): decides from the
//! stream of Bernoulli samples whether further simulation is required, and
//! produces the final probability estimate.

use crate::chernoff::Accuracy;
use std::fmt;

/// The outcome of a statistical analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Point estimate of the probability (`A / N` in the paper).
    pub mean: f64,
    /// Total number of samples used.
    pub samples: u64,
    /// Number of samples satisfying the property.
    pub successes: u64,
    /// Error bound ε the estimate is accurate to.
    pub epsilon: f64,
    /// Confidence level `1 − δ`.
    pub confidence: f64,
}

impl Estimate {
    /// The confidence interval `[mean − ε, mean + ε]`, clamped to `[0, 1]`.
    pub fn interval(&self) -> (f64, f64) {
        ((self.mean - self.epsilon).max(0.0), (self.mean + self.epsilon).min(1.0))
    }
}

impl fmt::Display for Estimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (lo, hi) = self.interval();
        write!(
            f,
            "p ≈ {:.6} ∈ [{:.6}, {:.6}] ({} samples, {:.1}% confidence)",
            self.mean,
            lo,
            hi,
            self.samples,
            self.confidence * 100.0
        )
    }
}

/// A sequential sample acceptor; the paper calls this the *generator*.
///
/// Implementations: [`ChernoffHoeffding`] (fixed a-priori sample count),
/// and the sequential [`crate::sequential::Gauss`] and
/// [`crate::sequential::ChowRobbins`] generators the paper lists as future
/// extensions.
pub trait Generator: Send {
    /// Feeds one Bernoulli sample.
    fn add(&mut self, success: bool);

    /// True once the desired accuracy has been reached.
    fn is_complete(&self) -> bool;

    /// Current estimate (meaningful once [`Self::is_complete`], but always
    /// available for progress reporting).
    fn estimate(&self) -> Estimate;

    /// The a-priori known total sample count, if any (CH bound: yes;
    /// sequential rules: no). Used by the parallel runner for static
    /// workload splitting.
    fn known_target(&self) -> Option<u64>;

    /// Samples accepted so far.
    fn samples(&self) -> u64;
}

/// Fixed-sample-count generator based on the Chernoff–Hoeffding bound.
#[derive(Debug, Clone)]
pub struct ChernoffHoeffding {
    accuracy: Accuracy,
    target: u64,
    samples: u64,
    successes: u64,
}

impl ChernoffHoeffding {
    /// Creates the generator for the given accuracy.
    pub fn new(accuracy: Accuracy) -> ChernoffHoeffding {
        ChernoffHoeffding {
            accuracy,
            target: accuracy.chernoff_samples(),
            samples: 0,
            successes: 0,
        }
    }

    /// The accuracy parameters.
    pub fn accuracy(&self) -> Accuracy {
        self.accuracy
    }
}

impl Generator for ChernoffHoeffding {
    fn add(&mut self, success: bool) {
        self.samples += 1;
        if success {
            self.successes += 1;
        }
    }

    fn is_complete(&self) -> bool {
        self.samples >= self.target
    }

    fn estimate(&self) -> Estimate {
        let mean =
            if self.samples == 0 { 0.0 } else { self.successes as f64 / self.samples as f64 };
        Estimate {
            mean,
            samples: self.samples,
            successes: self.successes,
            epsilon: self.accuracy.epsilon(),
            confidence: self.accuracy.confidence(),
        }
    }

    fn known_target(&self) -> Option<u64> {
        Some(self.target)
    }

    fn samples(&self) -> u64 {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completes_exactly_at_target() {
        let acc = Accuracy::new(0.2, 0.2).unwrap();
        let mut g = ChernoffHoeffding::new(acc);
        let n = g.known_target().unwrap();
        assert!(n > 0);
        for i in 0..n {
            assert!(!g.is_complete(), "complete too early at {i}");
            g.add(i % 2 == 0);
        }
        assert!(g.is_complete());
        assert_eq!(g.samples(), n);
    }

    #[test]
    fn estimate_counts_successes() {
        let acc = Accuracy::new(0.1, 0.1).unwrap();
        let mut g = ChernoffHoeffding::new(acc);
        for i in 0..10 {
            g.add(i < 3);
        }
        let e = g.estimate();
        assert_eq!(e.successes, 3);
        assert_eq!(e.samples, 10);
        assert!((e.mean - 0.3).abs() < 1e-12);
        assert_eq!(e.confidence, 0.9);
    }

    #[test]
    fn empty_estimate_is_zero() {
        let g = ChernoffHoeffding::new(Accuracy::default());
        assert_eq!(g.estimate().mean, 0.0);
        assert_eq!(g.samples(), 0);
    }

    #[test]
    fn interval_clamps() {
        let e =
            Estimate { mean: 0.005, samples: 10, successes: 0, epsilon: 0.01, confidence: 0.95 };
        let (lo, hi) = e.interval();
        assert_eq!(lo, 0.0);
        assert!((hi - 0.015).abs() < 1e-12);
        assert!(e.to_string().contains("samples"));
    }

    #[test]
    fn generator_is_object_safe() {
        let mut boxed: Box<dyn Generator> = Box::new(ChernoffHoeffding::new(Accuracy::default()));
        boxed.add(true);
        assert_eq!(boxed.samples(), 1);
    }
}
