//! Sequential generators: Gauss (CLT) and Chow–Robbins stopping rules.
//!
//! §III-A of the paper names Chow–Robbins and Gauss as future alternatives
//! to the Chernoff–Hoeffding bound (citing its \[20\]); the parallel
//! collector (§III-C) is explicitly designed so these *sequential* rules —
//! whose total sample count is not known a priori — stay unbiased. We
//! implement both.

use crate::chernoff::Accuracy;
use crate::estimator::{Estimate, Generator};
use crate::math::normal_quantile;

/// Minimum samples before a sequential rule may stop (guards against
/// degenerate early stopping when the first few samples agree).
pub const MIN_SAMPLES: u64 = 50;

/// CLT-based ("Gauss") sequential generator: stops once the normal-theory
/// confidence interval half-width drops below ε.
///
/// The half-width is `z · σ̂ / √n` with `σ̂² = p̂(1−p̂)` (plus a continuity
/// floor so all-equal prefixes do not stop instantly).
#[derive(Debug, Clone)]
pub struct Gauss {
    accuracy: Accuracy,
    z: f64,
    samples: u64,
    successes: u64,
}

impl Gauss {
    /// Creates the generator for the given accuracy.
    pub fn new(accuracy: Accuracy) -> Gauss {
        let z = normal_quantile(1.0 - accuracy.delta() / 2.0);
        Gauss { accuracy, z, samples: 0, successes: 0 }
    }

    fn half_width(&self) -> f64 {
        if self.samples == 0 {
            return f64::INFINITY;
        }
        let n = self.samples as f64;
        let p = self.successes as f64 / n;
        // Variance floor 1/n keeps the rule honest on all-0/all-1 prefixes
        // (same device as the Chow–Robbins rule below).
        let var = (p * (1.0 - p)).max(1.0 / n);
        self.z * (var / n).sqrt()
    }
}

impl Generator for Gauss {
    fn add(&mut self, success: bool) {
        self.samples += 1;
        if success {
            self.successes += 1;
        }
    }

    fn is_complete(&self) -> bool {
        self.samples >= MIN_SAMPLES && self.half_width() <= self.accuracy.epsilon()
    }

    fn estimate(&self) -> Estimate {
        let mean =
            if self.samples == 0 { 0.0 } else { self.successes as f64 / self.samples as f64 };
        Estimate {
            mean,
            samples: self.samples,
            successes: self.successes,
            epsilon: self.half_width().min(self.accuracy.epsilon()),
            confidence: self.accuracy.confidence(),
        }
    }

    fn known_target(&self) -> Option<u64> {
        None
    }

    fn samples(&self) -> u64 {
        self.samples
    }
}

/// Chow–Robbins (1965) sequential fixed-width interval rule: stop at the
/// first `n ≥ MIN_SAMPLES` with
///
/// ```text
/// n ≥ (z/ε)² · (S²_n + 1/n)
/// ```
///
/// where `S²_n` is the sample variance. Asymptotically the interval
/// `p̂ ± ε` has the requested coverage.
#[derive(Debug, Clone)]
pub struct ChowRobbins {
    accuracy: Accuracy,
    z: f64,
    samples: u64,
    successes: u64,
}

impl ChowRobbins {
    /// Creates the generator for the given accuracy.
    pub fn new(accuracy: Accuracy) -> ChowRobbins {
        let z = normal_quantile(1.0 - accuracy.delta() / 2.0);
        ChowRobbins { accuracy, z, samples: 0, successes: 0 }
    }

    fn sample_variance(&self) -> f64 {
        if self.samples < 2 {
            return 0.25; // Bernoulli worst case until we know better
        }
        let n = self.samples as f64;
        let p = self.successes as f64 / n;
        // For Bernoulli data, S² = n/(n−1) · p(1−p).
        n / (n - 1.0) * p * (1.0 - p)
    }
}

impl Generator for ChowRobbins {
    fn add(&mut self, success: bool) {
        self.samples += 1;
        if success {
            self.successes += 1;
        }
    }

    fn is_complete(&self) -> bool {
        if self.samples < MIN_SAMPLES {
            return false;
        }
        let n = self.samples as f64;
        let bound = (self.z / self.accuracy.epsilon()).powi(2) * (self.sample_variance() + 1.0 / n);
        n >= bound
    }

    fn estimate(&self) -> Estimate {
        let mean =
            if self.samples == 0 { 0.0 } else { self.successes as f64 / self.samples as f64 };
        Estimate {
            mean,
            samples: self.samples,
            successes: self.successes,
            epsilon: self.accuracy.epsilon(),
            confidence: self.accuracy.confidence(),
        }
    }

    fn known_target(&self) -> Option<u64> {
        None
    }

    fn samples(&self) -> u64 {
        self.samples
    }
}

/// Which generator to use — the user-facing knob mirroring the paper's
/// tool options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeneratorKind {
    /// Chernoff–Hoeffding fixed-sample bound (the paper's implementation).
    ChernoffHoeffding,
    /// CLT-based sequential stopping.
    Gauss,
    /// Chow–Robbins sequential fixed-width rule.
    ChowRobbins,
}

impl GeneratorKind {
    /// Instantiates the generator.
    pub fn instantiate(self, accuracy: Accuracy) -> Box<dyn Generator> {
        match self {
            GeneratorKind::ChernoffHoeffding => {
                Box::new(crate::estimator::ChernoffHoeffding::new(accuracy))
            }
            GeneratorKind::Gauss => Box::new(Gauss::new(accuracy)),
            GeneratorKind::ChowRobbins => Box::new(ChowRobbins::new(accuracy)),
        }
    }

    /// All kinds, for sweeps.
    pub const ALL: [GeneratorKind; 3] =
        [GeneratorKind::ChernoffHoeffding, GeneratorKind::Gauss, GeneratorKind::ChowRobbins];
}

impl std::fmt::Display for GeneratorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GeneratorKind::ChernoffHoeffding => write!(f, "chernoff-hoeffding"),
            GeneratorKind::Gauss => write!(f, "gauss"),
            GeneratorKind::ChowRobbins => write!(f, "chow-robbins"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed_bernoulli(g: &mut dyn Generator, p: f64, seed: u64, cap: u64) -> u64 {
        // Tiny deterministic LCG; good enough to drive stopping rules.
        let mut x = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        let mut n = 0;
        while !g.is_complete() && n < cap {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let u = (x >> 11) as f64 / (1u64 << 53) as f64;
            g.add(u < p);
            n += 1;
        }
        n
    }

    #[test]
    fn gauss_stops_and_is_accurate() {
        let acc = Accuracy::new(0.02, 0.05).unwrap();
        let mut g = Gauss::new(acc);
        let n = feed_bernoulli(&mut g, 0.3, 42, 1_000_000);
        assert!(g.is_complete(), "did not stop within cap");
        let e = g.estimate();
        assert!((e.mean - 0.3).abs() < 0.03, "mean {}", e.mean);
        // CLT should need far fewer samples than CH for mid-range p.
        let ch = acc.chernoff_samples();
        assert!(n < ch, "gauss used {n} >= CH {ch}");
    }

    #[test]
    fn gauss_does_not_stop_before_min_samples() {
        let acc = Accuracy::new(0.5, 0.5).unwrap();
        let mut g = Gauss::new(acc);
        for _ in 0..(MIN_SAMPLES - 1) {
            g.add(true);
            assert!(!g.is_complete());
        }
    }

    #[test]
    fn chow_robbins_stops_with_small_variance_faster() {
        let acc = Accuracy::new(0.02, 0.05).unwrap();
        let mut low = ChowRobbins::new(acc);
        let n_low = feed_bernoulli(&mut low, 0.02, 7, 1_000_000);
        let mut mid = ChowRobbins::new(acc);
        let n_mid = feed_bernoulli(&mut mid, 0.5, 7, 1_000_000);
        assert!(low.is_complete() && mid.is_complete());
        assert!(n_low < n_mid, "variance-adaptive: {n_low} !< {n_mid}");
    }

    #[test]
    fn chow_robbins_estimate_reasonable() {
        let acc = Accuracy::new(0.02, 0.05).unwrap();
        let mut g = ChowRobbins::new(acc);
        feed_bernoulli(&mut g, 0.7, 99, 1_000_000);
        let e = g.estimate();
        assert!((e.mean - 0.7).abs() < 0.05, "mean {}", e.mean);
        assert!(e.samples >= MIN_SAMPLES);
    }

    #[test]
    fn kinds_instantiate() {
        for kind in GeneratorKind::ALL {
            let mut g = kind.instantiate(Accuracy::default());
            g.add(true);
            assert_eq!(g.samples(), 1);
            assert!(!kind.to_string().is_empty());
        }
        assert_eq!(
            GeneratorKind::ChernoffHoeffding.instantiate(Accuracy::default()).known_target(),
            Some(Accuracy::default().chernoff_samples())
        );
        assert_eq!(GeneratorKind::Gauss.instantiate(Accuracy::default()).known_target(), None);
    }
}
