//! # slim-stats
//!
//! The statistical engine of the `slimsim` reproduction: Chernoff–Hoeffding
//! sample bounds, sequential generators (Gauss/CLT and Chow–Robbins), an
//! order-unbiased parallel sample collector, and reproducible per-path RNG
//! streams.
//!
//! See §II-B (quantitative statistical analysis) and §III-C
//! (parallelization) of *"A Statistical Approach for Timed Reachability in
//! AADL Models"* (DSN 2015).
//!
//! ## Example
//!
//! ```
//! use slim_stats::chernoff::Accuracy;
//! use slim_stats::estimator::{ChernoffHoeffding, Generator};
//! use slim_stats::rng::StdRng;
//!
//! let acc = Accuracy::new(0.05, 0.05)?;
//! let mut gen = ChernoffHoeffding::new(acc);
//! let mut rng = StdRng::seed_from_u64(42);
//! while !gen.is_complete() {
//!     gen.add(rng.gen::<f64>() < 0.3); // one Monte Carlo sample
//! }
//! let est = gen.estimate();
//! assert!(est.samples == acc.chernoff_samples());
//! # Ok::<(), slim_stats::chernoff::AccuracyError>(())
//! ```

#![forbid(unsafe_code)]

pub mod chernoff;
pub mod estimator;
pub mod math;
pub mod parallel;
pub mod rng;
pub mod sequential;
pub mod weighted;

pub use chernoff::Accuracy;
pub use estimator::{ChernoffHoeffding, Estimate, Generator};
pub use parallel::{split_workload, RoundRobinCollector};
pub use sequential::{ChowRobbins, Gauss, GeneratorKind};
pub use weighted::{WeightedEstimate, WeightedEstimator};
