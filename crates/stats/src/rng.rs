//! Reproducible random-stream management.
//!
//! The simulator derives one independent RNG stream per sample path from a
//! single master seed, so results are reproducible regardless of the
//! number of worker threads or their scheduling: path `i` always consumes
//! stream `i`.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives a well-mixed 64-bit seed for stream `index` from `master`
/// (SplitMix64 over `master + golden-ratio · (index+1)`).
pub fn derive_seed(master: u64, index: u64) -> u64 {
    let mut z = master ^ index.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A reproducible RNG for path `index` under `master`.
pub fn path_rng(master: u64, index: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed(master, index))
}

/// Samples an exponentially distributed delay with rate `lambda` from a
/// uniform draw `u ∈ [0, 1)` by inversion.
///
/// # Panics
/// Panics (in debug builds) if `lambda <= 0`.
pub fn exponential_from_uniform(u: f64, lambda: f64) -> f64 {
    debug_assert!(lambda > 0.0, "exponential rate must be positive");
    // -ln(1-u)/λ; 1-u ∈ (0, 1] avoids ln(0).
    -(1.0 - u).ln() / lambda
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derived_seeds_differ() {
        let a = derive_seed(42, 0);
        let b = derive_seed(42, 1);
        let c = derive_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn derived_seeds_deterministic() {
        assert_eq!(derive_seed(7, 123), derive_seed(7, 123));
        let mut r1 = path_rng(7, 123);
        let mut r2 = path_rng(7, 123);
        let x1: u64 = r1.gen();
        let x2: u64 = r2.gen();
        assert_eq!(x1, x2);
    }

    #[test]
    fn seeds_well_spread() {
        // No collisions over a modest range (sanity, not a proof).
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(derive_seed(1, i)), "collision at {i}");
        }
    }

    #[test]
    fn exponential_inversion_properties() {
        assert_eq!(exponential_from_uniform(0.0, 2.0), 0.0);
        let med = exponential_from_uniform(0.5, 2.0);
        assert!((med - (2.0f64.ln() / 2.0)).abs() < 1e-12);
        // Monotone in u.
        assert!(exponential_from_uniform(0.9, 1.0) > exponential_from_uniform(0.1, 1.0));
        // Scales inversely with lambda.
        let a = exponential_from_uniform(0.7, 1.0);
        let b = exponential_from_uniform(0.7, 10.0);
        assert!((a / b - 10.0).abs() < 1e-9);
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = path_rng(11, 0);
        let lambda = 0.25;
        let n = 20_000;
        let sum: f64 =
            (0..n).map(|_| exponential_from_uniform(rng.gen::<f64>(), lambda)).sum();
        let mean = sum / n as f64;
        assert!((mean - 4.0).abs() < 0.15, "mean {mean}");
    }
}
