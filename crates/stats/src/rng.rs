//! Reproducible random-stream management.
//!
//! The simulator derives one independent RNG stream per sample path from a
//! single master seed, so results are reproducible regardless of the
//! number of worker threads or their scheduling: path `i` always consumes
//! stream `i`.
//!
//! The generator itself ([`StdRng`]) is a vendored xoshiro256++ — the
//! simulator only needs fast, reproducible uniform streams, not an
//! external RNG crate.

use std::ops::Range;

/// Derives a well-mixed 64-bit seed for stream `index` from `master`
/// (SplitMix64 over `master + golden-ratio · (index+1)`).
pub fn derive_seed(master: u64, index: u64) -> u64 {
    let mut z = master ^ index.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// SplitMix64 step, used to expand a 64-bit seed into xoshiro state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic pseudo-random generator (xoshiro256++).
///
/// Streams seeded with different 64-bit values are statistically
/// independent for simulation purposes; the same seed always reproduces
/// the same stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Seeds the generator from a single 64-bit value (SplitMix64
    /// expansion, as recommended by the xoshiro authors).
    pub fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        StdRng { s }
    }

    /// The next uniform 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform sample of type `T` (`f64` in `[0, 1)`, `u64`, `bool`).
    pub fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform index in `range` (Lemire-style rejection; unbiased).
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "gen_range called with empty range");
        let span = (range.end - range.start) as u64;
        // Rejection sampling over the top bits to avoid modulo bias.
        let zone = u64::MAX - u64::MAX.wrapping_rem(span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return range.start + (v % span) as usize;
            }
        }
    }

    /// A Bernoulli sample with success probability `p` (clamped to [0,1]).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

/// Types that can be sampled uniformly from a [`StdRng`].
pub trait Sample {
    /// Draws one uniform sample.
    fn sample(rng: &mut StdRng) -> Self;
}

impl Sample for u64 {
    fn sample(rng: &mut StdRng) -> u64 {
        rng.next_u64()
    }
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample(rng: &mut StdRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for bool {
    fn sample(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A reproducible RNG for path `index` under `master`.
pub fn path_rng(master: u64, index: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed(master, index))
}

/// Samples an exponentially distributed delay with rate `lambda` from a
/// uniform draw `u ∈ [0, 1)` by inversion.
///
/// # Panics
/// Panics (in debug builds) if `lambda <= 0`.
pub fn exponential_from_uniform(u: f64, lambda: f64) -> f64 {
    debug_assert!(lambda > 0.0, "exponential rate must be positive");
    // -ln(1-u)/λ; 1-u ∈ (0, 1] avoids ln(0).
    -(1.0 - u).ln() / lambda
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_seeds_differ() {
        let a = derive_seed(42, 0);
        let b = derive_seed(42, 1);
        let c = derive_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn derived_seeds_deterministic() {
        assert_eq!(derive_seed(7, 123), derive_seed(7, 123));
        let mut r1 = path_rng(7, 123);
        let mut r2 = path_rng(7, 123);
        let x1: u64 = r1.gen();
        let x2: u64 = r2.gen();
        assert_eq!(x1, x2);
    }

    #[test]
    fn seeds_well_spread() {
        // No collisions over a modest range (sanity, not a proof).
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(derive_seed(1, i)), "collision at {i}");
        }
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u), "{u} outside [0,1)");
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_unbiased_and_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[rng.gen_range(0..5)] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            assert!((*c as f64 / 10_000.0 - 1.0).abs() < 0.1, "bucket {i} count {c}");
        }
    }

    #[test]
    fn exponential_inversion_properties() {
        assert_eq!(exponential_from_uniform(0.0, 2.0), 0.0);
        let med = exponential_from_uniform(0.5, 2.0);
        assert!((med - (2.0f64.ln() / 2.0)).abs() < 1e-12);
        // Monotone in u.
        assert!(exponential_from_uniform(0.9, 1.0) > exponential_from_uniform(0.1, 1.0));
        // Scales inversely with lambda.
        let a = exponential_from_uniform(0.7, 1.0);
        let b = exponential_from_uniform(0.7, 10.0);
        assert!((a / b - 10.0).abs() < 1e-9);
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = path_rng(11, 0);
        let lambda = 0.25;
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| exponential_from_uniform(rng.gen::<f64>(), lambda)).sum();
        let mean = sum / n as f64;
        assert!((mean - 4.0).abs() < 0.15, "mean {mean}");
    }
}
