//! Chernoff–Hoeffding sample bounds (§II-B of the paper).
//!
//! For i.i.d. Bernoulli samples X₁…X_N with mean estimator X̄, the
//! Hoeffding inequality gives `P[|X̄ − p| ≤ ε] ≥ 1 − δ` whenever
//!
//! ```text
//! N ≥ ln(2/δ) / (2 ε²)
//! ```
//!
//! (the paper's formula rendering is garbled; this is the standard form of
//! its reference \[7\]). The number of samples is thus known *a priori*,
//! which the parallel collector exploits for trivially balanced workloads.

use std::fmt;

/// Statistical accuracy parameters: error bound ε and confidence 1 − δ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Accuracy {
    epsilon: f64,
    delta: f64,
}

/// Error constructing [`Accuracy`]: parameters must lie in (0, 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccuracyError;

impl fmt::Display for AccuracyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "epsilon and delta must lie strictly between 0 and 1")
    }
}

impl std::error::Error for AccuracyError {}

impl Accuracy {
    /// Creates accuracy parameters.
    ///
    /// # Errors
    /// [`AccuracyError`] unless `0 < epsilon < 1` and `0 < delta < 1`.
    pub fn new(epsilon: f64, delta: f64) -> Result<Accuracy, AccuracyError> {
        if epsilon > 0.0 && epsilon < 1.0 && delta > 0.0 && delta < 1.0 {
            Ok(Accuracy { epsilon, delta })
        } else {
            Err(AccuracyError)
        }
    }

    /// The error bound ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The significance δ (confidence is `1 − δ`).
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The confidence level `1 − δ`.
    pub fn confidence(&self) -> f64 {
        1.0 - self.delta
    }

    /// The Chernoff–Hoeffding sample count `⌈ln(2/δ) / (2ε²)⌉`.
    ///
    /// # Examples
    ///
    /// ```
    /// use slim_stats::chernoff::Accuracy;
    /// let acc = Accuracy::new(0.01, 0.05)?;
    /// assert_eq!(acc.chernoff_samples(), 18445);
    /// # Ok::<(), slim_stats::chernoff::AccuracyError>(())
    /// ```
    pub fn chernoff_samples(&self) -> u64 {
        ((2.0 / self.delta).ln() / (2.0 * self.epsilon * self.epsilon)).ceil() as u64
    }

    /// The error bound achievable with `n` samples at this δ (inverse of
    /// [`Self::chernoff_samples`]).
    pub fn epsilon_for_samples(&self, n: u64) -> f64 {
        assert!(n > 0, "need at least one sample");
        ((2.0 / self.delta).ln() / (2.0 * n as f64)).sqrt()
    }
}

impl Default for Accuracy {
    /// ε = 0.01, δ = 0.05 (95% confidence) — the defaults used by the
    /// benchmark harness.
    fn default() -> Self {
        Accuracy { epsilon: 0.01, delta: 0.05 }
    }
}

impl fmt::Display for Accuracy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ε={} δ={}", self.epsilon, self.delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_out_of_range() {
        assert!(Accuracy::new(0.0, 0.5).is_err());
        assert!(Accuracy::new(0.5, 0.0).is_err());
        assert!(Accuracy::new(1.0, 0.5).is_err());
        assert!(Accuracy::new(0.5, 1.0).is_err());
        assert!(Accuracy::new(-0.1, 0.5).is_err());
        assert!(Accuracy::new(f64::NAN, 0.5).is_err());
        assert!(Accuracy::new(0.1, 0.1).is_ok());
    }

    #[test]
    fn sample_count_matches_formula() {
        let acc = Accuracy::new(0.01, 0.05).unwrap();
        let expected = ((2.0f64 / 0.05).ln() / (2.0 * 0.0001)).ceil() as u64;
        assert_eq!(acc.chernoff_samples(), expected);
    }

    #[test]
    fn halving_epsilon_quadruples_samples() {
        // The quadratic growth claimed in §IV of the paper.
        let a = Accuracy::new(0.02, 0.05).unwrap().chernoff_samples();
        let b = Accuracy::new(0.01, 0.05).unwrap().chernoff_samples();
        let ratio = b as f64 / a as f64;
        assert!((ratio - 4.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn tightening_delta_grows_logarithmically() {
        let a = Accuracy::new(0.01, 0.1).unwrap().chernoff_samples();
        let b = Accuracy::new(0.01, 0.01).unwrap().chernoff_samples();
        assert!(b > a);
        assert!((b as f64) < 2.0 * a as f64, "log growth only");
    }

    #[test]
    fn epsilon_inverse_round_trips() {
        let acc = Accuracy::new(0.01, 0.05).unwrap();
        let n = acc.chernoff_samples();
        let eps = acc.epsilon_for_samples(n);
        assert!(eps <= 0.01 + 1e-6, "achieved ε {eps}");
        assert!(eps > 0.009, "not wildly conservative");
    }

    #[test]
    fn paper_case_study_parameters() {
        // §V-d uses ε = 0.005; confidence written as δ = 0.9 in the paper's
        // notation (confidence 0.9 ⇒ our δ = 0.1).
        let acc = Accuracy::new(0.005, 0.1).unwrap();
        let n = acc.chernoff_samples();
        assert!(n > 50_000 && n < 100_000, "N = {n}");
    }

    #[test]
    fn default_and_display() {
        let acc = Accuracy::default();
        assert_eq!(acc.epsilon(), 0.01);
        assert_eq!(acc.confidence(), 0.95);
        assert!(acc.to_string().contains("ε=0.01"));
    }
}
