//! Small numerical helpers (standard-normal quantile).

/// Inverse CDF (quantile) of the standard normal distribution.
///
/// Uses Acklam's rational approximation (relative error < 1.15e-9), which
/// is ample for stopping rules and confidence intervals.
///
/// # Panics
/// Panics unless `0 < p < 1`.
#[allow(clippy::excessive_precision)] // Acklam's published coefficients, kept verbatim
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile requires 0 < p < 1, got {p}");

    // Coefficients for the central and tail rational approximations.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Standard normal CDF via `erf` (Abramowitz–Stegun 7.1.26 approximation,
/// absolute error < 1.5e-7). Used in tests to sanity-check the quantile.
pub fn normal_cdf(x: f64) -> f64 {
    let t = 1.0 / (1.0 + 0.3275911 * x.abs() / std::f64::consts::SQRT_2);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let erf = 1.0 - poly * (-(x * x) / 2.0).exp();
    if x >= 0.0 {
        0.5 * (1.0 + erf)
    } else {
        0.5 * (1.0 - erf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_quantiles() {
        assert!((normal_quantile(0.5)).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-4);
        assert!((normal_quantile(0.95) - 1.644854).abs() < 1e-4);
        assert!((normal_quantile(0.995) - 2.575829).abs() < 1e-4);
        assert!((normal_quantile(0.025) + 1.959964).abs() < 1e-4);
    }

    #[test]
    fn symmetric() {
        for p in [0.01, 0.1, 0.3, 0.45] {
            let a = normal_quantile(p);
            let b = normal_quantile(1.0 - p);
            assert!((a + b).abs() < 1e-7, "asymmetry at {p}");
        }
    }

    #[test]
    fn cdf_inverts_quantile() {
        for p in [0.01, 0.05, 0.25, 0.5, 0.9, 0.99] {
            let x = normal_quantile(p);
            let back = normal_cdf(x);
            assert!((back - p).abs() < 1e-5, "p={p} back={back}");
        }
    }

    #[test]
    #[should_panic(expected = "quantile requires")]
    fn rejects_zero() {
        normal_quantile(0.0);
    }
}
