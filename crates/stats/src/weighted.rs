//! Weighted (importance-sampling) estimation with a relative-precision
//! stopping rule.
//!
//! Rare events (§VI of the paper) are out of reach for plain Monte Carlo:
//! at `p ≈ 10⁻⁷` an absolute ε of 0.01 says nothing. Importance sampling
//! biases the model to make the event likely and corrects each sample
//! with its likelihood ratio `w`; the estimator is `p̂ = (1/N) Σ wᵢXᵢ`,
//! unbiased for the true probability. Accuracy is then controlled
//! *relatively*: stop when the CLT half-width drops below
//! `rel_err · p̂`.

use crate::math::normal_quantile;

/// Result of a weighted estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedEstimate {
    /// Point estimate `p̂ = (1/N) Σ wᵢXᵢ`.
    pub mean: f64,
    /// Total samples.
    pub samples: u64,
    /// Samples with `X = 1` (event observed under the biased measure).
    pub hits: u64,
    /// CLT half-width of the confidence interval.
    pub half_width: f64,
    /// Confidence level used for the half-width.
    pub confidence: f64,
    /// Effective sample size `(Σw)²/Σw²` over the *contributing* weights —
    /// a diagnostic for degenerate weight distributions.
    pub effective_samples: f64,
}

impl WeightedEstimate {
    /// Relative half-width (`∞` while the mean is zero).
    pub fn relative_error(&self) -> f64 {
        if self.mean > 0.0 {
            self.half_width / self.mean
        } else {
            f64::INFINITY
        }
    }
}

impl std::fmt::Display for WeightedEstimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "p ≈ {:.6e} ± {:.2e} ({} samples, {} hits, {:.1}% confidence, ESS {:.0})",
            self.mean,
            self.half_width,
            self.samples,
            self.hits,
            self.confidence * 100.0,
            self.effective_samples
        )
    }
}

/// Sequential weighted estimator with relative-precision stopping.
#[derive(Debug, Clone)]
pub struct WeightedEstimator {
    rel_err: f64,
    confidence: f64,
    z: f64,
    min_samples: u64,
    n: u64,
    hits: u64,
    sum: f64,    // Σ wᵢXᵢ
    sum_sq: f64, // Σ (wᵢXᵢ)²
}

impl WeightedEstimator {
    /// Creates the estimator.
    ///
    /// # Panics
    /// Panics unless `0 < rel_err` and `0 < confidence < 1`.
    pub fn new(rel_err: f64, confidence: f64) -> WeightedEstimator {
        assert!(rel_err > 0.0, "relative error must be positive");
        assert!(confidence > 0.0 && confidence < 1.0, "confidence in (0,1)");
        WeightedEstimator {
            rel_err,
            confidence,
            z: normal_quantile(0.5 + confidence / 2.0),
            min_samples: 100,
            n: 0,
            hits: 0,
            sum: 0.0,
            sum_sq: 0.0,
        }
    }

    /// Feeds one sample: event indicator and its likelihood ratio.
    ///
    /// # Panics
    /// Panics on negative or non-finite weights.
    pub fn add(&mut self, success: bool, weight: f64) {
        assert!(weight.is_finite() && weight >= 0.0, "bad weight {weight}");
        self.n += 1;
        if success {
            self.hits += 1;
            self.sum += weight;
            self.sum_sq += weight * weight;
        }
    }

    /// Samples fed so far.
    pub fn samples(&self) -> u64 {
        self.n
    }

    /// True once the relative precision target is met (needs a handful of
    /// hits first; a single hit cannot certify anything).
    pub fn is_complete(&self) -> bool {
        self.n >= self.min_samples && self.hits >= 10 && {
            let e = self.estimate();
            e.relative_error() <= self.rel_err
        }
    }

    /// Current estimate.
    pub fn estimate(&self) -> WeightedEstimate {
        let n = self.n.max(1) as f64;
        let mean = self.sum / n;
        let var = (self.sum_sq / n - mean * mean).max(0.0);
        let half_width = self.z * (var / n).sqrt();
        let effective_samples =
            if self.sum_sq > 0.0 { self.sum * self.sum / self.sum_sq } else { 0.0 };
        WeightedEstimate {
            mean,
            samples: self.n,
            hits: self.hits,
            half_width,
            confidence: self.confidence,
            effective_samples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unweighted_matches_plain_mean() {
        let mut e = WeightedEstimator::new(0.5, 0.95);
        for i in 0..1000 {
            e.add(i % 4 == 0, 1.0);
        }
        let est = e.estimate();
        assert!((est.mean - 0.25).abs() < 1e-9);
        assert_eq!(est.hits, 250);
        assert!((est.effective_samples - 250.0).abs() < 1e-6);
    }

    #[test]
    fn weights_scale_the_estimate() {
        // Every hit carries weight 0.01: estimating a rare probability
        // from a boosted measure where the event happens half the time.
        let mut e = WeightedEstimator::new(0.5, 0.95);
        for i in 0..10_000 {
            e.add(i % 2 == 0, 0.01);
        }
        let est = e.estimate();
        assert!((est.mean - 0.005).abs() < 1e-9);
    }

    #[test]
    fn stopping_requires_hits_and_precision() {
        let mut e = WeightedEstimator::new(0.1, 0.95);
        for _ in 0..99 {
            e.add(true, 1.0);
        }
        assert!(!e.is_complete(), "needs min samples");
        for _ in 0..500 {
            e.add(true, 1.0);
        }
        // Zero variance: complete as soon as the floors are passed.
        assert!(e.is_complete());

        let mut never = WeightedEstimator::new(0.1, 0.95);
        for _ in 0..10_000 {
            never.add(false, 1.0);
        }
        assert!(!never.is_complete(), "no hits, no certificate");
        assert_eq!(never.estimate().relative_error(), f64::INFINITY);
    }

    #[test]
    fn half_width_shrinks_with_samples() {
        let mut a = WeightedEstimator::new(0.01, 0.95);
        let mut b = WeightedEstimator::new(0.01, 0.95);
        let mut x = 7u64;
        let mut coin = || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            (x >> 30) & 1 == 0
        };
        for _ in 0..1_000 {
            a.add(coin(), 0.5);
        }
        for _ in 0..100_000 {
            b.add(coin(), 0.5);
        }
        assert!(b.estimate().half_width < a.estimate().half_width / 5.0);
    }

    #[test]
    #[should_panic(expected = "bad weight")]
    fn rejects_bad_weight() {
        WeightedEstimator::new(0.1, 0.95).add(true, f64::NAN);
    }

    #[test]
    fn display_mentions_ess() {
        let mut e = WeightedEstimator::new(0.1, 0.95);
        e.add(true, 0.5);
        assert!(e.estimate().to_string().contains("ESS"));
    }
}
