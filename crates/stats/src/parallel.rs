//! Bias-free collection of samples from parallel workers (§III-C).
//!
//! Taking each sample into account *as soon as it arrives* biases
//! sequential stopping rules toward fast-completing paths (the paper's
//! \[21\]): short paths — often those that hit the goal or a deadlock early —
//! finish sooner, so an "accept on arrival" collector over-represents them
//! in the prefix the stopping rule sees. The fix (the paper's \[22\]) is to
//! buffer per worker and only consume *rounds*: one sample from every
//! worker at a time, in a fixed worker order.
//!
//! [`RoundRobinCollector`] implements that protocol. The simulator's
//! parallel runner feeds it from worker channels and drains complete
//! rounds into the generator.

use std::collections::VecDeque;

/// Per-worker FIFO buffers drained in synchronized rounds.
///
/// Generic in the sample type `T` (defaulting to the success flag the
/// generators consume) so the runner can carry richer per-sample payloads
/// — e.g. full verdicts for witness selection — through the same
/// deterministic consumption order.
#[derive(Debug, Clone)]
pub struct RoundRobinCollector<T = bool> {
    buffers: Vec<VecDeque<T>>,
    finished: Vec<bool>,
}

impl<T> RoundRobinCollector<T> {
    /// Creates a collector for `workers` parallel producers.
    ///
    /// # Panics
    /// Panics if `workers == 0`.
    pub fn new(workers: usize) -> RoundRobinCollector<T> {
        assert!(workers > 0, "need at least one worker");
        RoundRobinCollector {
            buffers: (0..workers).map(|_| VecDeque::new()).collect(),
            finished: vec![false; workers],
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.buffers.len()
    }

    /// Buffers a sample produced by `worker`.
    ///
    /// # Panics
    /// Panics if the worker index is out of range or already marked
    /// finished.
    pub fn push(&mut self, worker: usize, sample: T) {
        assert!(!self.finished[worker], "worker {worker} already finished");
        self.buffers[worker].push_back(sample);
    }

    /// Marks a worker as producing no further samples (its buffered
    /// samples remain drainable).
    pub fn finish_worker(&mut self, worker: usize) {
        self.finished[worker] = true;
    }

    /// True when a complete round is available: every worker either has a
    /// buffered sample or is finished with leftovers... — precisely: every
    /// *unfinished* worker has at least one buffered sample, and at least
    /// one sample is buffered overall.
    fn round_ready(&self) -> bool {
        let mut any = false;
        for (buf, done) in self.buffers.iter().zip(&self.finished) {
            if buf.is_empty() {
                if !done {
                    return false;
                }
            } else {
                any = true;
            }
        }
        any
    }

    /// Drains all complete rounds, returning samples in round-robin worker
    /// order (worker 0 first within each round).
    ///
    /// Allocates a fresh `Vec` per call; hot loops should prefer
    /// [`Self::drain_rounds_into`] with a reused buffer.
    pub fn drain_rounds(&mut self) -> Vec<T> {
        let mut out = Vec::new();
        self.drain_rounds_into(&mut out);
        out
    }

    /// Drains all complete rounds, appending samples to `out` in
    /// round-robin worker order (worker 0 first within each round).
    ///
    /// The allocation-free sibling of [`Self::drain_rounds`]: the parallel
    /// runner calls this once per received sample, so it reuses one buffer
    /// across the whole run instead of allocating per call.
    pub fn drain_rounds_into(&mut self, out: &mut Vec<T>) {
        while self.round_ready() {
            for buf in &mut self.buffers {
                if let Some(s) = buf.pop_front() {
                    out.push(s);
                }
            }
        }
    }

    /// Total number of still-buffered samples.
    pub fn buffered(&self) -> usize {
        self.buffers.iter().map(VecDeque::len).sum()
    }

    /// True when every worker is finished and all buffers are drained.
    pub fn is_exhausted(&self) -> bool {
        self.finished.iter().all(|&d| d) && self.buffered() == 0
    }
}

/// Splits a known total of `n` samples over `k` workers as evenly as
/// possible (the trivial CH-bound strategy from §III-C: each processor
/// computes `N/k` samples).
pub fn split_workload(n: u64, k: usize) -> Vec<u64> {
    assert!(k > 0, "need at least one worker");
    let k64 = k as u64;
    let base = n / k64;
    let extra = (n % k64) as usize;
    (0..k).map(|i| base + u64::from(i < extra)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_round_until_all_workers_contribute() {
        let mut c = RoundRobinCollector::new(3);
        c.push(0, true);
        c.push(0, false);
        c.push(1, true);
        assert_eq!(c.drain_rounds(), Vec::<bool>::new());
        c.push(2, false);
        // One full round: worker order 0, 1, 2.
        assert_eq!(c.drain_rounds(), vec![true, true, false]);
        // Worker 0 still has one buffered sample but no round is complete.
        assert_eq!(c.buffered(), 1);
        assert_eq!(c.drain_rounds(), Vec::<bool>::new());
    }

    #[test]
    fn multiple_rounds_drained_in_order() {
        let mut c = RoundRobinCollector::new(2);
        for i in 0..4 {
            c.push(0, i % 2 == 0);
            c.push(1, false);
        }
        let drained = c.drain_rounds();
        assert_eq!(drained, vec![true, false, false, false, true, false, false, false]);
    }

    #[test]
    fn finished_worker_does_not_block_rounds() {
        let mut c = RoundRobinCollector::new(2);
        c.push(0, true);
        c.push(1, true);
        c.push(0, false);
        c.finish_worker(1);
        let drained = c.drain_rounds();
        // Round 1: both workers; round 2: only worker 0 (1 finished, empty).
        assert_eq!(drained, vec![true, true, false]);
        assert!(!c.is_exhausted());
        c.finish_worker(0);
        assert!(c.is_exhausted());
    }

    #[test]
    fn leftovers_of_finished_worker_still_drain() {
        let mut c = RoundRobinCollector::new(2);
        c.push(1, true);
        c.push(1, true);
        c.finish_worker(1);
        // Worker 0 unfinished and empty: no round available.
        assert!(c.drain_rounds().is_empty());
        c.push(0, false);
        assert_eq!(c.drain_rounds(), vec![false, true]);
        c.finish_worker(0);
        assert_eq!(c.drain_rounds(), vec![true]);
        assert!(c.is_exhausted());
    }

    #[test]
    #[should_panic(expected = "already finished")]
    fn push_after_finish_panics() {
        let mut c = RoundRobinCollector::new(1);
        c.finish_worker(0);
        c.push(0, true);
    }

    #[test]
    fn split_workload_balanced() {
        assert_eq!(split_workload(10, 3), vec![4, 3, 3]);
        assert_eq!(split_workload(9, 3), vec![3, 3, 3]);
        assert_eq!(split_workload(2, 4), vec![1, 1, 0, 0]);
        assert_eq!(split_workload(0, 2), vec![0, 0]);
        let total: u64 = split_workload(1_000_003, 48).iter().sum();
        assert_eq!(total, 1_000_003);
        let parts = split_workload(1_000_003, 48);
        let min = parts.iter().min().unwrap();
        let max = parts.iter().max().unwrap();
        assert!(max - min <= 1, "imbalance {}", max - min);
    }

    #[test]
    fn order_independent_of_arrival_interleaving() {
        // The same per-worker streams delivered in two different arrival
        // orders must drain identically — that is the bias fix.
        let w0 = [true, false, true];
        let w1 = [false, false, true];

        let mut a = RoundRobinCollector::new(2);
        for i in 0..3 {
            a.push(0, w0[i]);
            a.push(1, w1[i]);
        }
        let out_a = a.drain_rounds();

        let mut b = RoundRobinCollector::new(2);
        // Worker 1 races ahead.
        for &s in &w1 {
            b.push(1, s);
        }
        for &s in &w0 {
            b.push(0, s);
        }
        let out_b = b.drain_rounds();
        assert_eq!(out_a, out_b);

        // The buffer-reusing variant sees the same order under a third
        // interleaving (strict alternation, worker 1 first), and appends
        // rather than clobbering.
        let mut c = RoundRobinCollector::new(2);
        let mut out_c = vec![true]; // pre-existing content must survive
        for i in 0..3 {
            c.push(1, w1[i]);
            c.push(0, w0[i]);
            c.drain_rounds_into(&mut out_c);
        }
        assert!(out_c[0]);
        assert_eq!(&out_c[1..], &out_a[..]);
    }

    #[test]
    fn drain_into_incremental_equals_oneshot() {
        // Draining after every push must yield the same stream as one
        // final drain.
        let pushes =
            [(0, true), (1, false), (0, false), (0, true), (1, true), (1, false), (1, true)];
        let mut incremental = RoundRobinCollector::new(2);
        let mut stream = Vec::new();
        for &(w, s) in &pushes {
            incremental.push(w, s);
            incremental.drain_rounds_into(&mut stream);
        }
        let mut oneshot = RoundRobinCollector::new(2);
        for &(w, s) in &pushes {
            oneshot.push(w, s);
        }
        assert_eq!(stream, oneshot.drain_rounds());
    }
}
