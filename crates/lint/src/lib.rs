//! # slim-lint
//!
//! Unified diagnostics subsystem for the slimsim toolchain: the
//! [`Diagnostic`] type with stable lint codes, a registry of lints with
//! per-lint allow/warn/deny levels ([`LintConfig`]), human-readable and
//! JSON-lines renderers, and the network-level static passes.
//!
//! Lint codes are grouped by layer:
//!
//! * **`S0xx`** — front-end lints over the parsed SLIM model (emitted by
//!   `slim-lang`'s analysis, which depends on this crate);
//! * **`S1xx`** — static passes over the instantiated automata network:
//!   unreachable locations, dead guards, entry-unsatisfiable invariants,
//!   absorbing/timelocked locations, unmatched events, unused
//!   variables/events ([`passes`]);
//! * **`S2xx`** — network well-formedness rules, i.e. the
//!   [`slim_automata::validate::validate_all`] violations re-expressed as
//!   diagnostics ([`wellformed`]);
//! * **`S3xx`** — semantic lints backed by the `slim-analysis`
//!   abstract-interpretation fixpoint: provably out-of-range assignments
//!   and guard comparisons on provably-constant variables ([`passes`]).
//!
//! ## Example
//!
//! ```
//! use slim_automata::prelude::*;
//! use slim_lint::{lint_network, Code, LintConfig};
//!
//! let mut b = NetworkBuilder::new();
//! let n = b.var("n", VarType::Int { lo: 0, hi: 5 }, Value::Int(0));
//! let mut a = AutomatonBuilder::new("p");
//! let l0 = a.location("l0");
//! let l1 = a.location("l1");
//! // Dead guard: n is at most 5.
//! a.guarded(l0, ActionId::TAU, Expr::var(n).ge(Expr::int(10)), [], l1);
//! b.add_automaton(a);
//! let net = b.build()?;
//!
//! let diags = lint_network(&net, &LintConfig::new());
//! assert!(diags.iter().any(|d| d.code == Code::UnsatisfiableGuard));
//! # Ok::<(), slim_automata::error::ModelError>(())
//! ```

#![forbid(unsafe_code)]

pub mod diagnostic;
pub mod passes;
pub mod registry;
pub mod render;
pub mod wellformed;

pub use diagnostic::{error_count, has_errors, Diagnostic, Severity, Span};
pub use registry::{Code, Level, LintConfig};
pub use render::{render_json, render_json_all, render_text, render_text_all, SourceFile};

use slim_automata::network::Network;

/// Lints an instantiated network: first the `S2xx` well-formedness rules
/// (collecting **all** violations), then — only when the network is
/// well-formed — the `S1xx` static passes, whose algorithms assume
/// in-range indices and Boolean guards. The given configuration is
/// applied (allow-filtering and severity remapping) before returning.
pub fn lint_network(net: &Network, config: &LintConfig) -> Vec<Diagnostic> {
    let mut diags = wellformed::wellformedness(net);
    if diags.is_empty() {
        diags = passes::network_passes(net);
    }
    config.apply(diags)
}

/// The pre-flight gate shared by `slimsim analyze` and the fuzz harness:
/// lints the network and splits on the deny decision. `Ok(diags)` means
/// analysis may proceed (possibly with warnings to show); `Err(diags)`
/// carries at least one deny-level diagnostic and the caller must refuse
/// to simulate. Keeping the decision in one place guarantees the CLI and
/// the differential oracles can never drift apart on what "rejected"
/// means.
///
/// # Errors
/// The diagnostics themselves, when any of them is deny-level.
pub fn preflight(net: &Network, config: &LintConfig) -> Result<Vec<Diagnostic>, Vec<Diagnostic>> {
    let diags = lint_network(net, config);
    if has_errors(&diags) {
        Err(diags)
    } else {
        Ok(diags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_automata::network::{AutomatonBuilder, NetworkBuilder};
    use slim_automata::prelude::{ActionId, Expr};

    #[test]
    fn wellformedness_gates_the_passes() {
        // Invalid network (non-Boolean guard): only S2xx reported, the
        // S1xx passes (which would flag the unreachable `l1`) don't run.
        let mut b = NetworkBuilder::new();
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location("l0");
        let _l1 = a.location("l1");
        a.guarded(l0, ActionId::TAU, Expr::int(1), [], l0);
        b.add_automaton(a);
        let net = b.assemble_for_validation().unwrap();
        let diags = lint_network(&net, &LintConfig::new());
        assert!(diags.iter().all(|d| d.code == Code::WfType), "{diags:?}");
        assert!(has_errors(&diags));
    }

    #[test]
    fn config_is_applied() {
        let mut b = NetworkBuilder::new();
        let mut a = AutomatonBuilder::new("p");
        let _ = a.location("l0");
        let _ = a.location("orphan");
        b.add_automaton(a);
        let net = b.build().unwrap();
        let mut cfg = LintConfig::new();
        cfg.set(Code::UnreachableLocation, Level::Allow);
        cfg.set(Code::AbsorbingLocation, Level::Allow);
        assert!(lint_network(&net, &cfg).is_empty());
        cfg.set(Code::UnreachableLocation, Level::Deny);
        let diags = lint_network(&net, &cfg);
        assert!(has_errors(&diags), "{diags:?}");
    }
}
