//! Mapping network well-formedness violations ([`ModelError`]) onto
//! `S2xx` diagnostics.

use crate::diagnostic::Diagnostic;
use crate::registry::Code;
use slim_automata::error::ModelError;
use slim_automata::network::Network;
use slim_automata::validate::validate_all;

/// The `S2xx` code for a [`ModelError`] variant.
pub fn code_of(e: &ModelError) -> Code {
    match e {
        ModelError::DuplicateName(_) => Code::WfDuplicateName,
        ModelError::UnknownName(_) => Code::WfUnknownName,
        ModelError::MixedTransitionKinds { .. } => Code::WfMixedTransitionKinds,
        ModelError::MarkovianNotInternal { .. } => Code::WfMarkovianNotInternal,
        ModelError::MarkovianInvariant { .. } => Code::WfMarkovianInvariant,
        ModelError::NonPositiveRate { .. } => Code::WfNonPositiveRate,
        ModelError::RateConflict { .. } => Code::WfRateConflict,
        ModelError::RateOnDiscrete { .. } => Code::WfRateOnDiscrete,
        ModelError::FlowCycle { .. } => Code::WfFlowCycle,
        ModelError::FlowTargetConflict { .. } => Code::WfFlowTargetConflict,
        ModelError::Type(_) => Code::WfType,
        ModelError::BadInit { .. } => Code::WfBadInit,
        ModelError::Empty | ModelError::NoLocations { .. } => Code::WfEmpty,
        ModelError::IndexOutOfRange { .. } => Code::WfIndexOutOfRange,
    }
}

/// Converts one [`ModelError`] into a diagnostic (its message is the
/// error's `Display` form; well-formedness findings carry no source span).
pub fn diagnose_model_error(e: &ModelError) -> Diagnostic {
    Diagnostic::new(code_of(e), e.to_string())
}

/// Runs [`validate_all`] and maps every violation to an `S2xx` diagnostic.
pub fn wellformedness(net: &Network) -> Vec<Diagnostic> {
    validate_all(net).iter().map(diagnose_model_error).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_automata::error::TypeError;

    #[test]
    fn every_variant_maps_to_a_wf_code() {
        let cases = [
            (ModelError::DuplicateName("x".into()), Code::WfDuplicateName),
            (ModelError::UnknownName("x".into()), Code::WfUnknownName),
            (
                ModelError::MixedTransitionKinds { automaton: "a".into(), location: "l".into() },
                Code::WfMixedTransitionKinds,
            ),
            (
                ModelError::MarkovianNotInternal { automaton: "a".into(), location: "l".into() },
                Code::WfMarkovianNotInternal,
            ),
            (
                ModelError::MarkovianInvariant { automaton: "a".into(), location: "l".into() },
                Code::WfMarkovianInvariant,
            ),
            (
                ModelError::NonPositiveRate { automaton: "a".into(), rate: -1.0 },
                Code::WfNonPositiveRate,
            ),
            (ModelError::RateConflict { variable: "v".into() }, Code::WfRateConflict),
            (ModelError::RateOnDiscrete { variable: "v".into() }, Code::WfRateOnDiscrete),
            (ModelError::FlowCycle { involving: "v".into() }, Code::WfFlowCycle),
            (ModelError::FlowTargetConflict { variable: "v".into() }, Code::WfFlowTargetConflict),
            (ModelError::Type(TypeError::Mismatch { context: "c".into() }), Code::WfType),
            (ModelError::BadInit { variable: "v".into(), detail: "d".into() }, Code::WfBadInit),
            (ModelError::Empty, Code::WfEmpty),
            (ModelError::NoLocations { automaton: "a".into() }, Code::WfEmpty),
            (ModelError::IndexOutOfRange { what: "x", index: 1, len: 0 }, Code::WfIndexOutOfRange),
        ];
        for (err, code) in cases {
            let d = diagnose_model_error(&err);
            assert_eq!(d.code, code, "{err:?}");
            assert!(d.is_error());
            assert_eq!(d.message, err.to_string());
        }
    }

    #[test]
    fn wellformed_network_yields_no_diagnostics() {
        use slim_automata::network::{AutomatonBuilder, NetworkBuilder};
        let mut b = NetworkBuilder::new();
        let mut a = AutomatonBuilder::new("p");
        a.location("l");
        b.add_automaton(a);
        let net = b.build().unwrap();
        assert!(wellformedness(&net).is_empty());
    }
}
