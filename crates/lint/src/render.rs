//! Rendering diagnostics: a human-readable text form with a source
//! excerpt and caret, and a machine-readable JSON-lines form.
//!
//! The JSON encoder is hand-rolled (one flat object per line, RFC 8259
//! string escaping) so the crate stays dependency-free.

use crate::diagnostic::Diagnostic;
use std::fmt::Write as _;

/// A named source text, used by the text renderer to show excerpts and by
/// both renderers to attribute positions to a file.
#[derive(Debug, Clone, Copy)]
pub struct SourceFile<'a> {
    /// Display name (typically the path the model was read from).
    pub name: &'a str,
    /// Full source text.
    pub text: &'a str,
}

impl<'a> SourceFile<'a> {
    /// Pairs a display name with the source text.
    pub fn new(name: &'a str, text: &'a str) -> SourceFile<'a> {
        SourceFile { name, text }
    }

    fn line(&self, line_1based: u32) -> Option<&'a str> {
        self.text.lines().nth(line_1based.saturating_sub(1) as usize)
    }
}

/// Renders one diagnostic in the human-readable form:
///
/// ```text
/// warning[S010]: `D.I`: mode `orphan` is unreachable
///   --> model.slim:6:5
///    |
///  6 |     orphan: mode;
///    |     ^
///    = help: add a transition targeting it or remove it
/// ```
///
/// Without a source the excerpt block is omitted; without a span only the
/// header (and help) is printed.
pub fn render_text(d: &Diagnostic, src: Option<&SourceFile<'_>>) -> String {
    let mut out = String::new();
    let _ = write!(out, "{}[{}]: {}", d.severity, d.code.as_str(), d.message);
    if let Some(span) = d.span {
        let name = src.map(|s| s.name).unwrap_or("<input>");
        let _ = write!(out, "\n  --> {name}:{span}");
        if let Some(text) = src.and_then(|s| s.line(span.line)) {
            let gutter = span.line.to_string();
            let pad = " ".repeat(gutter.len());
            let caret_indent = " ".repeat(span.col.saturating_sub(1) as usize);
            let _ = write!(out, "\n {pad} |\n {gutter} | {text}\n {pad} | {caret_indent}^");
        }
    }
    if let Some(help) = &d.help {
        let _ = write!(out, "\n  = help: {help}");
    }
    out
}

/// Renders all diagnostics in text form, separated by blank lines, with a
/// trailing summary line (`N errors, M warnings, K notes`). Returns the
/// empty string for no diagnostics.
pub fn render_text_all(diags: &[Diagnostic], src: Option<&SourceFile<'_>>) -> String {
    if diags.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    for d in diags {
        out.push_str(&render_text(d, src));
        out.push_str("\n\n");
    }
    let (mut errors, mut warnings, mut notes) = (0usize, 0usize, 0usize);
    for d in diags {
        match d.severity {
            crate::Severity::Error => errors += 1,
            crate::Severity::Warning => warnings += 1,
            crate::Severity::Note => notes += 1,
        }
    }
    let _ = write!(out, "{errors} errors, {warnings} warnings, {notes} notes");
    out
}

/// Renders one diagnostic as a single-line JSON object:
///
/// ```text
/// {"code":"S010","name":"unreachable-mode","severity":"warning","message":"...","file":"model.slim","line":6,"col":5,"help":null}
/// ```
///
/// `file` is `null` when no source name is given; `line`/`col` are `null`
/// without a span.
pub fn render_json(d: &Diagnostic, file: Option<&str>) -> String {
    let mut out = String::with_capacity(128);
    out.push_str("{\"code\":");
    push_json_str(&mut out, d.code.as_str());
    out.push_str(",\"name\":");
    push_json_str(&mut out, d.code.name());
    out.push_str(",\"severity\":");
    push_json_str(&mut out, d.severity.tag());
    out.push_str(",\"message\":");
    push_json_str(&mut out, &d.message);
    out.push_str(",\"file\":");
    match file {
        Some(f) => push_json_str(&mut out, f),
        None => out.push_str("null"),
    }
    match d.span {
        Some(span) => {
            let _ = write!(out, ",\"line\":{},\"col\":{}", span.line, span.col);
        }
        None => out.push_str(",\"line\":null,\"col\":null"),
    }
    out.push_str(",\"help\":");
    match &d.help {
        Some(h) => push_json_str(&mut out, h),
        None => out.push_str("null"),
    }
    out.push('}');
    out
}

/// Renders all diagnostics as JSON lines (one object per line).
pub fn render_json_all(diags: &[Diagnostic], file: Option<&str>) -> String {
    diags.iter().map(|d| render_json(d, file)).collect::<Vec<_>>().join("\n")
}

/// Appends `s` as a JSON string literal (quotes and RFC 8259 escapes).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Code;

    fn sample() -> Diagnostic {
        Diagnostic::new(Code::UnreachableMode, "`D.I`: mode `orphan` is unreachable")
            .at(2, 5)
            .with_help("add a transition targeting it")
    }

    #[test]
    fn text_with_source_shows_caret() {
        let src = SourceFile::new("model.slim", "line one\n    orphan: mode;\nline three");
        let s = render_text(&sample(), Some(&src));
        assert!(s.contains("warning[S010]"), "{s}");
        assert!(s.contains("--> model.slim:2:5"), "{s}");
        assert!(s.contains("2 |     orphan: mode;"), "{s}");
        // Caret under column 5.
        let caret_line = s.lines().last().unwrap();
        assert!(s.contains("= help:"), "{s}");
        let caret = s.lines().find(|l| l.trim_end().ends_with('^')).unwrap();
        assert_eq!(caret.find('^').unwrap() - caret.find('|').unwrap(), 2 + 4);
        assert!(!caret_line.is_empty());
    }

    #[test]
    fn text_without_source_or_span() {
        let s = render_text(&sample(), None);
        assert!(s.contains("--> <input>:2:5"), "{s}");
        assert!(!s.contains(" | "), "no excerpt without source: {s}");
        let mut no_span = sample();
        no_span.span = None;
        let s = render_text(&no_span, None);
        assert!(!s.contains("-->"), "{s}");
    }

    #[test]
    fn text_all_summarizes() {
        let diags = vec![sample(), Diagnostic::new(Code::WfEmpty, "no automata")];
        let s = render_text_all(&diags, None);
        assert!(s.ends_with("1 errors, 1 warnings, 0 notes"), "{s}");
        assert_eq!(render_text_all(&[], None), "");
    }

    #[test]
    fn json_shape_and_escaping() {
        let d = Diagnostic::new(Code::UnsatisfiableGuard, "guard `x \"q\"\n` is false");
        let s = render_json(&d, Some("a\\b.slim"));
        assert!(s.starts_with('{') && s.ends_with('}'));
        assert!(s.contains("\"code\":\"S101\""), "{s}");
        assert!(s.contains("\"name\":\"unsatisfiable-guard\""), "{s}");
        assert!(s.contains("\\\"q\\\"\\n"), "{s}");
        assert!(s.contains("\"file\":\"a\\\\b.slim\""), "{s}");
        assert!(s.contains("\"line\":null,\"col\":null"), "{s}");
        assert!(s.contains("\"help\":null"), "{s}");
        assert!(!s.contains('\n'), "single line: {s}");
    }

    #[test]
    fn json_all_is_one_object_per_line() {
        let diags = vec![sample(), sample()];
        let s = render_json_all(&diags, None);
        assert_eq!(s.lines().count(), 2);
        for line in s.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert!(line.contains("\"line\":2,\"col\":5"));
        }
    }

    #[test]
    fn control_chars_escaped() {
        let mut out = String::new();
        push_json_str(&mut out, "a\u{1}b");
        assert_eq!(out, "\"a\\u0001b\"");
    }
}
