//! The [`Diagnostic`] type: a single finding with a stable lint code,
//! severity, message, optional source location and optional help text.

use crate::registry::{Code, Level};
use std::fmt;

/// A source position (1-based line and column) attached to a diagnostic.
///
/// Mirrors the front-end's token positions without depending on it: the
/// front-end converts its `Pos` into a `Span` when emitting diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl Span {
    /// Builds a span from 1-based line and column.
    pub fn new(line: u32, col: u32) -> Span {
        Span { line, col }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Severity of a reported diagnostic.
///
/// The severity a diagnostic is *emitted* with comes from the effective
/// [`Level`] of its lint code (see [`crate::registry::LintConfig`]); passes
/// construct diagnostics at their code's default severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: worth knowing, not suspicious by itself.
    Note,
    /// Suspicious but legal; the model can still be analyzed.
    Warning,
    /// Definitely wrong; analysis results would be meaningless.
    Error,
}

impl Severity {
    /// Lowercase tag used by both renderers ("note", "warning", "error").
    pub fn tag(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    /// The severity corresponding to a lint level (`Allow` has no
    /// severity; diagnostics at that level are dropped before rendering,
    /// so this maps it to `Note` defensively).
    pub fn from_level(level: Level) -> Severity {
        match level {
            Level::Allow | Level::Note => Severity::Note,
            Level::Warn => Severity::Warning,
            Level::Deny => Severity::Error,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// A single finding: lint code, severity, message, optional source span
/// and optional help text.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable lint code (`S0xx` front-end, `S1xx` network passes, `S2xx`
    /// well-formedness).
    pub code: Code,
    /// Severity this diagnostic is reported at.
    pub severity: Severity,
    /// Human-readable, single-sentence message.
    pub message: String,
    /// Source location, when the finding maps to a concrete source
    /// position (front-end lints only; network-level findings have none).
    pub span: Option<Span>,
    /// Optional help text suggesting a fix.
    pub help: Option<String>,
}

impl Diagnostic {
    /// Creates a diagnostic at the code's default severity.
    pub fn new(code: Code, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::from_level(code.default_level()),
            message: message.into(),
            span: None,
            help: None,
        }
    }

    /// Attaches a source span.
    pub fn with_span(mut self, span: Span) -> Diagnostic {
        self.span = Some(span);
        self
    }

    /// Attaches a source span given as line/column.
    pub fn at(self, line: u32, col: u32) -> Diagnostic {
        self.with_span(Span::new(line, col))
    }

    /// Attaches help text.
    pub fn with_help(mut self, help: impl Into<String>) -> Diagnostic {
        self.help = Some(help.into());
        self
    }

    /// True if this diagnostic is an error.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code.as_str(), self.message)?;
        if let Some(span) = self.span {
            write!(f, " ({span})")?;
        }
        Ok(())
    }
}

/// True if any diagnostic in the slice is an error.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(Diagnostic::is_error)
}

/// Number of error-severity diagnostics in the slice.
pub fn error_count(diags: &[Diagnostic]) -> usize {
    diags.iter().filter(|d| d.is_error()).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ordering_and_tags() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::Warning.tag(), "warning");
        assert_eq!(Severity::Error.to_string(), "error");
    }

    #[test]
    fn builder_chains() {
        let d = Diagnostic::new(Code::UnreachableLocation, "loc `x` unreachable")
            .at(3, 7)
            .with_help("remove it");
        assert_eq!(d.span, Some(Span::new(3, 7)));
        assert_eq!(d.help.as_deref(), Some("remove it"));
        assert_eq!(d.severity, Severity::Warning);
        assert!(!d.is_error());
        let s = d.to_string();
        assert!(s.contains("warning[S100]") && s.contains("3:7"), "{s}");
    }

    #[test]
    fn error_helpers() {
        let diags = vec![
            Diagnostic::new(Code::UnreachableLocation, "w"),
            Diagnostic::new(Code::WfEmpty, "e"),
        ];
        assert!(has_errors(&diags));
        assert_eq!(error_count(&diags), 1);
        assert!(!has_errors(&diags[..1]));
    }

    #[test]
    fn severity_from_level() {
        assert_eq!(Severity::from_level(Level::Note), Severity::Note);
        assert_eq!(Severity::from_level(Level::Warn), Severity::Warning);
        assert_eq!(Severity::from_level(Level::Deny), Severity::Error);
        assert_eq!(Severity::from_level(Level::Allow), Severity::Note);
    }
}
