//! Network-level static lint passes (`S1xx`) over an instantiated,
//! well-formed [`Network`].
//!
//! The passes are conservative: they only report what can be established
//! from the static structure (graph reachability through transitions and
//! sync vectors, abstract ranges derived from variable types, the linear
//! delay solver at the initial state). A reported `S10x` is a definite
//! structural fact about the network; the *interpretation* (deadlock,
//! timelock) is a possibility, which is why those lints default to notes.
//!
//! **Precondition:** the network passed [`slim_automata::validate`]
//! well-formedness (all indices in range, guards Boolean). Call
//! [`crate::lint_network`] rather than [`network_passes`] directly to get
//! that gating for free.

use crate::diagnostic::Diagnostic;
use crate::registry::Code;
use slim_automata::automaton::GuardKind;
use slim_automata::expr::{BinOp, Expr, VarId};
use slim_automata::linear::{solve, DelayEnv};
use slim_automata::network::Network;
use slim_automata::value::{Value, VarType};

/// Runs every network-level pass, returning diagnostics at their codes'
/// default severities (apply a [`crate::LintConfig`] afterwards).
pub fn network_passes(net: &Network) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let reach = reachable_locations(net);
    unreachable_locations(net, &reach, &mut out);
    unsatisfiable_guards(net, &mut out);
    entry_invariants(net, &mut out);
    absorbing_and_timelock(net, &reach, &mut out);
    sync_mismatches(net, &mut out);
    unused_variables(net, &mut out);
    unused_actions(net, &mut out);
    out
}

/// Per-automaton location reachability, over-approximating synchronization:
/// a transition labeled with a sync action is considered usable once every
/// participant of that action has the action available from some location
/// currently known reachable. Internal (τ) and Markovian transitions are
/// always usable from a reachable source. Guards that are statically
/// unsatisfiable (the same abstract interval evaluation S101 reports on)
/// are non-traversable; all other guards are ignored (any location this
/// fixpoint misses is unreachable under *every* valuation).
fn reachable_locations(net: &Network) -> Vec<Vec<bool>> {
    let automata = net.automata();
    let ty_of = |v: VarId| net.ty_of(v);
    let dead_guard = |g: &Expr| abs_eval(g, &ty_of) == Abs::Bool(Some(false));
    let mut reach: Vec<Vec<bool>> = automata
        .iter()
        .map(|a| {
            let mut r = vec![false; a.locations.len()];
            if a.init.0 < r.len() {
                r[a.init.0] = true;
            }
            r
        })
        .collect();
    loop {
        let mut changed = false;
        for (p, a) in automata.iter().enumerate() {
            for t in &a.transitions {
                if !reach[p][t.from.0] || reach[p][t.to.0] {
                    continue;
                }
                let usable = match &t.guard {
                    GuardKind::Markovian(_) => true,
                    GuardKind::Boolean(g) if dead_guard(g) => false,
                    GuardKind::Boolean(_) => {
                        t.action.is_tau()
                            || net.participants(t.action).iter().all(|&q| {
                                q.0 == p
                                    || automata[q.0]
                                        .transitions
                                        .iter()
                                        .any(|u| u.action == t.action && reach[q.0][u.from.0])
                            })
                    }
                };
                if usable {
                    reach[p][t.to.0] = true;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    reach
}

/// S100: locations the reachability fixpoint never marks.
fn unreachable_locations(net: &Network, reach: &[Vec<bool>], out: &mut Vec<Diagnostic>) {
    for (p, a) in net.automata().iter().enumerate() {
        for (l, loc) in a.locations.iter().enumerate() {
            if !reach[p][l] {
                out.push(
                    Diagnostic::new(
                        Code::UnreachableLocation,
                        format!("location `{}` of automaton `{}` is unreachable", loc.name, a.name),
                    )
                    .with_help(
                        "no sequence of internal, Markovian, or synchronizable \
                         transitions can reach it from the initial location",
                    ),
                );
            }
        }
    }
}

/// S101: Boolean guards that are false for every valuation admitted by
/// the variables' declared types (abstract interval evaluation).
fn unsatisfiable_guards(net: &Network, out: &mut Vec<Diagnostic>) {
    let ty_of = |v: VarId| net.ty_of(v);
    for a in net.automata() {
        for t in &a.transitions {
            let GuardKind::Boolean(g) = &t.guard else { continue };
            if abs_eval(g, &ty_of) == Abs::Bool(Some(false)) {
                let from = &a.locations[t.from.0].name;
                let to = &a.locations[t.to.0].name;
                out.push(
                    Diagnostic::new(
                        Code::UnsatisfiableGuard,
                        format!(
                            "guard `{}` on transition `{from}` -> `{to}` of `{}` can never be true",
                            net.render_expr(g),
                            a.name
                        ),
                    )
                    .with_help(
                        "the guard is unsatisfiable for every valuation within \
                         the variables' declared ranges; the transition is dead",
                    ),
                );
            }
        }
    }
}

/// S102: initial-location invariants that do not hold on entry, checked
/// with the linear delay solver at the initial state (delay 0 must lie in
/// the satisfying set).
fn entry_invariants(net: &Network, out: &mut Vec<Diagnostic>) {
    let Ok(init) = net.initial_state() else { return };
    let rates = net.active_rates(&init);
    let rate = |v: VarId| rates[v.0];
    let env = DelayEnv::new(&init.nu, &rate);
    for a in net.automata() {
        let loc = &a.locations[a.init.0];
        if loc.invariant.is_const_true() {
            continue;
        }
        // Non-linear invariants are out of the solver's fragment; skip.
        let Ok(sat) = solve(&loc.invariant, &env) else { continue };
        if !sat.contains(0.0) {
            out.push(
                Diagnostic::new(
                    Code::EntryUnsatInvariant,
                    format!(
                        "invariant `{}` of initial location `{}` of `{}` does not hold on entry",
                        net.render_expr(&loc.invariant),
                        loc.name,
                        a.name
                    ),
                )
                .with_help(
                    "the initial valuation violates the invariant; every run \
                     fails immediately at time 0",
                ),
            );
        }
    }
}

/// S103/S104: reachable locations with no outgoing transition at all.
/// With a time-bounded invariant that is a potential timelock (S104:
/// time cannot pass beyond the bound and there is no escape); otherwise a
/// potential deadlock (S103, often an intentional failure sink).
fn absorbing_and_timelock(net: &Network, reach: &[Vec<bool>], out: &mut Vec<Diagnostic>) {
    for (p, a) in net.automata().iter().enumerate() {
        for (l, loc) in a.locations.iter().enumerate() {
            if !reach[p][l] || a.transitions.iter().any(|t| t.from.0 == l) {
                continue;
            }
            let time_bounded = !loc.invariant.is_const_true()
                && loc.invariant.reads_any_var(&|v| net.ty_of(v).is_timed());
            if time_bounded {
                out.push(
                    Diagnostic::new(
                        Code::InvariantWithoutEscape,
                        format!(
                            "location `{}` of `{}` has time-bounded invariant `{}` but no \
                             escaping transition (potential timelock)",
                            loc.name,
                            a.name,
                            net.render_expr(&loc.invariant)
                        ),
                    )
                    .with_help(
                        "once the invariant's time bound is hit, neither delaying nor \
                         firing a transition is possible",
                    ),
                );
            } else {
                out.push(
                    Diagnostic::new(
                        Code::AbsorbingLocation,
                        format!(
                            "location `{}` of `{}` has no outgoing transition \
                             (absorbing; potential deadlock)",
                            loc.name, a.name
                        ),
                    )
                    .with_help(
                        "harmless for intentional sinks (goal/failure states); \
                         otherwise add an exit",
                    ),
                );
            }
        }
    }
}

/// S105: synchronizing actions with exactly one participant. Such an
/// event degenerates to an internal step — usually a connection that was
/// meant to have a peer on the other side.
fn sync_mismatches(net: &Network, out: &mut Vec<Diagnostic>) {
    for (i, decl) in net.actions().iter().enumerate().skip(1) {
        let parts = net.participants(slim_automata::automaton::ActionId(i));
        if parts.len() == 1 {
            let only = &net.automata()[parts[0].0].name;
            out.push(
                Diagnostic::new(
                    Code::UnmatchedSync,
                    format!(
                        "event `{}` is used only by `{only}`; it synchronizes with no \
                         other component",
                        decl.name
                    ),
                )
                .with_help(
                    "an event with a single participant behaves like an internal \
                     action; connect a receiver or drop the event",
                ),
            );
        }
    }
}

/// S106: variables that appear nowhere after lowering — not in a guard,
/// invariant, effect (either side), flow (either side), or rate.
fn unused_variables(net: &Network, out: &mut Vec<Diagnostic>) {
    let mut used = vec![false; net.vars().len()];
    let mark_expr = |e: &Expr, used: &mut Vec<bool>| {
        for v in e.vars() {
            used[v.0] = true;
        }
    };
    for a in net.automata() {
        for loc in &a.locations {
            mark_expr(&loc.invariant, &mut used);
            for &(v, _) in &loc.rates {
                used[v.0] = true;
            }
        }
        for t in &a.transitions {
            if let GuardKind::Boolean(g) = &t.guard {
                mark_expr(g, &mut used);
            }
            for eff in &t.effects {
                used[eff.var.0] = true;
                mark_expr(&eff.expr, &mut used);
            }
        }
    }
    for f in net.flows() {
        used[f.target.0] = true;
        mark_expr(&f.expr, &mut used);
    }
    for (i, decl) in net.vars().iter().enumerate() {
        if !used[i] {
            out.push(
                Diagnostic::new(
                    Code::UnusedVariable,
                    format!("variable `{}` is never used", decl.name),
                )
                .with_help(
                    "it appears in no guard, invariant, effect, flow, or rate; \
                     remove the declaration",
                ),
            );
        }
    }
}

/// S107: declared events that label no transition in any automaton.
fn unused_actions(net: &Network, out: &mut Vec<Diagnostic>) {
    let mut used = vec![false; net.actions().len()];
    for a in net.automata() {
        for t in &a.transitions {
            used[t.action.0] = true;
        }
    }
    for (i, decl) in net.actions().iter().enumerate().skip(1) {
        if !used[i] {
            out.push(
                Diagnostic::new(
                    Code::UnusedAction,
                    format!("event `{}` is declared but never used on any transition", decl.name),
                )
                .with_help("remove the declaration or add the missing transition"),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Abstract interval evaluation over declared variable ranges (for S101).
// ---------------------------------------------------------------------------

/// Abstract value: a three-valued Boolean or a numeric interval (bounds
/// may be infinite). Sound over-approximation of every concrete valuation
/// admitted by the variables' declared types.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Abs {
    /// `Some(b)` = definitely `b`; `None` = unknown.
    Bool(Option<bool>),
    /// All values in `[lo, hi]`.
    Num(f64, f64),
}

const UNKNOWN: Abs = Abs::Bool(None);
const TOP_NUM: Abs = Abs::Num(f64::NEG_INFINITY, f64::INFINITY);

/// Sanitizing constructor: NaN bounds (from ∞ − ∞ and friends) widen to
/// the corresponding infinity.
fn num(lo: f64, hi: f64) -> Abs {
    let lo = if lo.is_nan() { f64::NEG_INFINITY } else { lo };
    let hi = if hi.is_nan() { f64::INFINITY } else { hi };
    Abs::Num(lo, hi)
}

fn range_of(ty: VarType) -> Abs {
    match ty {
        VarType::Bool => Abs::Bool(None),
        VarType::Int { lo, hi } => Abs::Num(lo as f64, hi as f64),
        VarType::Real | VarType::Clock | VarType::Continuous => TOP_NUM,
    }
}

/// Evaluates `e` over the abstract ranges of its variables' types.
fn abs_eval(e: &Expr, ty_of: &dyn Fn(VarId) -> VarType) -> Abs {
    match e {
        Expr::Const(Value::Bool(b)) => Abs::Bool(Some(*b)),
        Expr::Const(Value::Int(i)) => Abs::Num(*i as f64, *i as f64),
        Expr::Const(Value::Real(r)) => Abs::Num(*r, *r),
        Expr::Var(v) => range_of(ty_of(*v)),
        Expr::Not(x) => match abs_eval(x, ty_of) {
            Abs::Bool(b) => Abs::Bool(b.map(|b| !b)),
            Abs::Num(..) => UNKNOWN,
        },
        Expr::Neg(x) => match abs_eval(x, ty_of) {
            Abs::Num(lo, hi) => num(-hi, -lo),
            Abs::Bool(_) => TOP_NUM,
        },
        Expr::Bin(op, a, b) => abs_bin(*op, abs_eval(a, ty_of), abs_eval(b, ty_of)),
        Expr::Ite(c, t, e) => match abs_eval(c, ty_of) {
            Abs::Bool(Some(true)) => abs_eval(t, ty_of),
            Abs::Bool(Some(false)) => abs_eval(e, ty_of),
            _ => join(abs_eval(t, ty_of), abs_eval(e, ty_of)),
        },
    }
}

/// Least upper bound of two abstract values (for unknown-condition `ite`).
fn join(a: Abs, b: Abs) -> Abs {
    match (a, b) {
        (Abs::Bool(x), Abs::Bool(y)) => Abs::Bool(if x == y { x } else { None }),
        (Abs::Num(al, ah), Abs::Num(bl, bh)) => Abs::Num(al.min(bl), ah.max(bh)),
        // Mixed kinds cannot type-check; stay unknown.
        _ => UNKNOWN,
    }
}

fn abs_bin(op: BinOp, a: Abs, b: Abs) -> Abs {
    use BinOp::*;
    match op {
        And | Or | Xor | Implies => {
            let (Abs::Bool(x), Abs::Bool(y)) = (a, b) else { return UNKNOWN };
            Abs::Bool(match op {
                And => match (x, y) {
                    (Some(false), _) | (_, Some(false)) => Some(false),
                    (Some(true), Some(true)) => Some(true),
                    _ => None,
                },
                Or => match (x, y) {
                    (Some(true), _) | (_, Some(true)) => Some(true),
                    (Some(false), Some(false)) => Some(false),
                    _ => None,
                },
                Xor => match (x, y) {
                    (Some(x), Some(y)) => Some(x != y),
                    _ => None,
                },
                Implies => match (x, y) {
                    (Some(false), _) | (_, Some(true)) => Some(true),
                    (Some(true), Some(false)) => Some(false),
                    _ => None,
                },
                _ => unreachable!(),
            })
        }
        Eq | Ne => {
            let eq = match (a, b) {
                (Abs::Bool(Some(x)), Abs::Bool(Some(y))) => Some(x == y),
                (Abs::Num(al, ah), Abs::Num(bl, bh)) => {
                    if al == ah && bl == bh && al == bl {
                        Some(true)
                    } else if ah < bl || bh < al {
                        Some(false)
                    } else {
                        None
                    }
                }
                _ => None,
            };
            Abs::Bool(if op == Ne { eq.map(|e| !e) } else { eq })
        }
        Lt | Le | Gt | Ge => {
            let (Abs::Num(al, ah), Abs::Num(bl, bh)) = (a, b) else { return UNKNOWN };
            Abs::Bool(match op {
                Lt => {
                    if ah < bl {
                        Some(true)
                    } else if al >= bh {
                        Some(false)
                    } else {
                        None
                    }
                }
                Le => {
                    if ah <= bl {
                        Some(true)
                    } else if al > bh {
                        Some(false)
                    } else {
                        None
                    }
                }
                Gt => {
                    if al > bh {
                        Some(true)
                    } else if ah <= bl {
                        Some(false)
                    } else {
                        None
                    }
                }
                Ge => {
                    if al >= bh {
                        Some(true)
                    } else if ah < bl {
                        Some(false)
                    } else {
                        None
                    }
                }
                _ => unreachable!(),
            })
        }
        Add | Sub | Mul | Div | Min | Max => {
            let (Abs::Num(al, ah), Abs::Num(bl, bh)) = (a, b) else { return TOP_NUM };
            match op {
                Add => num(al + bl, ah + bh),
                Sub => num(al - bh, ah - bl),
                Mul => {
                    let p = [
                        mul_bound(al, bl),
                        mul_bound(al, bh),
                        mul_bound(ah, bl),
                        mul_bound(ah, bh),
                    ];
                    num(
                        p.iter().copied().fold(f64::INFINITY, f64::min),
                        p.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                    )
                }
                Div => {
                    if bl <= 0.0 && 0.0 <= bh {
                        TOP_NUM
                    } else {
                        let p = [al / bl, al / bh, ah / bl, ah / bh];
                        num(
                            p.iter().copied().fold(f64::INFINITY, f64::min),
                            p.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                        )
                    }
                }
                Min => num(al.min(bl), ah.min(bh)),
                Max => num(al.max(bl), ah.max(bh)),
                _ => unreachable!(),
            }
        }
    }
}

/// Interval-product bound with the convention `0 · ±∞ = 0` (the zero
/// endpoint is attainable, the infinity is a bound, so their product's
/// contribution is 0, not NaN).
fn mul_bound(a: f64, b: f64) -> f64 {
    if a == 0.0 || b == 0.0 {
        0.0
    } else {
        a * b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_automata::automaton::{ActionId, Effect};
    use slim_automata::network::{AutomatonBuilder, NetworkBuilder};

    fn codes(diags: &[Diagnostic]) -> Vec<Code> {
        diags.iter().map(|d| d.code).collect()
    }

    fn by_code(diags: &[Diagnostic], code: Code) -> Vec<&Diagnostic> {
        diags.iter().filter(|d| d.code == code).collect()
    }

    // ---- abstract evaluation ----

    #[test]
    fn abs_eval_decides_range_comparisons() {
        let ty = |_: VarId| VarType::Int { lo: 0, hi: 5 };
        let x = || Expr::var(VarId(0));
        assert_eq!(abs_eval(&x().ge(Expr::int(10)), &ty), Abs::Bool(Some(false)));
        assert_eq!(abs_eval(&x().le(Expr::int(5)), &ty), Abs::Bool(Some(true)));
        assert_eq!(abs_eval(&x().ge(Expr::int(3)), &ty), Abs::Bool(None));
        assert_eq!(abs_eval(&x().lt(Expr::int(0)), &ty), Abs::Bool(Some(false)));
        assert_eq!(abs_eval(&Expr::FALSE.and(x().ge(Expr::int(0))), &ty), Abs::Bool(Some(false)));
    }

    #[test]
    fn abs_eval_arithmetic_ranges() {
        let ty = |_: VarId| VarType::Int { lo: 1, hi: 3 };
        let x = || Expr::var(VarId(0));
        // x + x ∈ [2, 6]; x*x ∈ [1, 9]; -x ∈ [-3, -1].
        assert_eq!(abs_eval(&x().add(x()).gt(Expr::int(6)), &ty), Abs::Bool(Some(false)));
        assert_eq!(abs_eval(&x().mul(x()).le(Expr::int(9)), &ty), Abs::Bool(Some(true)));
        assert_eq!(abs_eval(&x().neg().ge(Expr::int(0)), &ty), Abs::Bool(Some(false)));
        // Division by a range containing zero is unknown.
        let zero_div = x().div(x().sub(Expr::int(2))).gt(Expr::int(100));
        assert_eq!(abs_eval(&zero_div, &ty), Abs::Bool(None));
        // min/max tighten.
        assert_eq!(abs_eval(&x().min(Expr::int(0)).le(Expr::int(0)), &ty), Abs::Bool(Some(true)));
    }

    #[test]
    fn abs_eval_unbounded_vars_stay_unknown() {
        let ty = |_: VarId| VarType::Clock;
        let x = || Expr::var(VarId(0));
        assert_eq!(abs_eval(&x().ge(Expr::real(1e12)), &ty), Abs::Bool(None));
        // ... but contradictory conjunctions over the same clock are not
        // detected (per-atom abstraction): document that as unknown.
        let e = x().lt(Expr::real(1.0)).and(x().gt(Expr::real(2.0)));
        assert_eq!(abs_eval(&e, &ty), Abs::Bool(None));
    }

    #[test]
    fn abs_eval_ite_joins_branches() {
        let ty = |v: VarId| if v.0 == 0 { VarType::Bool } else { VarType::Int { lo: 0, hi: 1 } };
        let e = Expr::ite(Expr::var(VarId(0)), Expr::int(2), Expr::int(5)).gt(Expr::int(1));
        assert_eq!(abs_eval(&e, &ty), Abs::Bool(Some(true)));
        let e = Expr::ite(Expr::var(VarId(0)), Expr::int(2), Expr::int(5)).gt(Expr::int(3));
        assert_eq!(abs_eval(&e, &ty), Abs::Bool(None));
    }

    // ---- passes over small networks ----

    /// One automaton: init -> mid (sync `go`, but nobody else offers
    /// `go`... actually a single participant CAN fire alone, so use a
    /// two-automaton network where the partner never reaches its `go`
    /// location).
    #[test]
    fn s100_sync_blocked_location_is_unreachable() {
        let mut b = NetworkBuilder::new();
        let go = b.action("go");
        let mut a1 = AutomatonBuilder::new("left");
        let l0 = a1.location("start");
        let l1 = a1.location("after_go");
        a1.guarded(l0, go, Expr::TRUE, [], l1);
        b.add_automaton(a1);
        let mut a2 = AutomatonBuilder::new("right");
        let _r0 = a2.location("idle");
        let r1 = a2.location("offers_go");
        let r2 = a2.location("done");
        a2.guarded(r1, go, Expr::TRUE, [], r2); // r1 itself unreachable
        b.add_automaton(a2);
        let net = b.build().unwrap();
        let diags = network_passes(&net);
        let unreachable = by_code(&diags, Code::UnreachableLocation);
        let msgs: Vec<&str> = unreachable.iter().map(|d| d.message.as_str()).collect();
        assert!(msgs.iter().any(|m| m.contains("`after_go`")), "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("`offers_go`")), "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("`done`")), "{msgs:?}");
        assert_eq!(unreachable.len(), 3, "{msgs:?}");
    }

    #[test]
    fn s100_sync_reachable_when_partner_arrives() {
        let mut b = NetworkBuilder::new();
        let go = b.action("go");
        let mut a1 = AutomatonBuilder::new("left");
        let l0 = a1.location("start");
        let l1 = a1.location("after_go");
        a1.guarded(l0, go, Expr::TRUE, [], l1);
        b.add_automaton(a1);
        let mut a2 = AutomatonBuilder::new("right");
        let r0 = a2.location("idle");
        let r1 = a2.location("offers_go");
        let r2 = a2.location("done");
        a2.guarded(r0, ActionId::TAU, Expr::TRUE, [], r1);
        a2.guarded(r1, go, Expr::TRUE, [], r2);
        b.add_automaton(a2);
        let net = b.build().unwrap();
        let diags = network_passes(&net);
        assert!(by_code(&diags, Code::UnreachableLocation).is_empty(), "{diags:?}");
    }

    #[test]
    fn s101_dead_guard_detected() {
        let mut b = NetworkBuilder::new();
        let n = b.var("n", VarType::Int { lo: 0, hi: 5 }, Value::Int(0));
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location("l0");
        let l1 = a.location("l1");
        a.guarded(l0, ActionId::TAU, Expr::var(n).ge(Expr::int(10)), [], l1);
        b.add_automaton(a);
        let net = b.build().unwrap();
        let diags = network_passes(&net);
        let dead = by_code(&diags, Code::UnsatisfiableGuard);
        assert_eq!(dead.len(), 1, "{diags:?}");
        assert!(dead[0].message.contains("can never be true"), "{}", dead[0].message);
        // The target is also unreachable (the dead guard is its only way in).
        assert!(!by_code(&diags, Code::UnreachableLocation).is_empty());
    }

    #[test]
    fn s102_entry_unsat_invariant_detected() {
        let mut b = NetworkBuilder::new();
        let x = b.var("x", VarType::Clock, Value::Real(5.0));
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location_with("l0", Expr::var(x).le(Expr::real(3.0)), []);
        let l1 = a.location("l1");
        a.guarded(l0, ActionId::TAU, Expr::TRUE, [], l1);
        b.add_automaton(a);
        let net = b.build().unwrap();
        let diags = network_passes(&net);
        assert_eq!(by_code(&diags, Code::EntryUnsatInvariant).len(), 1, "{diags:?}");
    }

    #[test]
    fn s103_and_s104_absorbing_vs_timelock() {
        let mut b = NetworkBuilder::new();
        let x = b.var("x", VarType::Clock, Value::Real(0.0));
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location("start");
        let sink = a.location("sink");
        let bounded = a.location_with("bounded", Expr::var(x).le(Expr::real(2.0)), []);
        a.guarded(l0, ActionId::TAU, Expr::TRUE, [], sink);
        a.guarded(l0, ActionId::TAU, Expr::TRUE, [], bounded);
        b.add_automaton(a);
        let net = b.build().unwrap();
        let diags = network_passes(&net);
        let absorbing = by_code(&diags, Code::AbsorbingLocation);
        let timelock = by_code(&diags, Code::InvariantWithoutEscape);
        assert_eq!(absorbing.len(), 1, "{diags:?}");
        assert!(absorbing[0].message.contains("`sink`"));
        assert_eq!(timelock.len(), 1, "{diags:?}");
        assert!(timelock[0].message.contains("`bounded`"));
    }

    #[test]
    fn s105_singleton_sync_flagged() {
        let mut b = NetworkBuilder::new();
        let ping = b.action("ping");
        let mut a = AutomatonBuilder::new("lonely");
        let l0 = a.location("l0");
        a.guarded(l0, ping, Expr::TRUE, [], l0);
        b.add_automaton(a);
        let net = b.build().unwrap();
        let diags = network_passes(&net);
        let sync = by_code(&diags, Code::UnmatchedSync);
        assert_eq!(sync.len(), 1, "{diags:?}");
        assert!(sync[0].message.contains("`ping`"));
    }

    #[test]
    fn s106_s107_unused_var_and_action() {
        let mut b = NetworkBuilder::new();
        let _ghost_action = b.action("ghost");
        let _ghost_var = b.var("ghost_var", VarType::Bool, Value::Bool(false));
        let used = b.var("used", VarType::Bool, Value::Bool(false));
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location("l0");
        a.guarded(l0, ActionId::TAU, Expr::TRUE, [Effect::assign(used, Expr::bool(true))], l0);
        b.add_automaton(a);
        let net = b.build().unwrap();
        let diags = network_passes(&net);
        let unused_v = by_code(&diags, Code::UnusedVariable);
        assert_eq!(unused_v.len(), 1, "{diags:?}");
        assert!(unused_v[0].message.contains("`ghost_var`"));
        let unused_a = by_code(&diags, Code::UnusedAction);
        assert_eq!(unused_a.len(), 1, "{diags:?}");
        assert!(unused_a[0].message.contains("`ghost`"));
    }

    #[test]
    fn write_only_flow_target_not_flagged_unused() {
        let mut b = NetworkBuilder::new();
        let src = b.var("src", VarType::INT, Value::Int(1));
        let out_port = b.var("out_port", VarType::INT, Value::Int(0));
        b.flow(out_port, Expr::var(src).add(Expr::int(1)));
        let mut a = AutomatonBuilder::new("p");
        a.location("l0");
        b.add_automaton(a);
        let net = b.build().unwrap();
        let diags = network_passes(&net);
        assert!(by_code(&diags, Code::UnusedVariable).is_empty(), "{diags:?}");
    }

    #[test]
    fn clean_single_automaton_produces_no_diagnostics() {
        let mut b = NetworkBuilder::new();
        let x = b.var("x", VarType::Clock, Value::Real(0.0));
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location_with("l0", Expr::var(x).le(Expr::real(5.0)), []);
        let l1 = a.location("l1");
        a.guarded(l0, ActionId::TAU, Expr::var(x).ge(Expr::real(1.0)), [], l1);
        a.guarded(l1, ActionId::TAU, Expr::TRUE, [Effect::assign(x, Expr::real(0.0))], l0);
        b.add_automaton(a);
        let net = b.build().unwrap();
        let diags = network_passes(&net);
        assert!(diags.is_empty(), "{:?}", codes(&diags));
    }
}
