//! Network-level static lint passes (`S1xx`/`S3xx`) over an instantiated,
//! well-formed [`Network`].
//!
//! The passes are backed by the abstract-interpretation fixpoint of
//! [`slim_analysis`]: location reachability, transition liveness and
//! variable ranges all come from one [`Fixpoint`], the same analysis the
//! simulator's pre-verdicts and the pruner consult. That makes the
//! verdicts strictly stronger than per-transition type-range checks
//! (constant propagation, guard refinement and sync-closure feed into
//! every answer) and keeps each structural fact reported exactly once: a
//! dead guard is an S101, and the location it strands is *not* repeated
//! as an S100 unless something else also makes it unreachable.
//!
//! A reported lint is a definite structural fact about the network; the
//! *interpretation* (deadlock, timelock) is a possibility, which is why
//! those lints default to notes.
//!
//! **Precondition:** the network passed [`slim_automata::validate`]
//! well-formedness (all indices in range, guards Boolean). Call
//! [`crate::lint_network`] rather than [`network_passes`] directly to get
//! that gating for free.

use crate::diagnostic::Diagnostic;
use crate::registry::Code;
use slim_analysis::{analyze_network, AbsVal, Fixpoint, TransStatus};
use slim_automata::automaton::{GuardKind, LocId, ProcId, TransId};
use slim_automata::expr::{BinOp, Expr, VarId};
use slim_automata::linear::{solve, DelayEnv};
use slim_automata::network::Network;

/// Runs every network-level pass, returning diagnostics at their codes'
/// default severities (apply a [`crate::LintConfig`] afterwards).
pub fn network_passes(net: &Network) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let fix = analyze_network(net);
    unreachable_locations(net, &fix, &mut out);
    unsatisfiable_guards(net, &fix, &mut out);
    entry_invariants(net, &mut out);
    absorbing_and_timelock(net, &fix, &mut out);
    sync_mismatches(net, &mut out);
    unused_variables(net, &mut out);
    unused_actions(net, &mut out);
    out_of_range_effects(net, &fix, &mut out);
    constant_guard_comparisons(net, &fix, &mut out);
    zone_dead_guards(net, &fix, &mut out);
    static_timelocks(net, &fix, &mut out);
    out
}

/// S100: locations the fixpoint proves unreachable in every concrete run.
///
/// A location whose every incoming transition is itself reported as an
/// unsatisfiable guard (S101) is *not* repeated here: the S101 already
/// pinpoints the root cause and the S100 would restate it. Cascaded
/// unreachability — incoming edges from other unreachable locations,
/// sync-blocked edges, or no incoming edge at all — is still reported.
fn unreachable_locations(net: &Network, fix: &Fixpoint, out: &mut Vec<Diagnostic>) {
    for (p, a) in net.automata().iter().enumerate() {
        for (l, loc) in a.locations.iter().enumerate() {
            if fix.loc_reachable(ProcId(p), LocId(l)) {
                continue;
            }
            let mut incoming = a.transitions.iter().enumerate().filter(|(_, t)| t.to.0 == l);
            let explained_by_s101 = incoming.clone().next().is_some()
                && incoming.all(|(t, _)| {
                    fix.trans_status(ProcId(p), TransId(t)) == TransStatus::DeadGuard
                });
            if explained_by_s101 {
                continue;
            }
            out.push(
                Diagnostic::new(
                    Code::UnreachableLocation,
                    format!("location `{}` of automaton `{}` is unreachable", loc.name, a.name),
                )
                .with_help(
                    "no sequence of internal, Markovian, or synchronizable \
                     transitions can reach it from the initial location",
                ),
            );
        }
    }
}

/// S101: transitions whose Boolean guard is unsatisfiable in every
/// valuation the fixpoint admits at their (reachable) source location.
/// Guards on transitions from unreachable sources are not reported — the
/// guard is never evaluated there, and the source's own diagnostic
/// already covers the dead code. Guards dead only under the clock-zone
/// domain are S302's to report, keeping the two codes disjoint.
fn unsatisfiable_guards(net: &Network, fix: &Fixpoint, out: &mut Vec<Diagnostic>) {
    for (p, a) in net.automata().iter().enumerate() {
        for (t, trans) in a.transitions.iter().enumerate() {
            if fix.trans_status(ProcId(p), TransId(t)) != TransStatus::DeadGuard
                || fix.zone_dead_guard(ProcId(p), TransId(t))
            {
                continue;
            }
            let GuardKind::Boolean(g) = &trans.guard else { continue };
            let from = &a.locations[trans.from.0].name;
            let to = &a.locations[trans.to.0].name;
            out.push(
                Diagnostic::new(
                    Code::UnsatisfiableGuard,
                    format!(
                        "guard `{}` on transition `{from}` -> `{to}` of `{}` can never be true",
                        net.render_expr(g),
                        a.name
                    ),
                )
                .with_help(
                    "the guard is unsatisfiable for every valuation the analysis \
                     admits at the source location; the transition is dead",
                ),
            );
        }
    }
}

/// S102: initial-location invariants that do not hold on entry, checked
/// with the linear delay solver at the initial state (delay 0 must lie in
/// the satisfying set).
fn entry_invariants(net: &Network, out: &mut Vec<Diagnostic>) {
    let Ok(init) = net.initial_state() else { return };
    let rates = net.active_rates(&init);
    let rate = |v: VarId| rates[v.0];
    let env = DelayEnv::new(&init.nu, &rate);
    for a in net.automata() {
        let loc = &a.locations[a.init.0];
        if loc.invariant.is_const_true() {
            continue;
        }
        // Non-linear invariants are out of the solver's fragment; skip.
        let Ok(sat) = solve(&loc.invariant, &env) else { continue };
        if !sat.contains(0.0) {
            out.push(
                Diagnostic::new(
                    Code::EntryUnsatInvariant,
                    format!(
                        "invariant `{}` of initial location `{}` of `{}` does not hold on entry",
                        net.render_expr(&loc.invariant),
                        loc.name,
                        a.name
                    ),
                )
                .with_help(
                    "the initial valuation violates the invariant; every run \
                     fails immediately at time 0",
                ),
            );
        }
    }
}

/// S103/S104: reachable locations with no outgoing transition at all.
/// With a time-bounded invariant that is a potential timelock (S104:
/// time cannot pass beyond the bound and there is no escape); otherwise a
/// potential deadlock (S103, often an intentional failure sink).
fn absorbing_and_timelock(net: &Network, fix: &Fixpoint, out: &mut Vec<Diagnostic>) {
    for (p, a) in net.automata().iter().enumerate() {
        for (l, loc) in a.locations.iter().enumerate() {
            if !fix.loc_reachable(ProcId(p), LocId(l))
                || a.transitions.iter().any(|t| t.from.0 == l)
            {
                continue;
            }
            let time_bounded = !loc.invariant.is_const_true()
                && loc.invariant.reads_any_var(&|v| net.ty_of(v).is_timed());
            if time_bounded {
                out.push(
                    Diagnostic::new(
                        Code::InvariantWithoutEscape,
                        format!(
                            "location `{}` of `{}` has time-bounded invariant `{}` but no \
                             escaping transition (potential timelock)",
                            loc.name,
                            a.name,
                            net.render_expr(&loc.invariant)
                        ),
                    )
                    .with_help(
                        "once the invariant's time bound is hit, neither delaying nor \
                         firing a transition is possible",
                    ),
                );
            } else {
                out.push(
                    Diagnostic::new(
                        Code::AbsorbingLocation,
                        format!(
                            "location `{}` of `{}` has no outgoing transition \
                             (absorbing; potential deadlock)",
                            loc.name, a.name
                        ),
                    )
                    .with_help(
                        "harmless for intentional sinks (goal/failure states); \
                         otherwise add an exit",
                    ),
                );
            }
        }
    }
}

/// S105: synchronizing actions with exactly one participant. Such an
/// event degenerates to an internal step — usually a connection that was
/// meant to have a peer on the other side.
fn sync_mismatches(net: &Network, out: &mut Vec<Diagnostic>) {
    for (i, decl) in net.actions().iter().enumerate().skip(1) {
        let parts = net.participants(slim_automata::automaton::ActionId(i));
        if parts.len() == 1 {
            let only = &net.automata()[parts[0].0].name;
            out.push(
                Diagnostic::new(
                    Code::UnmatchedSync,
                    format!(
                        "event `{}` is used only by `{only}`; it synchronizes with no \
                         other component",
                        decl.name
                    ),
                )
                .with_help(
                    "an event with a single participant behaves like an internal \
                     action; connect a receiver or drop the event",
                ),
            );
        }
    }
}

/// S106: variables that appear nowhere after lowering — not in a guard,
/// invariant, effect (either side), flow (either side), or rate.
fn unused_variables(net: &Network, out: &mut Vec<Diagnostic>) {
    let mut used = vec![false; net.vars().len()];
    let mark_expr = |e: &Expr, used: &mut Vec<bool>| {
        for v in e.vars() {
            used[v.0] = true;
        }
    };
    for a in net.automata() {
        for loc in &a.locations {
            mark_expr(&loc.invariant, &mut used);
            for &(v, _) in &loc.rates {
                used[v.0] = true;
            }
        }
        for t in &a.transitions {
            if let GuardKind::Boolean(g) = &t.guard {
                mark_expr(g, &mut used);
            }
            for eff in &t.effects {
                used[eff.var.0] = true;
                mark_expr(&eff.expr, &mut used);
            }
        }
    }
    for f in net.flows() {
        used[f.target.0] = true;
        mark_expr(&f.expr, &mut used);
    }
    for (i, decl) in net.vars().iter().enumerate() {
        if !used[i] {
            out.push(
                Diagnostic::new(
                    Code::UnusedVariable,
                    format!("variable `{}` is never used", decl.name),
                )
                .with_help(
                    "it appears in no guard, invariant, effect, flow, or rate; \
                     remove the declaration",
                ),
            );
        }
    }
}

/// S107: declared events that label no transition in any automaton.
fn unused_actions(net: &Network, out: &mut Vec<Diagnostic>) {
    let mut used = vec![false; net.actions().len()];
    for a in net.automata() {
        for t in &a.transitions {
            used[t.action.0] = true;
        }
    }
    for (i, decl) in net.actions().iter().enumerate().skip(1) {
        if !used[i] {
            out.push(
                Diagnostic::new(
                    Code::UnusedAction,
                    format!("event `{}` is declared but never used on any transition", decl.name),
                )
                .with_help("remove the declaration or add the missing transition"),
            );
        }
    }
}

/// S300: effects on live transitions that provably assign outside their
/// target's declared range — every firing of the transition aborts the
/// run with a range error at exactly that assignment.
fn out_of_range_effects(net: &Network, fix: &Fixpoint, out: &mut Vec<Diagnostic>) {
    for &(p, t, i) in fix.doomed_effects() {
        let a = &net.automata()[p.0];
        let trans = &a.transitions[t.0];
        let eff = &trans.effects[i];
        let var = &net.vars()[eff.var.0].name;
        let from = &a.locations[trans.from.0].name;
        let to = &a.locations[trans.to.0].name;
        out.push(
            Diagnostic::new(
                Code::EffectOutOfRange,
                format!(
                    "effect `{var} := {}` on transition `{from}` -> `{to}` of `{}` provably \
                     assigns outside the declared range of `{var}`",
                    net.render_expr(&eff.expr),
                    a.name
                ),
            )
            .with_help(
                "every firing aborts the run with a range error; widen the \
                 variable's type or fix the expression",
            ),
        );
    }
}

/// S301: comparisons inside live guards that read a variable the fixpoint
/// proves constant over all reachable states. The comparison contributes
/// nothing at runtime — often a sign the variable was meant to be updated
/// somewhere. Dead guards are excluded (they are S101's to report).
fn constant_guard_comparisons(net: &Network, fix: &Fixpoint, out: &mut Vec<Diagnostic>) {
    for (p, a) in net.automata().iter().enumerate() {
        for (t, trans) in a.transitions.iter().enumerate() {
            if fix.trans_status(ProcId(p), TransId(t)) != TransStatus::Live {
                continue;
            }
            let GuardKind::Boolean(g) = &trans.guard else { continue };
            let mut vars = Vec::new();
            constant_comparison_vars(g, net, fix, &mut vars);
            for v in vars {
                let AbsVal::Num(c, _) = fix.global(v) else { continue };
                let from = &a.locations[trans.from.0].name;
                let to = &a.locations[trans.to.0].name;
                out.push(
                    Diagnostic::new(
                        Code::ConstantGuardComparison,
                        format!(
                            "guard `{}` of transition `{from}` -> `{to}` of `{}` compares \
                             `{}`, which provably always equals {c}",
                            net.render_expr(g),
                            a.name,
                            net.vars()[v.0].name
                        ),
                    )
                    .with_help(
                        "the comparison is decided before the model runs; simplify the \
                         guard, or check whether the variable should be updated",
                    ),
                );
            }
        }
    }
}

/// Collects variables read by comparison atoms of `e` whose global
/// abstract value is a single number. Timed variables never qualify (the
/// store pins them to ⊤ because their values drift with time), and each
/// variable is reported once per guard, in first-read order.
fn constant_comparison_vars(e: &Expr, net: &Network, fix: &Fixpoint, out: &mut Vec<VarId>) {
    use BinOp::*;
    match e {
        Expr::Bin(Lt | Le | Gt | Ge | Eq | Ne, a, b) => {
            for side in [a, b] {
                for v in side.vars() {
                    if !net.ty_of(v).is_timed() && fix.global(v).is_singleton() && !out.contains(&v)
                    {
                        out.push(v);
                    }
                }
            }
        }
        Expr::Bin(_, a, b) => {
            constant_comparison_vars(a, net, fix, out);
            constant_comparison_vars(b, net, fix, out);
        }
        Expr::Not(x) | Expr::Neg(x) => constant_comparison_vars(x, net, fix, out),
        Expr::Ite(c, t, els) => {
            constant_comparison_vars(c, net, fix, out);
            constant_comparison_vars(t, net, fix, out);
            constant_comparison_vars(els, net, fix, out);
        }
        Expr::Const(_) | Expr::Var(_) => {}
    }
}

/// S302: transitions whose guard is satisfiable for the interval domain
/// but unsatisfiable given the clock zones at their source — the timed
/// counterpart of S101. Transitions out of a location already reported
/// as a static timelock (S303) are skipped: the timelock diagnostic
/// covers every exit at once.
fn zone_dead_guards(net: &Network, fix: &Fixpoint, out: &mut Vec<Diagnostic>) {
    for (p, a) in net.automata().iter().enumerate() {
        for (t, trans) in a.transitions.iter().enumerate() {
            if !fix.zone_dead_guard(ProcId(p), TransId(t)) {
                continue;
            }
            if fix.static_timelocks().contains(&(ProcId(p), trans.from)) {
                continue;
            }
            let GuardKind::Boolean(g) = &trans.guard else { continue };
            let from = &a.locations[trans.from.0].name;
            let to = &a.locations[trans.to.0].name;
            out.push(
                Diagnostic::new(
                    Code::ZoneDeadGuard,
                    format!(
                        "guard `{}` on transition `{from}` -> `{to}` of `{}` is \
                         unsatisfiable given the clock zones",
                        net.render_expr(g),
                        a.name
                    ),
                )
                .with_help(
                    "interval reasoning alone admits the guard, but the clock-zone \
                     analysis proves the clocks can never satisfy it when the \
                     source location is occupied; the transition is dead",
                ),
            );
        }
    }
}

/// S303: reachable locations whose invariant's time window closes before
/// any outgoing guard can become true — the run is stuck with time
/// forbidden to pass, a timelock the untimed pass cannot see.
fn static_timelocks(net: &Network, fix: &Fixpoint, out: &mut Vec<Diagnostic>) {
    for &(p, l) in fix.static_timelocks() {
        let a = &net.automata()[p.0];
        let loc = &a.locations[l.0];
        out.push(
            Diagnostic::new(
                Code::StaticTimelock,
                format!(
                    "location `{}` of automaton `{}` is a static timelock: its \
                     invariant expires before any outgoing guard can fire",
                    loc.name, a.name
                ),
            )
            .with_help(
                "every exit guard is unsatisfiable within the invariant's time \
                 window, so once entered the location can neither be left nor \
                 let time pass beyond the invariant bound",
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_automata::automaton::{ActionId, Effect};
    use slim_automata::network::{AutomatonBuilder, NetworkBuilder};
    use slim_automata::value::{Value, VarType};

    fn codes(diags: &[Diagnostic]) -> Vec<Code> {
        diags.iter().map(|d| d.code).collect()
    }

    fn by_code(diags: &[Diagnostic], code: Code) -> Vec<&Diagnostic> {
        diags.iter().filter(|d| d.code == code).collect()
    }

    // ---- passes over small networks ----

    /// One automaton: init -> mid (sync `go`, but nobody else offers
    /// `go`... actually a single participant CAN fire alone, so use a
    /// two-automaton network where the partner never reaches its `go`
    /// location).
    #[test]
    fn s100_sync_blocked_location_is_unreachable() {
        let mut b = NetworkBuilder::new();
        let go = b.action("go");
        let mut a1 = AutomatonBuilder::new("left");
        let l0 = a1.location("start");
        let l1 = a1.location("after_go");
        a1.guarded(l0, go, Expr::TRUE, [], l1);
        b.add_automaton(a1);
        let mut a2 = AutomatonBuilder::new("right");
        let _r0 = a2.location("idle");
        let r1 = a2.location("offers_go");
        let r2 = a2.location("done");
        a2.guarded(r1, go, Expr::TRUE, [], r2); // r1 itself unreachable
        b.add_automaton(a2);
        let net = b.build().unwrap();
        let diags = network_passes(&net);
        let unreachable = by_code(&diags, Code::UnreachableLocation);
        let msgs: Vec<&str> = unreachable.iter().map(|d| d.message.as_str()).collect();
        assert!(msgs.iter().any(|m| m.contains("`after_go`")), "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("`offers_go`")), "{msgs:?}");
        assert!(msgs.iter().any(|m| m.contains("`done`")), "{msgs:?}");
        assert_eq!(unreachable.len(), 3, "{msgs:?}");
        // Sync-blocked and dead-source transitions are not dead *guards*.
        assert!(by_code(&diags, Code::UnsatisfiableGuard).is_empty(), "{diags:?}");
    }

    #[test]
    fn s100_sync_reachable_when_partner_arrives() {
        let mut b = NetworkBuilder::new();
        let go = b.action("go");
        let mut a1 = AutomatonBuilder::new("left");
        let l0 = a1.location("start");
        let l1 = a1.location("after_go");
        a1.guarded(l0, go, Expr::TRUE, [], l1);
        b.add_automaton(a1);
        let mut a2 = AutomatonBuilder::new("right");
        let r0 = a2.location("idle");
        let r1 = a2.location("offers_go");
        let r2 = a2.location("done");
        a2.guarded(r0, ActionId::TAU, Expr::TRUE, [], r1);
        a2.guarded(r1, go, Expr::TRUE, [], r2);
        b.add_automaton(a2);
        let net = b.build().unwrap();
        let diags = network_passes(&net);
        assert!(by_code(&diags, Code::UnreachableLocation).is_empty(), "{diags:?}");
    }

    #[test]
    fn s101_dead_guard_detected_without_duplicate_s100() {
        let mut b = NetworkBuilder::new();
        let n = b.var("n", VarType::Int { lo: 0, hi: 5 }, Value::Int(0));
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location("l0");
        let l1 = a.location("l1");
        a.guarded(l0, ActionId::TAU, Expr::var(n).ge(Expr::int(10)), [], l1);
        b.add_automaton(a);
        let net = b.build().unwrap();
        let diags = network_passes(&net);
        let dead = by_code(&diags, Code::UnsatisfiableGuard);
        assert_eq!(dead.len(), 1, "{diags:?}");
        assert!(dead[0].message.contains("can never be true"), "{}", dead[0].message);
        // `l1` is stranded *solely* by the reported dead guard: the S101
        // is the root cause, so no S100 restates it.
        assert!(by_code(&diags, Code::UnreachableLocation).is_empty(), "{diags:?}");
    }

    #[test]
    fn s101_fixpoint_beats_type_ranges() {
        // n ∈ int[0..5] admits n ≥ 3, but n is never written, so the
        // fixpoint's constant propagation knows n = 0 everywhere. A
        // per-guard type-range check could not decide this guard.
        let mut b = NetworkBuilder::new();
        let n = b.var("n", VarType::Int { lo: 0, hi: 5 }, Value::Int(0));
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location("l0");
        let l1 = a.location("l1");
        a.guarded(l0, ActionId::TAU, Expr::var(n).ge(Expr::int(3)), [], l1);
        b.add_automaton(a);
        let net = b.build().unwrap();
        let diags = network_passes(&net);
        assert_eq!(by_code(&diags, Code::UnsatisfiableGuard).len(), 1, "{diags:?}");
    }

    #[test]
    fn s100_cascade_past_dead_guard_is_still_reported() {
        // l0 -[dead]-> l1 -TRUE-> l2: the dead guard is S101 and explains
        // l1 (suppressed), but l2 is stranded by a dead-*source* edge and
        // is still reported.
        let mut b = NetworkBuilder::new();
        let n = b.var("n", VarType::Int { lo: 0, hi: 5 }, Value::Int(0));
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location("l0");
        let l1 = a.location("l1");
        let l2 = a.location("l2");
        a.guarded(l0, ActionId::TAU, Expr::var(n).ge(Expr::int(10)), [], l1);
        a.guarded(l1, ActionId::TAU, Expr::TRUE, [], l2);
        b.add_automaton(a);
        let net = b.build().unwrap();
        let diags = network_passes(&net);
        assert_eq!(by_code(&diags, Code::UnsatisfiableGuard).len(), 1, "{diags:?}");
        let unreachable = by_code(&diags, Code::UnreachableLocation);
        assert_eq!(unreachable.len(), 1, "{diags:?}");
        assert!(unreachable[0].message.contains("`l2`"), "{}", unreachable[0].message);
    }

    #[test]
    fn s102_entry_unsat_invariant_detected() {
        let mut b = NetworkBuilder::new();
        let x = b.var("x", VarType::Clock, Value::Real(5.0));
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location_with("l0", Expr::var(x).le(Expr::real(3.0)), []);
        let l1 = a.location("l1");
        a.guarded(l0, ActionId::TAU, Expr::TRUE, [], l1);
        b.add_automaton(a);
        let net = b.build().unwrap();
        let diags = network_passes(&net);
        assert_eq!(by_code(&diags, Code::EntryUnsatInvariant).len(), 1, "{diags:?}");
    }

    #[test]
    fn s103_and_s104_absorbing_vs_timelock() {
        let mut b = NetworkBuilder::new();
        let x = b.var("x", VarType::Clock, Value::Real(0.0));
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location("start");
        let sink = a.location("sink");
        let bounded = a.location_with("bounded", Expr::var(x).le(Expr::real(2.0)), []);
        a.guarded(l0, ActionId::TAU, Expr::TRUE, [], sink);
        a.guarded(l0, ActionId::TAU, Expr::TRUE, [], bounded);
        b.add_automaton(a);
        let net = b.build().unwrap();
        let diags = network_passes(&net);
        let absorbing = by_code(&diags, Code::AbsorbingLocation);
        let timelock = by_code(&diags, Code::InvariantWithoutEscape);
        assert_eq!(absorbing.len(), 1, "{diags:?}");
        assert!(absorbing[0].message.contains("`sink`"));
        assert_eq!(timelock.len(), 1, "{diags:?}");
        assert!(timelock[0].message.contains("`bounded`"));
    }

    #[test]
    fn s105_singleton_sync_flagged() {
        let mut b = NetworkBuilder::new();
        let ping = b.action("ping");
        let mut a = AutomatonBuilder::new("lonely");
        let l0 = a.location("l0");
        a.guarded(l0, ping, Expr::TRUE, [], l0);
        b.add_automaton(a);
        let net = b.build().unwrap();
        let diags = network_passes(&net);
        let sync = by_code(&diags, Code::UnmatchedSync);
        assert_eq!(sync.len(), 1, "{diags:?}");
        assert!(sync[0].message.contains("`ping`"));
    }

    #[test]
    fn s106_s107_unused_var_and_action() {
        let mut b = NetworkBuilder::new();
        let _ghost_action = b.action("ghost");
        let _ghost_var = b.var("ghost_var", VarType::Bool, Value::Bool(false));
        let used = b.var("used", VarType::Bool, Value::Bool(false));
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location("l0");
        a.guarded(l0, ActionId::TAU, Expr::TRUE, [Effect::assign(used, Expr::bool(true))], l0);
        b.add_automaton(a);
        let net = b.build().unwrap();
        let diags = network_passes(&net);
        let unused_v = by_code(&diags, Code::UnusedVariable);
        assert_eq!(unused_v.len(), 1, "{diags:?}");
        assert!(unused_v[0].message.contains("`ghost_var`"));
        let unused_a = by_code(&diags, Code::UnusedAction);
        assert_eq!(unused_a.len(), 1, "{diags:?}");
        assert!(unused_a[0].message.contains("`ghost`"));
    }

    #[test]
    fn write_only_flow_target_not_flagged_unused() {
        let mut b = NetworkBuilder::new();
        let src = b.var("src", VarType::INT, Value::Int(1));
        let out_port = b.var("out_port", VarType::INT, Value::Int(0));
        b.flow(out_port, Expr::var(src).add(Expr::int(1)));
        let mut a = AutomatonBuilder::new("p");
        a.location("l0");
        b.add_automaton(a);
        let net = b.build().unwrap();
        let diags = network_passes(&net);
        assert!(by_code(&diags, Code::UnusedVariable).is_empty(), "{diags:?}");
    }

    #[test]
    fn s300_out_of_range_effect_flagged() {
        let mut b = NetworkBuilder::new();
        let n = b.var("n", VarType::Int { lo: 0, hi: 5 }, Value::Int(0));
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location("l0");
        let l1 = a.location("l1");
        a.guarded(l0, ActionId::TAU, Expr::TRUE, [Effect::assign(n, Expr::int(7))], l1);
        b.add_automaton(a);
        let net = b.build().unwrap();
        let diags = network_passes(&net);
        let doomed = by_code(&diags, Code::EffectOutOfRange);
        assert_eq!(doomed.len(), 1, "{diags:?}");
        assert!(doomed[0].message.contains("`n := 7`"), "{}", doomed[0].message);
        assert!(doomed[0].message.contains("declared range"), "{}", doomed[0].message);
    }

    #[test]
    fn s301_constant_guard_comparison_flagged() {
        // `lo` is never written, so `lo <= 3` is decided before the model
        // runs; `m` does get written, so `m >= 1` is a real comparison.
        let mut b = NetworkBuilder::new();
        let lo = b.var("lo", VarType::Int { lo: 0, hi: 9 }, Value::Int(2));
        let m = b.var("m", VarType::Int { lo: 0, hi: 9 }, Value::Int(0));
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location("l0");
        let l1 = a.location("l1");
        a.guarded(l0, ActionId::TAU, Expr::TRUE, [Effect::assign(m, Expr::int(4))], l1);
        a.guarded(
            l1,
            ActionId::TAU,
            Expr::var(lo).le(Expr::int(3)).and(Expr::var(m).ge(Expr::int(1))),
            [],
            l0,
        );
        b.add_automaton(a);
        let net = b.build().unwrap();
        let diags = network_passes(&net);
        let constant = by_code(&diags, Code::ConstantGuardComparison);
        assert_eq!(constant.len(), 1, "{diags:?}");
        assert!(constant[0].message.contains("`lo`"), "{}", constant[0].message);
        assert!(constant[0].message.contains("always equals 2"), "{}", constant[0].message);
    }

    #[test]
    fn s301_skips_dead_guards_and_clocks() {
        let mut b = NetworkBuilder::new();
        let n = b.var("n", VarType::Int { lo: 0, hi: 5 }, Value::Int(0));
        let x = b.var("x", VarType::Clock, Value::Real(0.0));
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location("l0");
        let l1 = a.location("l1");
        // Dead guard reading the constant `n`: S101's to report, not S301's.
        a.guarded(l0, ActionId::TAU, Expr::var(n).ge(Expr::int(3)), [], l1);
        // Clock comparison: clocks drift, never constant.
        a.guarded(l0, ActionId::TAU, Expr::var(x).ge(Expr::real(1.0)), [], l1);
        b.add_automaton(a);
        let net = b.build().unwrap();
        let diags = network_passes(&net);
        assert_eq!(by_code(&diags, Code::UnsatisfiableGuard).len(), 1, "{diags:?}");
        assert!(by_code(&diags, Code::ConstantGuardComparison).is_empty(), "{diags:?}");
    }

    #[test]
    fn clean_single_automaton_produces_no_diagnostics() {
        let mut b = NetworkBuilder::new();
        let x = b.var("x", VarType::Clock, Value::Real(0.0));
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location_with("l0", Expr::var(x).le(Expr::real(5.0)), []);
        let l1 = a.location("l1");
        a.guarded(l0, ActionId::TAU, Expr::var(x).ge(Expr::real(1.0)), [], l1);
        a.guarded(l1, ActionId::TAU, Expr::TRUE, [Effect::assign(x, Expr::real(0.0))], l0);
        b.add_automaton(a);
        let net = b.build().unwrap();
        let diags = network_passes(&net);
        assert!(diags.is_empty(), "{:?}", codes(&diags));
    }

    #[test]
    fn zone_dead_guard_is_s302_not_s101() {
        // x is never reset, so after the x ≥ 5 hop the x ≤ 2 guard can
        // never be true — invisible to intervals (clocks are ⊤ there).
        let mut b = NetworkBuilder::new();
        let x = b.var("x", VarType::Clock, Value::Real(0.0));
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location("l0");
        let l1 = a.location("l1");
        let l2 = a.location("l2");
        a.guarded(l0, ActionId::TAU, Expr::var(x).ge(Expr::real(5.0)), [], l1);
        a.guarded(l1, ActionId::TAU, Expr::var(x).le(Expr::real(2.0)), [], l2);
        b.add_automaton(a);
        let net = b.build().unwrap();
        let diags = network_passes(&net);
        let s302 = by_code(&diags, Code::ZoneDeadGuard);
        assert_eq!(s302.len(), 1, "{diags:?}");
        assert!(s302[0].message.contains("`l1` -> `l2`"), "{:?}", s302[0].message);
        assert!(by_code(&diags, Code::UnsatisfiableGuard).is_empty(), "{diags:?}");
        assert!(by_code(&diags, Code::StaticTimelock).is_empty(), "{diags:?}");
    }

    #[test]
    fn static_timelock_is_s303_and_suppresses_its_s302s() {
        // Invariant x ≤ 2 but the only exit needs x ≥ 5: time runs out
        // before the guard can fire. The per-exit S302 is folded into the
        // location-level S303.
        let mut b = NetworkBuilder::new();
        let x = b.var("x", VarType::Clock, Value::Real(0.0));
        let mut a = AutomatonBuilder::new("p");
        let l0 = a.location_with("stuck", Expr::var(x).le(Expr::real(2.0)), []);
        let l1 = a.location("out");
        a.guarded(l0, ActionId::TAU, Expr::var(x).ge(Expr::real(5.0)), [], l1);
        b.add_automaton(a);
        let net = b.build().unwrap();
        let diags = network_passes(&net);
        let s303 = by_code(&diags, Code::StaticTimelock);
        assert_eq!(s303.len(), 1, "{diags:?}");
        assert!(s303[0].message.contains("`stuck`"), "{:?}", s303[0].message);
        assert!(by_code(&diags, Code::ZoneDeadGuard).is_empty(), "{diags:?}");
        assert!(by_code(&diags, Code::UnsatisfiableGuard).is_empty(), "{diags:?}");
    }
}
