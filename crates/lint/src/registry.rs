//! The lint registry: the table of stable lint codes with their default
//! levels, and [`LintConfig`] for per-lint allow/warn/deny overrides.

use crate::diagnostic::{Diagnostic, Severity};
use std::collections::HashMap;
use std::fmt;

/// Reporting level of a lint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Suppress the lint entirely.
    Allow,
    /// Report as an informational note.
    Note,
    /// Report as a warning.
    Warn,
    /// Report as an error (nonzero exit from the CLI).
    Deny,
}

impl Level {
    /// Parses a level name (`allow`, `note`, `warn`, `deny`).
    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "allow" => Some(Level::Allow),
            "note" => Some(Level::Note),
            "warn" => Some(Level::Warn),
            "deny" => Some(Level::Deny),
            _ => None,
        }
    }

    /// Lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Allow => "allow",
            Level::Note => "note",
            Level::Warn => "warn",
            Level::Deny => "deny",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

macro_rules! lints {
    ($($variant:ident => $code:literal, $name:literal, $level:ident, $desc:literal;)+) => {
        /// A stable lint code.
        ///
        /// * `S0xx` — front-end lints over the parsed SLIM model;
        /// * `S1xx` — static passes over the instantiated network;
        /// * `S2xx` — network well-formedness rules (from
        ///   [`slim_automata::validate::validate_all`]);
        /// * `S3xx` — semantic lints backed by the `slim-analysis`
        ///   abstract-interpretation fixpoint.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum Code {
            $(#[doc = $desc] $variant,)+
        }

        impl Code {
            /// Every registered lint, in code order.
            pub const ALL: &'static [Code] = &[$(Code::$variant,)+];

            /// The stable code string, e.g. `"S100"`.
            pub fn as_str(self) -> &'static str {
                match self {
                    $(Code::$variant => $code,)+
                }
            }

            /// The kebab-case lint name, e.g. `"unreachable-location"`.
            pub fn name(self) -> &'static str {
                match self {
                    $(Code::$variant => $name,)+
                }
            }

            /// The default reporting level.
            pub fn default_level(self) -> Level {
                match self {
                    $(Code::$variant => Level::$level,)+
                }
            }

            /// One-line description of what the lint detects.
            pub fn description(self) -> &'static str {
                match self {
                    $(Code::$variant => $desc,)+
                }
            }

            /// Looks a lint up by its code string (`"S100"`) or its
            /// kebab-case name (`"unreachable-location"`).
            pub fn parse(s: &str) -> Option<Code> {
                Code::ALL.iter().copied().find(|c| c.as_str() == s || c.name() == s)
            }
        }
    };
}

lints! {
    // ---- S0xx: front-end lints over the parsed SLIM model ----
    DuplicateDeclaration =>
        "S001", "duplicate-declaration", Deny,
        "a component type, implementation or error model is declared twice";
    ImplWithoutType =>
        "S002", "impl-without-type", Deny,
        "a component implementation has no matching component type";
    TypeWithoutImpl =>
        "S003", "type-without-impl", Warn,
        "a component type has no implementation";
    SubcomponentShadowsFeature =>
        "S004", "subcomponent-shadows-feature", Deny,
        "a subcomponent name shadows a feature of the component type";
    UnknownImplReference =>
        "S005", "unknown-impl-reference", Deny,
        "a subcomponent references an implementation that does not exist";
    InitialModeCount =>
        "S006", "initial-mode-count", Deny,
        "an implementation with modes does not have exactly one initial mode";
    TransitionsWithoutModes =>
        "S007", "transitions-without-modes", Deny,
        "an implementation declares transitions but no modes";
    UnknownMode =>
        "S008", "unknown-mode", Deny,
        "a mode transition references a mode that does not exist";
    NonPositiveRate =>
        "S009", "non-positive-rate", Deny,
        "a rate trigger has a non-positive rate";
    UnreachableMode =>
        "S010", "unreachable-mode", Warn,
        "a non-initial mode is targeted by no transition";
    ErrorModelInitialStates =>
        "S011", "error-model-initial-states", Deny,
        "an error model does not have exactly one initial state";
    UnknownErrorState =>
        "S012", "unknown-error-state", Deny,
        "an error-model transition references a state that does not exist";
    UnreachableErrorState =>
        "S013", "unreachable-error-state", Warn,
        "a non-initial error state is targeted by no transition";
    UnknownErrorModel =>
        "S014", "unknown-error-model", Deny,
        "a fault injection references an error model that does not exist";
    UnknownInjectionState =>
        "S015", "unknown-injection-state", Deny,
        "a fault-injection effect references a state the error model lacks";
    UnusedErrorModel =>
        "S016", "unused-error-model", Warn,
        "an error model is never bound by a fault injection";

    // ---- S1xx: static passes over the instantiated network ----
    UnreachableLocation =>
        "S100", "unreachable-location", Warn,
        "a location is unreachable through transitions and sync vectors";
    UnsatisfiableGuard =>
        "S101", "unsatisfiable-guard", Warn,
        "a transition guard can never be true for any variable valuation";
    EntryUnsatInvariant =>
        "S102", "entry-unsat-invariant", Warn,
        "an initial location's invariant does not hold on entry";
    AbsorbingLocation =>
        "S103", "absorbing-location", Note,
        "a reachable location has no exit at all (potential deadlock)";
    InvariantWithoutEscape =>
        "S104", "invariant-without-escape", Note,
        "a time-bounded invariant has no escaping transition (potential timelock)";
    UnmatchedSync =>
        "S105", "unmatched-sync", Warn,
        "an event has a sender but no receiver (or vice versa)";
    UnusedVariable =>
        "S106", "unused-variable", Warn,
        "a variable is never read or written after lowering";
    UnusedAction =>
        "S107", "unused-action", Warn,
        "an event is declared but appears on no transition";

    // ---- S2xx: network well-formedness rules ----
    WfDuplicateName =>
        "S200", "wf-duplicate-name", Deny,
        "a name is declared twice in the same namespace";
    WfUnknownName =>
        "S201", "wf-unknown-name", Deny,
        "a referenced name does not exist";
    WfMixedTransitionKinds =>
        "S202", "wf-mixed-transition-kinds", Deny,
        "a location mixes guarded and Markovian transitions";
    WfMarkovianNotInternal =>
        "S203", "wf-markovian-not-internal", Deny,
        "a Markovian transition is labeled with a synchronizing action";
    WfMarkovianInvariant =>
        "S204", "wf-markovian-invariant", Deny,
        "a location with Markovian transitions has a non-trivial invariant";
    WfNonPositiveRate =>
        "S205", "wf-non-positive-rate", Deny,
        "a Markovian transition has a non-positive rate";
    WfRateConflict =>
        "S206", "wf-rate-conflict", Deny,
        "two automata assign a derivative to the same continuous variable";
    WfRateOnDiscrete =>
        "S207", "wf-rate-on-discrete", Deny,
        "a derivative is assigned to a non-continuous variable";
    WfFlowCycle =>
        "S208", "wf-flow-cycle", Deny,
        "the data-flow assignments contain a dependency cycle";
    WfFlowTargetConflict =>
        "S209", "wf-flow-target-conflict", Deny,
        "a flow target is also written by effects or has a derivative";
    WfType =>
        "S210", "wf-type", Deny,
        "an expression fails to type-check";
    WfBadInit =>
        "S211", "wf-bad-init", Deny,
        "an initial value does not inhabit its variable's declared type";
    WfEmpty =>
        "S212", "wf-empty", Deny,
        "the network has no automata, or an automaton has no locations";
    WfIndexOutOfRange =>
        "S213", "wf-index-out-of-range", Deny,
        "an internal index (location, variable, action) is out of range";

    // ---- S3xx: semantic lints from the abstract-interpretation fixpoint ----
    EffectOutOfRange =>
        "S300", "effect-out-of-range", Warn,
        "an effect provably assigns a value outside its variable's declared range";
    ConstantGuardComparison =>
        "S301", "constant-guard-comparison", Note,
        "a guard comparison reads a variable that is provably constant";
    ZoneDeadGuard =>
        "S302", "zone-dead-guard", Warn,
        "a transition guard is unsatisfiable given the clock zones (timed, distinct from S101)";
    StaticTimelock =>
        "S303", "static-timelock", Warn,
        "a reachable location's invariant expires before any outgoing guard can fire";
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Per-lint level configuration: default levels from the registry,
/// optional per-code overrides, and a global "deny warnings" switch
/// (the CLI's `--deny-lints`).
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    overrides: HashMap<Code, Level>,
    /// Promote every effective `Warn` to `Deny`.
    pub deny_warnings: bool,
}

impl LintConfig {
    /// Configuration with registry defaults and no overrides.
    pub fn new() -> LintConfig {
        LintConfig::default()
    }

    /// Overrides the level of one lint.
    pub fn set(&mut self, code: Code, level: Level) {
        self.overrides.insert(code, level);
    }

    /// Overrides a lint level by code string or name; returns `false` if
    /// the lint is unknown.
    pub fn set_by_name(&mut self, lint: &str, level: Level) -> bool {
        match Code::parse(lint) {
            Some(code) => {
                self.set(code, level);
                true
            }
            None => false,
        }
    }

    /// The effective level of a lint under this configuration.
    pub fn effective(&self, code: Code) -> Level {
        let base = self.overrides.get(&code).copied().unwrap_or_else(|| code.default_level());
        if self.deny_warnings && base == Level::Warn {
            Level::Deny
        } else {
            base
        }
    }

    /// Applies the configuration to freshly produced diagnostics: drops
    /// `Allow`ed ones and rewrites severities to the effective levels.
    pub fn apply(&self, diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
        diags
            .into_iter()
            .filter_map(|mut d| {
                let level = self.effective(d.code);
                if level == Level::Allow {
                    return None;
                }
                d.severity = Severity::from_level(level);
                Some(d)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_sorted() {
        let mut seen = std::collections::HashSet::new();
        let mut prev = "";
        for c in Code::ALL {
            assert!(seen.insert(c.as_str()), "duplicate code {c}");
            assert!(seen.insert(c.name()), "name collides with a code: {}", c.name());
            assert!(prev < c.as_str(), "codes out of order at {c}");
            prev = c.as_str();
            assert!(!c.description().is_empty());
        }
    }

    #[test]
    fn parse_accepts_code_and_name() {
        assert_eq!(Code::parse("S100"), Some(Code::UnreachableLocation));
        assert_eq!(Code::parse("unreachable-location"), Some(Code::UnreachableLocation));
        assert_eq!(Code::parse("S999"), None);
        assert_eq!(Level::parse("deny"), Some(Level::Deny));
        assert_eq!(Level::parse("fatal"), None);
    }

    #[test]
    fn effective_levels_and_overrides() {
        let mut cfg = LintConfig::new();
        assert_eq!(cfg.effective(Code::UnreachableLocation), Level::Warn);
        assert_eq!(cfg.effective(Code::AbsorbingLocation), Level::Note);
        cfg.set(Code::UnreachableLocation, Level::Allow);
        assert_eq!(cfg.effective(Code::UnreachableLocation), Level::Allow);
        assert!(cfg.set_by_name("absorbing-location", Level::Deny));
        assert_eq!(cfg.effective(Code::AbsorbingLocation), Level::Deny);
        assert!(!cfg.set_by_name("nope", Level::Deny));
    }

    #[test]
    fn deny_warnings_promotes_only_warnings() {
        let mut cfg = LintConfig::new();
        cfg.deny_warnings = true;
        assert_eq!(cfg.effective(Code::UnreachableLocation), Level::Deny);
        assert_eq!(cfg.effective(Code::AbsorbingLocation), Level::Note);
        assert_eq!(cfg.effective(Code::WfEmpty), Level::Deny);
    }

    #[test]
    fn apply_filters_and_remaps() {
        let mut cfg = LintConfig::new();
        cfg.set(Code::UnusedVariable, Level::Allow);
        cfg.set(Code::UnusedAction, Level::Deny);
        let diags = vec![
            Diagnostic::new(Code::UnusedVariable, "dropped"),
            Diagnostic::new(Code::UnusedAction, "promoted"),
            Diagnostic::new(Code::AbsorbingLocation, "kept"),
        ];
        let out = cfg.apply(diags);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].code, Code::UnusedAction);
        assert_eq!(out[0].severity, Severity::Error);
        assert_eq!(out[1].severity, Severity::Note);
    }
}
