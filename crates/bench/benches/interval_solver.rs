//! Criterion micro-benchmarks of the exact enabling-window machinery:
//! interval-set algebra and the linear delay solver.

use criterion::{criterion_group, criterion_main, Criterion};
use slim_automata::eval::Valuation;
use slim_automata::expr::{Expr, VarId};
use slim_automata::interval::{Interval, IntervalSet};
use slim_automata::linear::{solve, DelayEnv};
use slim_automata::value::Value;

fn set_a() -> IntervalSet {
    IntervalSet::from_intervals((0..12).map(|i| {
        Interval::closed(i as f64 * 3.0, i as f64 * 3.0 + 2.0).unwrap()
    }))
}

fn set_b() -> IntervalSet {
    IntervalSet::from_intervals((0..12).map(|i| {
        Interval::open_closed(i as f64 * 2.5 + 1.0, i as f64 * 2.5 + 2.4).unwrap()
    }))
}

fn bench_interval_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("interval_sets");
    let a = set_a();
    let b = set_b();
    group.bench_function("union", |bch| bch.iter(|| a.union(&b)));
    group.bench_function("intersect", |bch| bch.iter(|| a.intersect(&b)));
    group.bench_function("complement", |bch| bch.iter(|| a.complement()));
    group.bench_function("pick", |bch| {
        let mut u = 0.1;
        bch.iter(|| {
            u = (u + 0.618) % 1.0;
            a.pick(u)
        })
    });
    group.finish();
}

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("linear_solver");
    // Two clocks, one continuous variable, one discrete int.
    let nu = Valuation::new(vec![
        Value::Real(12.0),
        Value::Real(3.0),
        Value::Real(80.0),
        Value::Int(3),
    ]);
    const RATES: [f64; 4] = [1.0, 1.0, -2.0, 0.0];
    fn rate(v: VarId) -> f64 {
        RATES[v.0]
    }
    let env = DelayEnv::new(&nu, &rate);

    let x = || Expr::var(VarId(0));
    let y = || Expr::var(VarId(1));
    let e = || Expr::var(VarId(2));
    let n = || Expr::var(VarId(3));

    let simple = x().ge(Expr::real(200.0)).and(x().le(Expr::real(300.0)));
    let nested = x()
        .ge(Expr::real(20.0))
        .and(y().lt(Expr::real(50.0)))
        .or(e().le(Expr::real(10.0)).and(n().ge(Expr::int(2))))
        .and(x().add(y()).le(Expr::real(500.0)));
    let with_ite = Expr::ite(
        n().ge(Expr::int(2)),
        x().le(Expr::real(100.0)),
        x().le(Expr::real(50.0)),
    )
    .and(e().gt(Expr::real(0.0)));

    group.bench_function("window_guard", |b| b.iter(|| solve(&simple, &env).unwrap()));
    group.bench_function("nested_guard", |b| b.iter(|| solve(&nested, &env).unwrap()));
    group.bench_function("ite_guard", |b| b.iter(|| solve(&with_ite, &env).unwrap()));
    group.finish();
}

criterion_group!(benches, bench_interval_ops, bench_solver);
criterion_main!(benches);
