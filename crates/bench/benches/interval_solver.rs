//! Micro-benchmarks of the exact enabling-window machinery: interval-set
//! algebra and the linear delay solver.

use slim_automata::eval::Valuation;
use slim_automata::expr::{Expr, VarId};
use slim_automata::interval::{Interval, IntervalSet};
use slim_automata::linear::{solve, DelayEnv};
use slim_automata::value::Value;
use slimsim_bench::harness::Harness;

fn set_a() -> IntervalSet {
    IntervalSet::from_intervals(
        (0..12).map(|i| Interval::closed(i as f64 * 3.0, i as f64 * 3.0 + 2.0).unwrap()),
    )
}

fn set_b() -> IntervalSet {
    IntervalSet::from_intervals(
        (0..12).map(|i| Interval::open_closed(i as f64 * 2.5 + 1.0, i as f64 * 2.5 + 2.4).unwrap()),
    )
}

fn bench_interval_ops(h: &mut Harness) {
    h.group("interval_sets");
    let a = set_a();
    let b = set_b();
    h.bench("union", || a.union(&b));
    h.bench("intersect", || a.intersect(&b));
    h.bench("complement", || a.complement());
    let mut u = 0.1;
    h.bench("pick", || {
        u = (u + 0.618) % 1.0;
        a.pick(u)
    });
}

fn bench_solver(h: &mut Harness) {
    h.group("linear_solver");
    // Two clocks, one continuous variable, one discrete int.
    let nu =
        Valuation::new(vec![Value::Real(12.0), Value::Real(3.0), Value::Real(80.0), Value::Int(3)]);
    const RATES: [f64; 4] = [1.0, 1.0, -2.0, 0.0];
    fn rate(v: VarId) -> f64 {
        RATES[v.0]
    }
    let env = DelayEnv::new(&nu, &rate);

    let x = || Expr::var(VarId(0));
    let y = || Expr::var(VarId(1));
    let e = || Expr::var(VarId(2));
    let n = || Expr::var(VarId(3));

    let simple = x().ge(Expr::real(200.0)).and(x().le(Expr::real(300.0)));
    let nested = x()
        .ge(Expr::real(20.0))
        .and(y().lt(Expr::real(50.0)))
        .or(e().le(Expr::real(10.0)).and(n().ge(Expr::int(2))))
        .and(x().add(y()).le(Expr::real(500.0)));
    let with_ite =
        Expr::ite(n().ge(Expr::int(2)), x().le(Expr::real(100.0)), x().le(Expr::real(50.0)))
            .and(e().gt(Expr::real(0.0)));

    h.bench("window_guard", || solve(&simple, &env).unwrap());
    h.bench("nested_guard", || solve(&nested, &env).unwrap());
    h.bench("ite_guard", || solve(&with_ite, &env).unwrap());
}

fn main() {
    let mut h = Harness::from_args();
    bench_interval_ops(&mut h);
    bench_solver(&mut h);
}
