//! Criterion micro-benchmarks of the statistics engine: generator feeds,
//! the round-robin collector, and the parallel runner's scaling on the
//! sensor–filter model (§III-C).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slim_models::sensor_filter::{sensor_filter_network, SensorFilterParams, GOAL_VAR};
use slim_stats::estimator::Generator;
use slim_stats::parallel::RoundRobinCollector;
use slim_stats::sequential::GeneratorKind;
use slim_stats::Accuracy;
use slim_automata::prelude::Expr;
use slimsim_core::prelude::*;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    let acc = Accuracy::new(0.01, 0.05).unwrap();
    for kind in GeneratorKind::ALL {
        group.bench_with_input(
            BenchmarkId::new("feed_10k", kind.to_string()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let mut g = kind.instantiate(acc);
                    for i in 0..10_000u32 {
                        g.add(i % 3 == 0);
                    }
                    g.estimate()
                })
            },
        );
    }
    group.finish();
}

fn bench_collector(c: &mut Criterion) {
    let mut group = c.benchmark_group("round_robin_collector");
    for workers in [2usize, 8, 48] {
        group.bench_with_input(
            BenchmarkId::new("push_drain_10k", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let mut col = RoundRobinCollector::new(workers);
                    let mut total = 0usize;
                    for i in 0..10_000usize {
                        col.push(i % workers, i % 7 == 0);
                        if i % 64 == 0 {
                            total += col.drain_rounds().len();
                        }
                    }
                    for w in 0..workers {
                        col.finish_worker(w);
                    }
                    total + col.drain_rounds().len()
                })
            },
        );
    }
    group.finish();
}

fn bench_parallel_runner(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_runner");
    group.sample_size(10);
    let net = sensor_filter_network(&SensorFilterParams::default());
    let failed = net.var_id(GOAL_VAR).unwrap();
    let prop = TimedReach::new(Goal::expr(Expr::var(failed)), 2.0);
    let acc = Accuracy::new(0.05, 0.1).unwrap();
    for workers in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("analyze", workers), &workers, |b, &w| {
            let cfg = SimConfig::default()
                .with_accuracy(acc)
                .with_strategy(StrategyKind::Asap)
                .with_workers(w);
            b.iter(|| analyze(&net, &prop, &cfg).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generators, bench_collector, bench_parallel_runner);
criterion_main!(benches);
