//! Micro-benchmarks of the statistics engine: generator feeds, the
//! round-robin collector, and the parallel runner's scaling on the
//! sensor–filter model (§III-C).

use slim_automata::prelude::Expr;
use slim_models::sensor_filter::{sensor_filter_network, SensorFilterParams, GOAL_VAR};
use slim_stats::parallel::RoundRobinCollector;
use slim_stats::sequential::GeneratorKind;
use slim_stats::Accuracy;
use slimsim_bench::harness::Harness;
use slimsim_core::prelude::*;

fn bench_generators(h: &mut Harness) {
    h.group("generators");
    let acc = Accuracy::new(0.01, 0.05).unwrap();
    for kind in GeneratorKind::ALL {
        h.bench(&format!("feed_10k/{kind}"), || {
            let mut g = kind.instantiate(acc);
            for i in 0..10_000u32 {
                g.add(i % 3 == 0);
            }
            g.estimate()
        });
    }
}

fn bench_collector(h: &mut Harness) {
    h.group("round_robin_collector");
    for workers in [2usize, 8, 48] {
        h.bench(&format!("push_drain_10k/{workers}"), || {
            let mut col = RoundRobinCollector::new(workers);
            let mut total = 0usize;
            for i in 0..10_000usize {
                col.push(i % workers, i % 7 == 0);
                if i % 64 == 0 {
                    total += col.drain_rounds().len();
                }
            }
            for w in 0..workers {
                col.finish_worker(w);
            }
            total + col.drain_rounds().len()
        });
    }
}

fn bench_parallel_runner(h: &mut Harness) {
    h.group("parallel_runner");
    let net = sensor_filter_network(&SensorFilterParams::default());
    let failed = net.var_id(GOAL_VAR).unwrap();
    let prop = TimedReach::new(Goal::expr(Expr::var(failed)), 2.0);
    let acc = Accuracy::new(0.05, 0.1).unwrap();
    for workers in [1usize, 2, 4] {
        let cfg = SimConfig::default()
            .with_accuracy(acc)
            .with_strategy(StrategyKind::Asap)
            .with_workers(workers);
        h.bench(&format!("analyze/{workers}"), || analyze(&net, &prop, &cfg).unwrap());
    }
}

fn main() {
    let mut h = Harness::from_args();
    bench_generators(&mut h);
    bench_collector(&mut h);
    bench_parallel_runner(&mut h);
}
