//! Criterion micro-benchmarks of the SLIM front-end: lexing, parsing,
//! pretty-printing and lowering.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use slim_lang::{lexer::lex, lower, parse, pretty};
use slim_models::gps::{gps_slim_source, GpsParams};

fn bench_frontend(c: &mut Criterion) {
    let src = gps_slim_source(&GpsParams::default());
    let model = parse(&src).unwrap();

    let mut group = c.benchmark_group("frontend");
    group.throughput(Throughput::Bytes(src.len() as u64));
    group.bench_function("lex", |b| b.iter(|| lex(&src).unwrap()));
    group.bench_function("parse", |b| b.iter(|| parse(&src).unwrap()));
    group.bench_function("pretty", |b| b.iter(|| pretty(&model)));
    group.bench_function("lower", |b| {
        b.iter(|| lower(&model, "GPS", "Impl", "gps").unwrap())
    });
    group.bench_function("parse_and_lower", |b| {
        b.iter(|| lower(&parse(&src).unwrap(), "GPS", "Impl", "gps").unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_frontend);
criterion_main!(benches);
