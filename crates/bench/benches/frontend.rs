//! Micro-benchmarks of the SLIM front-end: lexing, parsing,
//! pretty-printing and lowering.

use slim_lang::{lexer::lex, lower, parse, pretty};
use slim_models::gps::{gps_slim_source, GpsParams};
use slimsim_bench::harness::Harness;

fn bench_frontend(h: &mut Harness) {
    let src = gps_slim_source(&GpsParams::default());
    let model = parse(&src).unwrap();

    h.group("frontend");
    h.bench("lex", || lex(&src).unwrap());
    h.bench("parse", || parse(&src).unwrap());
    h.bench("pretty", || pretty(&model));
    h.bench("lower", || lower(&model, "GPS", "Impl", "gps").unwrap());
    h.bench("parse_and_lower", || lower(&parse(&src).unwrap(), "GPS", "Impl", "gps").unwrap());
}

fn main() {
    let mut h = Harness::from_args();
    bench_frontend(&mut h);
}
