//! Criterion micro-benchmarks of the simulation engine: path-generation
//! throughput per model and strategy (the per-path cost that makes the
//! simulator's Table I columns flat).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slim_models::gps::{gps_network, GpsParams};
use slim_models::launcher::{launcher_network, LauncherParams};
use slim_models::sensor_filter::{sensor_filter_network, SensorFilterParams, GOAL_VAR};
use slim_stats::rng::path_rng;
use slim_automata::prelude::Expr;
use slimsim_core::prelude::*;

fn bench_path_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("path_generation");
    group.sample_size(20);

    // Sensor–filter (untimed, Markovian) at two sizes.
    for size in [2, 6] {
        let net = sensor_filter_network(&SensorFilterParams {
            redundancy: size,
            ..Default::default()
        });
        let failed = net.var_id(GOAL_VAR).unwrap();
        let prop = TimedReach::new(Goal::expr(Expr::var(failed)), 2.0);
        let gen = PathGenerator::new(&net, &prop, 100_000);
        group.bench_with_input(
            BenchmarkId::new("sensor_filter", size),
            &size,
            |b, _| {
                let mut strategy = Asap;
                let mut i = 0u64;
                b.iter(|| {
                    let mut rng = path_rng(1, i);
                    i += 1;
                    gen.generate(&mut strategy, &mut rng).unwrap()
                });
            },
        );
    }

    // The launcher (timed, hybrid) per strategy.
    let net = launcher_network(&LauncherParams::default());
    let failure = net.var_id("failure").unwrap();
    let prop = TimedReach::new(Goal::expr(Expr::var(failure)), 2.0);
    let gen = PathGenerator::new(&net, &prop, 100_000);
    for kind in StrategyKind::ALL {
        group.bench_with_input(
            BenchmarkId::new("launcher", kind.to_string()),
            &kind,
            |b, &kind| {
                let mut strategy = kind.instantiate();
                let mut i = 0u64;
                b.iter(|| {
                    let mut rng = path_rng(2, i);
                    i += 1;
                    gen.generate(strategy.as_mut(), &mut rng).unwrap()
                });
            },
        );
    }

    // GPS (clock windows through the SLIM front-end).
    let net = gps_network(&GpsParams::default());
    let goal = Goal::in_location(&net, "gps.error_GpsError", "permanent").unwrap();
    let prop = TimedReach::new(goal, 10.0);
    let gen = PathGenerator::new(&net, &prop, 100_000);
    group.bench_function("gps/progressive", |b| {
        let mut strategy = Progressive;
        let mut i = 0u64;
        b.iter(|| {
            let mut rng = path_rng(3, i);
            i += 1;
            gen.generate(&mut strategy, &mut rng).unwrap()
        });
    });

    group.finish();
}

fn bench_step_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("step_primitives");
    group.sample_size(30);
    let net = launcher_network(&LauncherParams::default());
    let state = net.initial_state().unwrap();

    group.bench_function("guarded_candidates", |b| {
        b.iter(|| net.guarded_candidates(&state).unwrap())
    });
    group.bench_function("markovian_candidates", |b| {
        b.iter(|| net.markovian_candidates(&state))
    });
    group.bench_function("delay_window", |b| b.iter(|| net.delay_window(&state).unwrap()));
    group.bench_function("advance", |b| b.iter(|| net.advance(&state, 0.05).unwrap()));
    group.finish();
}

criterion_group!(benches, bench_path_generation, bench_step_primitives);
criterion_main!(benches);
