//! Micro-benchmarks of the simulation engine: path-generation throughput
//! per model and strategy (the per-path cost that makes the simulator's
//! Table I columns flat).

use slim_automata::prelude::{Expr, IntervalSet, StepScratch};
use slim_models::gps::{gps_network, GpsParams};
use slim_models::launcher::{launcher_network, LauncherParams};
use slim_models::sensor_filter::{sensor_filter_network, SensorFilterParams, GOAL_VAR};
use slim_stats::rng::path_rng;
use slimsim_bench::harness::Harness;
use slimsim_core::prelude::*;

fn bench_path_generation(h: &mut Harness) {
    h.group("path_generation");

    // Sensor–filter (untimed, Markovian) at two sizes; the reused-scratch
    // hot path (what the runner's workers execute) vs the per-path
    // fresh-scratch wrapper.
    for size in [2, 6] {
        let net =
            sensor_filter_network(&SensorFilterParams { redundancy: size, ..Default::default() });
        let failed = net.var_id(GOAL_VAR).unwrap();
        let prop = TimedReach::new(Goal::expr(Expr::var(failed)), 2.0);
        let gen = PathGenerator::new(&net, &prop, 100_000);
        let mut strategy = Asap;
        let mut scratch = SimScratch::new();
        let mut i = 0u64;
        h.bench(&format!("sensor_filter/{size}"), || {
            let mut rng = path_rng(1, i);
            i += 1;
            gen.generate_with(&mut scratch, &mut strategy, &mut rng).unwrap()
        });
        let mut i = 0u64;
        h.bench(&format!("sensor_filter/{size}/fresh_scratch"), || {
            let mut rng = path_rng(1, i);
            i += 1;
            gen.generate(&mut strategy, &mut rng).unwrap()
        });
        // The batched SoA kernel, 32 lanes per iteration (divide the
        // reported time by 32 for the per-path cost).
        let mut batch_scratch = BatchScratch::new();
        let mut batch = Vec::new();
        let mut i = 0u64;
        h.bench(&format!("sensor_filter/{size}/batched32"), || {
            gen.generate_batch_with(
                &mut batch_scratch,
                &mut strategy,
                1,
                i,
                1,
                32,
                None,
                &mut batch,
            );
            i += 32;
            batch.drain(..).map(|r| r.unwrap().steps).sum::<u64>()
        });
    }

    // The launcher (timed, hybrid) per strategy.
    let net = launcher_network(&LauncherParams::default());
    let failure = net.var_id("failure").unwrap();
    let prop = TimedReach::new(Goal::expr(Expr::var(failure)), 2.0);
    let gen = PathGenerator::new(&net, &prop, 100_000);
    for kind in StrategyKind::ALL {
        let mut strategy = kind.instantiate();
        let mut scratch = SimScratch::new();
        let mut i = 0u64;
        h.bench(&format!("launcher/{kind}"), || {
            let mut rng = path_rng(2, i);
            i += 1;
            gen.generate_with(&mut scratch, strategy.as_mut(), &mut rng).unwrap()
        });
    }

    // GPS (clock windows through the SLIM front-end).
    let net = gps_network(&GpsParams::default());
    let goal = Goal::in_location(&net, "gps.error_GpsError", "permanent").unwrap();
    let prop = TimedReach::new(goal, 10.0);
    let gen = PathGenerator::new(&net, &prop, 100_000);
    let mut strategy = Progressive;
    let mut scratch = SimScratch::new();
    let mut i = 0u64;
    h.bench("gps/progressive", || {
        let mut rng = path_rng(3, i);
        i += 1;
        gen.generate_with(&mut scratch, &mut strategy, &mut rng).unwrap()
    });
    let mut batch_scratch = BatchScratch::new();
    let mut batch = Vec::new();
    let mut i = 0u64;
    h.bench("gps/progressive/batched32", || {
        gen.generate_batch_with(&mut batch_scratch, &mut strategy, 3, i, 1, 32, None, &mut batch);
        i += 32;
        batch.drain(..).map(|r| r.unwrap().steps).sum::<u64>()
    });
}

/// Steps-per-second of the raw stepping primitives: the compiled kernel
/// (`*_into` on a reused scratch) vs the legacy allocating methods.
fn bench_step_primitives(h: &mut Harness) {
    h.group("step_primitives");
    let net = launcher_network(&LauncherParams::default());
    let tables = net.compile();
    let mut s = StepScratch::new();
    let state = net.initial_state().unwrap();
    let mut window = IntervalSet::empty();
    net.delay_window_into(&tables, &mut s, &state, &mut window).unwrap();

    h.bench("guarded_candidates", || {
        net.guarded_candidates_into(&tables, &mut s, &state).unwrap();
        s.candidates().len()
    });
    h.bench("markovian_candidates", || {
        net.markovian_candidates_into(&tables, &mut s, &state);
        s.markovian().len()
    });
    h.bench("delay_window", || {
        net.delay_window_into(&tables, &mut s, &state, &mut window).unwrap();
    });
    let mut adv = state.clone();
    h.bench("advance", || {
        adv.copy_from(&state);
        net.advance_mut(&tables, &mut s, &mut adv, 0.05, &window).unwrap();
    });

    h.bench("legacy/guarded_candidates", || net.guarded_candidates(&state).unwrap());
    h.bench("legacy/markovian_candidates", || net.markovian_candidates(&state));
    h.bench("legacy/delay_window", || net.delay_window(&state).unwrap());
    h.bench("legacy/advance", || net.advance(&state, 0.05).unwrap());

    // The same primitives on the sensor–filter zoo model (pure-Markovian,
    // the throughput-gate worst case), plus the goal-window evaluation
    // the engine performs every step.
    let net = sensor_filter_network(&SensorFilterParams::default());
    let tables = net.compile();
    let mut s = StepScratch::new();
    let state = net.initial_state().unwrap();
    let mut window = IntervalSet::empty();
    net.delay_window_into(&tables, &mut s, &state, &mut window).unwrap();
    let failed = net.var_id(GOAL_VAR).unwrap();
    let goal = Goal::expr(Expr::var(failed)).compile(&net);
    let mut pool = GoalPool::new();
    let mut goal_win = IntervalSet::empty();
    h.bench("sensor_filter/goal_window", || {
        goal.window_into(&net, &mut s, &mut pool, &state, &mut goal_win).unwrap();
    });
    h.bench("sensor_filter/delay_window", || {
        net.delay_window_into(&tables, &mut s, &state, &mut window).unwrap();
    });
    h.bench("sensor_filter/guarded_candidates", || {
        net.guarded_candidates_into(&tables, &mut s, &state).unwrap();
        s.candidates().len()
    });
    h.bench("sensor_filter/markovian_candidates", || {
        net.markovian_candidates_into(&tables, &mut s, &state);
        s.markovian().len()
    });
    let mut adv = state.clone();
    h.bench("sensor_filter/advance", || {
        adv.copy_from(&state);
        net.advance_mut(&tables, &mut s, &mut adv, 0.05, &window).unwrap();
    });
    // Firing cost (effects + flow re-establishment) for one Markovian
    // unit failure, including the state restore that isolates it.
    net.markovian_candidates_into(&tables, &mut s, &state);
    let (mp, mt, _) = s.markovian()[0];
    let fire = [(mp, mt)];
    let mut fired = state.clone();
    h.bench("sensor_filter/apply", || {
        fired.copy_from(&state);
        net.apply_mut(&tables, &mut s, &mut fired, &fire).unwrap();
    });
    // The per-step RNG budget: the race's exponential draw plus the
    // categorical winner draw.
    let mut rng = path_rng(9, 0);
    h.bench("sensor_filter/rng_step", || {
        let u: f64 = rng.gen();
        let w: f64 = rng.gen();
        -u.ln() + w
    });
}

fn main() {
    let mut h = Harness::from_args();
    bench_path_generation(&mut h);
    bench_step_primitives(&mut h);
}
