//! Micro-benchmarks of the CTMC baseline pipeline phases — the per-state
//! costs that blow up Table I's CTMC columns.

use slim_automata::prelude::NetState;
use slim_ctmc::eliminate::eliminate;
use slim_ctmc::explore::{explore, ExploreConfig};
use slim_ctmc::lumping::lump;
use slim_ctmc::transient::{timed_reachability, TransientConfig};
use slim_models::sensor_filter::{sensor_filter_network, SensorFilterParams, GOAL_VAR};
use slimsim_bench::harness::Harness;

fn bench_pipeline_phases(h: &mut Harness) {
    h.group("ctmc_pipeline");

    for size in [2usize, 4] {
        let net =
            sensor_filter_network(&SensorFilterParams { redundancy: size, ..Default::default() });
        let failed = net.var_id(GOAL_VAR).unwrap();
        let goal = move |s: &NetState| s.nu.get(failed).map(|v| v.as_bool().unwrap_or(false));

        h.bench(&format!("explore/{size}"), || {
            explore(&net, &goal, &ExploreConfig::default()).unwrap()
        });

        let explored = explore(&net, &goal, &ExploreConfig::default()).unwrap();
        h.bench(&format!("eliminate/{size}"), || eliminate(&explored.imc).unwrap());

        let ctmc = eliminate(&explored.imc).unwrap();
        h.bench(&format!("lump/{size}"), || lump(&ctmc));

        let lumped = lump(&ctmc).quotient;
        h.bench(&format!("transient/{size}"), || {
            timed_reachability(&lumped, 2.0, &TransientConfig::default())
        });

        // Ablation: transient analysis without the lumping reduction.
        h.bench(&format!("transient_unlumped/{size}"), || {
            timed_reachability(&ctmc, 2.0, &TransientConfig::default())
        });
    }
}

fn main() {
    let mut h = Harness::from_args();
    bench_pipeline_phases(&mut h);
}
