//! Criterion micro-benchmarks of the CTMC baseline pipeline phases —
//! the per-state costs that blow up Table I's CTMC columns.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use slim_automata::prelude::NetState;
use slim_ctmc::eliminate::eliminate;
use slim_ctmc::explore::{explore, ExploreConfig};
use slim_ctmc::lumping::lump;
use slim_ctmc::transient::{timed_reachability, TransientConfig};
use slim_models::sensor_filter::{sensor_filter_network, SensorFilterParams, GOAL_VAR};

fn bench_pipeline_phases(c: &mut Criterion) {
    let mut group = c.benchmark_group("ctmc_pipeline");
    group.sample_size(10);

    for size in [2usize, 4] {
        let net = sensor_filter_network(&SensorFilterParams {
            redundancy: size,
            ..Default::default()
        });
        let failed = net.var_id(GOAL_VAR).unwrap();
        let goal = move |s: &NetState| s.nu.get(failed).map(|v| v.as_bool().unwrap_or(false));

        group.bench_with_input(BenchmarkId::new("explore", size), &size, |b, _| {
            b.iter(|| explore(&net, &goal, &ExploreConfig::default()).unwrap())
        });

        let explored = explore(&net, &goal, &ExploreConfig::default()).unwrap();
        group.bench_with_input(BenchmarkId::new("eliminate", size), &size, |b, _| {
            b.iter(|| eliminate(&explored.imc).unwrap())
        });

        let ctmc = eliminate(&explored.imc).unwrap();
        group.bench_with_input(BenchmarkId::new("lump", size), &size, |b, _| {
            b.iter(|| lump(&ctmc))
        });

        let lumped = lump(&ctmc).quotient;
        group.bench_with_input(BenchmarkId::new("transient", size), &size, |b, _| {
            b.iter(|| timed_reachability(&lumped, 2.0, &TransientConfig::default()))
        });

        // Ablation: transient analysis without the lumping reduction.
        group.bench_with_input(BenchmarkId::new("transient_unlumped", size), &size, |b, _| {
            b.iter(|| timed_reachability(&ctmc, 2.0, &TransientConfig::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline_phases);
criterion_main!(benches);
