//! A counting global allocator for the zero-allocation gate.
//!
//! The simulator's hot path contracts to perform **no heap allocation in
//! steady state**: after a warm-up path has sized every pooled buffer in
//! a [`slimsim_core::prelude::SimScratch`], subsequent paths must reuse
//! those buffers exclusively. [`CountingAllocator`] wraps the system
//! allocator and counts calls, so the `alloc_check` binary (and CI) can
//! *prove* the contract instead of trusting it: warm up, reset the
//! counters, simulate, and assert the delta is zero.
//!
//! The counter is intentionally global and lock-free (relaxed atomics):
//! the check runs single-threaded, and approximate counts under
//! concurrency would still flag a broken contract.

// The one place in the workspace where unsafe is unavoidable: the
// `GlobalAlloc` trait is unsafe by definition. The impl delegates every
// call verbatim to `System` and only bumps atomics on the side.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of `alloc`/`realloc` calls since the last [`reset`].
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
/// Number of bytes requested since the last [`reset`].
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed allocator that counts allocation calls.
///
/// Install it in a binary with
/// `#[global_allocator] static A: CountingAllocator = CountingAllocator;`
/// — the library deliberately does *not* install it, so ordinary bench
/// binaries keep the unwrapped system allocator.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingAllocator;

// SAFETY: delegates verbatim to `System`; the counters have no effect on
// the returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Resets both counters to zero.
pub fn reset() {
    ALLOCATIONS.store(0, Ordering::Relaxed);
    ALLOCATED_BYTES.store(0, Ordering::Relaxed);
}

/// `(allocation calls, bytes requested)` since the last [`reset`].
pub fn counts() -> (u64, u64) {
    (ALLOCATIONS.load(Ordering::Relaxed), ALLOCATED_BYTES.load(Ordering::Relaxed))
}
