//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (see EXPERIMENTS.md for the index and the recorded runs).
//!
//! The binaries under `src/bin/` print the same rows/series the paper
//! reports:
//!
//! * `table1` — §IV Table I: CTMC pipeline vs simulator over model size;
//! * `epsilon_sweep` — §IV's claim that simulation time grows
//!   quadratically as the error bound shrinks;
//! * `fig5` — §V-d Fig. 5: launcher failure probability vs time bound per
//!   strategy, permanent and recoverable variants;
//! * `strategies` — §III-B: the GPS strategy study.

pub mod alloc;
pub mod harness;

use slim_automata::prelude::{Expr, NetState, Network};
use slim_ctmc::analysis::{check_timed_reachability, PipelineConfig};
use slim_ctmc::error::CtmcError;
use slim_ctmc::explore::ExploreConfig;
use slim_models::launcher::{launcher_network, DpuFaultMode, LauncherParams, FAILURE_VAR};
use slim_models::sensor_filter::{sensor_filter_network, SensorFilterParams, GOAL_VAR};
use slim_stats::Accuracy;
use slimsim_core::prelude::*;
use std::time::Duration;

/// One row of Table I.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Redundancy per bank (the paper's model-size axis).
    pub size: usize,
    /// CTMC pipeline measurements, or the failure reason (state limit).
    pub ctmc: Result<CtmcCols, String>,
    /// Simulator measurements.
    pub sim: SimCols,
}

/// CTMC-side columns of Table I.
#[derive(Debug, Clone)]
pub struct CtmcCols {
    /// Reachable states explored.
    pub states: usize,
    /// Quotient states after lumping.
    pub lumped: usize,
    /// Wall-clock time of the pipeline.
    pub time: Duration,
    /// Approximate stored-state-space memory (bytes).
    pub memory_bytes: usize,
    /// The (exact) probability.
    pub probability: f64,
}

/// Simulator-side columns of Table I.
#[derive(Debug, Clone)]
pub struct SimCols {
    /// Wall-clock time of the analysis.
    pub time: Duration,
    /// Approximate memory (bytes) — flat in model size.
    pub memory_bytes: usize,
    /// The estimate.
    pub probability: f64,
    /// Paths generated.
    pub paths: u64,
}

/// Table I defaults: property horizon and simulator accuracy.
#[derive(Debug, Clone, Copy)]
pub struct Table1Config {
    /// Property time bound `T`.
    pub horizon: f64,
    /// Simulator accuracy.
    pub accuracy: Accuracy,
    /// CTMC exploration state limit (the "out of memory" bar).
    pub state_limit: usize,
    /// Simulator worker threads.
    pub workers: usize,
}

impl Default for Table1Config {
    fn default() -> Self {
        Table1Config {
            horizon: 2.0,
            accuracy: Accuracy::new(0.01, 0.05).expect("valid defaults"),
            state_limit: 2_000_000,
            workers: std::thread::available_parallelism().map_or(4, |n| n.get()),
        }
    }
}

/// Runs one row of Table I for bank redundancy `size`.
pub fn table1_row(size: usize, cfg: &Table1Config) -> Table1Row {
    let params = SensorFilterParams { redundancy: size, ..Default::default() };
    let net = sensor_filter_network(&params);
    let failed = net.var_id(GOAL_VAR).expect("goal variable");

    // CTMC pipeline (may exhaust the state limit — that is the result).
    let goal_fn = move |s: &NetState| s.nu.get(failed).map(|v| v.as_bool().unwrap_or(false));
    let pipeline = PipelineConfig {
        explore: ExploreConfig { state_limit: cfg.state_limit },
        ..Default::default()
    };
    let ctmc = match check_timed_reachability(&net, &goal_fn, cfg.horizon, &pipeline) {
        Ok(r) => Ok(CtmcCols {
            states: r.states,
            lumped: r.lumped_states,
            time: r.wall,
            memory_bytes: r.approx_memory_bytes,
            probability: r.probability,
        }),
        Err(CtmcError::StateLimitExceeded { limit }) => Err(format!("memout (> {limit} states)")),
        Err(e) => Err(e.to_string()),
    };

    let sim = simulate(&net, failed, cfg.horizon, cfg.accuracy, StrategyKind::Asap, cfg.workers);
    Table1Row { size, ctmc, sim }
}

/// Runs the simulator side only (used by the ε sweep too).
pub fn simulate(
    net: &Network,
    goal_var: slim_automata::expr::VarId,
    horizon: f64,
    accuracy: Accuracy,
    strategy: StrategyKind,
    workers: usize,
) -> SimCols {
    let property = TimedReach::new(Goal::expr(Expr::var(goal_var)), horizon);
    let config = SimConfig::default()
        .with_accuracy(accuracy)
        .with_strategy(strategy)
        .with_workers(workers.max(1));
    let r = analyze(net, &property, &config).expect("simulation succeeds");
    SimCols {
        time: r.wall,
        memory_bytes: r.approx_memory_bytes,
        probability: r.probability(),
        paths: r.estimate.samples,
    }
}

/// One series point of Fig. 5.
#[derive(Debug, Clone)]
pub struct Fig5Point {
    /// Time bound `u`.
    pub bound: f64,
    /// Strategy.
    pub strategy: StrategyKind,
    /// Estimated `P(◇[0,u] failure)`.
    pub probability: f64,
    /// Paths used.
    pub paths: u64,
}

/// Runs the Fig. 5 experiment for one launcher variant.
pub fn fig5_series(
    mode: DpuFaultMode,
    bounds: &[f64],
    accuracy: Accuracy,
    workers: usize,
    seed: u64,
) -> Vec<Fig5Point> {
    let params = LauncherParams { dpu_faults: mode, ..Default::default() };
    let net = launcher_network(&params);
    let failure = net.var_id(FAILURE_VAR).expect("failure flow");
    let mut out = Vec::new();
    for &bound in bounds {
        let property = TimedReach::new(Goal::expr(Expr::var(failure)), bound);
        for strategy in StrategyKind::ALL {
            let config = SimConfig::default()
                .with_accuracy(accuracy)
                .with_strategy(strategy)
                .with_workers(workers.max(1))
                .with_seed(seed);
            let r = analyze(&net, &property, &config).expect("simulation succeeds");
            out.push(Fig5Point {
                bound,
                strategy,
                probability: r.probability(),
                paths: r.estimate.samples,
            });
        }
    }
    out
}

/// Formats a byte count as MiB with two decimals.
pub fn mib(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

/// Formats a duration as seconds with two decimals.
pub fn secs(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_row_smoke() {
        let cfg = Table1Config {
            horizon: 1.0,
            accuracy: Accuracy::new(0.1, 0.2).unwrap(),
            state_limit: 100_000,
            workers: 2,
        };
        let row = table1_row(2, &cfg);
        let ctmc = row.ctmc.expect("size 2 fits easily");
        assert!(ctmc.states > 10);
        assert!((ctmc.probability - row.sim.probability).abs() < 0.15);
    }

    #[test]
    fn table1_state_limit_reported() {
        let cfg = Table1Config {
            horizon: 1.0,
            accuracy: Accuracy::new(0.2, 0.2).unwrap(),
            state_limit: 10,
            workers: 1,
        };
        let row = table1_row(3, &cfg);
        assert!(row.ctmc.is_err(), "limit 10 must trip");
        assert!(row.sim.paths > 0, "simulator unaffected by state limit");
    }

    #[test]
    fn fig5_series_shapes() {
        let pts =
            fig5_series(DpuFaultMode::Permanent, &[0.5], Accuracy::new(0.2, 0.2).unwrap(), 2, 7);
        assert_eq!(pts.len(), StrategyKind::ALL.len());
        assert!(pts.iter().all(|p| (0.0..=1.0).contains(&p.probability)));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(mib(1024 * 1024), "1.00");
        assert_eq!(secs(Duration::from_millis(1500)), "1.50");
    }
}
