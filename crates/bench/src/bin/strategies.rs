//! Regenerates the §III-B synthetic strategy study on the GPS error model
//! (Fig. 2): how each strategy resolves the `[200, 300]` ms repair window
//! and what that does to the escalation probability.
//!
//! ```text
//! cargo run -p slimsim-bench --release --bin strategies
//! ```

use slim_models::gps::{gps_network, GpsParams};
use slim_stats::Accuracy;
use slimsim_core::prelude::*;

fn main() {
    // Hot faults dominate so the repair window drives the outcome; one
    // fault episode fits in the bound.
    let params = GpsParams {
        lambda_transient: 0.02,
        lambda_hot: 20.0,
        lambda_permanent: 0.001,
        ..GpsParams::default()
    };
    let net = gps_network(&params);
    let goal =
        Goal::in_location(&net, "gps.error_GpsError", "permanent").expect("error automaton exists");
    let accuracy = Accuracy::new(0.01, 0.05).expect("valid accuracy");
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get());

    println!(
        "GPS strategy study (§III-B): repair window [{}, {}], cool-down {}",
        params.repair_earliest, params.repair_latest, params.cooldown
    );
    println!("P(◇[0,0.4] permanent), {accuracy}, {workers} workers\n");
    println!(
        "{:<14} {:>12} {:>10} {:>12} {:>10}",
        "strategy", "P(escalate)", "paths", "mean steps", "time"
    );
    let property = TimedReach::new(goal, 0.4);
    for strategy in StrategyKind::ALL {
        let config = SimConfig::default()
            .with_accuracy(accuracy)
            .with_strategy(strategy)
            .with_workers(workers);
        let r = analyze(&net, &property, &config).expect("simulation succeeds");
        println!(
            "{:<14} {:>12.4} {:>10} {:>12.1} {:>10.2?}",
            strategy.to_string(),
            r.probability(),
            r.estimate.samples,
            r.stats.mean_steps(),
            r.wall
        );
    }
    println!("\nASAP fires at the window start (200 ms < 250 ms cool-down) and");
    println!("escalates nearly every episode; MaxTime fires at 300 ms and never");
    println!("escalates; Progressive samples the window uniformly (~0.5 per");
    println!("episode); Local samples the invariant window and re-waits, landing");
    println!("close to Progressive — the §III-B semantics, measured.");
}
