//! Compares a fresh `BENCH_simulator.json` against a committed baseline
//! and flags throughput regressions.
//!
//! ```text
//! cargo run -p slimsim-bench --release --bin bench_compare -- \
//!     <baseline.json> <current.json> [--threshold PCT]
//! ```
//!
//! Only `*.paths_per_sec` entries are compared: they are the per-model
//! throughput the perf work optimises, and the remaining entries
//! (probabilities, sample counts) are accuracy-driven rather than
//! performance-driven. Since the artifact moved to median-of-K passes,
//! each compared value is a per-model median, and the recorded per-pass
//! spread (`*.paths_per_sec_min` / `_max`, when present) is printed next
//! to the verdict so a regression on a noisy host is recognizable as
//! such. A model regresses when its fresh median throughput drops more
//! than `--threshold` percent (default 20) below the baseline.
//!
//! Exit codes: `0` — no regression; `1` — at least one regression
//! (CI treats this as a soft failure: bench hosts are noisy, so the job
//! annotates rather than blocks); `2` — usage or parse error.

use slim_obs::{BenchReport, Json};
use std::collections::BTreeMap;

const METRIC_SUFFIX: &str = ".paths_per_sec";

fn load(path: &str) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let json = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    BenchReport::from_json(&json).map_err(|e| format!("{path}: {e}"))
}

/// `model name -> paths/s` for every throughput entry in the report.
/// `_min`/`_max` spread entries don't end in the bare suffix, so they
/// never leak into the comparison set.
fn throughputs(report: &BenchReport) -> BTreeMap<String, f64> {
    report
        .entries
        .iter()
        .filter_map(|e| {
            e.name.strip_suffix(METRIC_SUFFIX).map(|model| (model.to_string(), e.value))
        })
        .collect()
}

/// `model name -> (min, max)` per-pass spread, for reports produced with
/// `bench_report --repeat K` (absent from older single-pass artifacts).
fn spreads(report: &BenchReport) -> BTreeMap<String, (f64, f64)> {
    let find = |name: &str| report.entries.iter().find(|e| e.name == name).map(|e| e.value);
    report
        .entries
        .iter()
        .filter_map(|e| e.name.strip_suffix(METRIC_SUFFIX))
        .filter_map(|model| {
            let lo = find(&format!("{model}{METRIC_SUFFIX}_min"))?;
            let hi = find(&format!("{model}{METRIC_SUFFIX}_max"))?;
            Some((model.to_string(), (lo, hi)))
        })
        .collect()
}

fn main() {
    let mut paths = Vec::new();
    let mut threshold_pct = 20.0;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--threshold" {
            match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if t > 0.0 => threshold_pct = t,
                _ => {
                    eprintln!("bench_compare: --threshold expects a positive percentage");
                    std::process::exit(2);
                }
            }
        } else {
            paths.push(arg);
        }
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        eprintln!("usage: bench_compare <baseline.json> <current.json> [--threshold PCT]");
        std::process::exit(2);
    };

    let (baseline, current) = match (load(baseline_path), load(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_compare: {e}");
            std::process::exit(2);
        }
    };
    let base = throughputs(&baseline);
    let cur = throughputs(&current);
    let cur_spread = spreads(&current);
    if base.is_empty() {
        eprintln!("bench_compare: baseline has no `{METRIC_SUFFIX}` entries");
        std::process::exit(2);
    }

    let mut regressions = 0usize;
    for (model, &base_v) in &base {
        let Some(&cur_v) = cur.get(model) else {
            eprintln!("{model:>14}: MISSING from current report");
            regressions += 1;
            continue;
        };
        let delta_pct = if base_v > 0.0 { (cur_v / base_v - 1.0) * 100.0 } else { 0.0 };
        let verdict = if delta_pct < -threshold_pct { "REGRESSION" } else { "ok" };
        let spread = cur_spread
            .get(model)
            .map(|(lo, hi)| format!(" (pass spread {lo:.0}..{hi:.0})"))
            .unwrap_or_default();
        println!(
            "{model:>14}: {base_v:>12.0} -> {cur_v:>12.0} paths/s ({delta_pct:+6.1}%) \
             [{verdict}]{spread}"
        );
        if verdict == "REGRESSION" {
            regressions += 1;
        }
    }
    for model in cur.keys().filter(|m| !base.contains_key(*m)) {
        println!("{model:>14}: new entry (no baseline)");
    }

    if regressions > 0 {
        eprintln!(
            "bench_compare: {regressions} model(s) regressed more than {threshold_pct}% \
             vs {baseline_path}"
        );
        std::process::exit(1);
    }
    println!("bench_compare: all models within {threshold_pct}% of {baseline_path}");
}
