//! In-process A/B: the fused kernel vs `CompileOptions::reference()`.
//!
//! Cross-invocation throughput on shared hosts drifts by up to ~1.7×,
//! which swamps any real kernel delta when two `bench_report` artifacts
//! are compared. This harness removes the host from the comparison: it
//! compiles both kernels for each zoo model, interleaves timed rounds of
//! identical path batches (same per-path RNG streams) between them so
//! scheduler noise hits both sides equally, and reports the per-model
//! median speedup. Use this — not artifact diffs — to judge whether a
//! kernel change actually pays.

use slim_automata::prelude::{CompileOptions, Expr};
use slim_models::{
    gps_network, repair_network, sensor_filter_network, voting_network, GpsParams, RepairParams,
    SensorFilterParams, VotingParams,
};
use slim_stats::rng::path_rng;
use slimsim_core::prelude::*;
use std::time::Instant;

fn main() {
    let cases: Vec<(&str, slim_automata::prelude::Network, &str, f64)> = vec![
        (
            "sensor_filter",
            sensor_filter_network(&SensorFilterParams::default()),
            slim_models::GOAL_VAR,
            1.0,
        ),
        ("voting", voting_network(&VotingParams::default()), slim_models::VOTING_GOAL_VAR, 1.0),
        ("repair", repair_network(&RepairParams::default()), slim_models::REPAIR_GOAL_VAR, 2.0),
        ("gps", gps_network(&GpsParams::default()), "gps.measurement", 10.0),
    ];
    const PATHS: u64 = 20_000;
    const ROUNDS: usize = 7;
    for (name, net, goal_var, bound) in &cases {
        let goal = Goal::expr(Expr::var(net.var_id(goal_var).unwrap()));
        let prop = TimedReach::new(goal, *bound);
        let fused = PathGenerator::new(net, &prop, 100_000);
        let reference =
            PathGenerator::with_compile_options(net, &prop, 100_000, &CompileOptions::reference());
        let mut scratch = SimScratch::new();
        let mut strategy = Asap;
        let run = |gen: &PathGenerator, scratch: &mut SimScratch, strategy: &mut Asap| {
            let start = Instant::now();
            let mut steps = 0u64;
            for i in 0..PATHS {
                let mut rng = path_rng(7, i);
                steps += gen.generate_with(scratch, strategy, &mut rng).unwrap().steps;
            }
            (start.elapsed().as_secs_f64(), steps)
        };
        // Warm both.
        run(&fused, &mut scratch, &mut strategy);
        run(&reference, &mut scratch, &mut strategy);
        let mut fused_t = Vec::new();
        let mut ref_t = Vec::new();
        // Interleave rounds so host-noise drift hits both sides equally.
        for _ in 0..ROUNDS {
            fused_t.push(run(&fused, &mut scratch, &mut strategy).0);
            ref_t.push(run(&reference, &mut scratch, &mut strategy).0);
        }
        fused_t.sort_by(f64::total_cmp);
        ref_t.sort_by(f64::total_cmp);
        let f = fused_t[ROUNDS / 2];
        let r = ref_t[ROUNDS / 2];
        println!(
            "{name:>14}: fused {:>9.0} paths/s | reference {:>9.0} paths/s | speedup {:.3}x",
            PATHS as f64 / f,
            PATHS as f64 / r,
            r / f,
        );
    }
}
