//! Regenerates the §IV scaling claim: "the simulation time increases
//! quadratically as the error bound \[shrinks\]" — N = ⌈ln(2/δ)/(2ε²)⌉.
//!
//! ```text
//! cargo run -p slimsim-bench --release --bin epsilon_sweep
//! ```

use slim_models::sensor_filter::{sensor_filter_network, SensorFilterParams, GOAL_VAR};
use slim_stats::Accuracy;
use slimsim_bench::{secs, simulate};
use slimsim_core::prelude::StrategyKind;

fn main() {
    let params = SensorFilterParams { redundancy: 4, ..Default::default() };
    let net = sensor_filter_network(&params);
    let failed = net.var_id(GOAL_VAR).expect("goal variable");
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get());

    println!("ε sweep — sensor–filter n=4, P(◇[0,2] failed), δ=0.05, ASAP, {workers} workers\n");
    println!("{:>8} {:>10} {:>10} {:>12} {:>14}", "ε", "paths", "time s", "P", "time·ε² (≈c)");
    let mut base: Option<f64> = None;
    for epsilon in [0.08, 0.04, 0.02, 0.01, 0.005] {
        let acc = Accuracy::new(epsilon, 0.05).expect("valid accuracy");
        let sim = simulate(&net, failed, 2.0, acc, StrategyKind::Asap, workers);
        let t = sim.time.as_secs_f64();
        let normalized = t * epsilon * epsilon;
        println!(
            "{:>8} {:>10} {:>10} {:>12.5} {:>14.3e}",
            epsilon,
            sim.paths,
            secs(sim.time),
            sim.probability,
            normalized
        );
        if base.is_none() && t > 0.05 {
            base = Some(normalized);
        }
    }
    println!("\nShape check: halving ε quadruples the paths (and, once past fixed");
    println!("overheads, the wall time) — time·ε² approaches a constant.");
}
