//! Ablation for the §III-C parallel-collection protocol: demonstrates the
//! completion-order bias of "accept samples as they arrive" (the paper's
//! \[21\]) and that the buffered round-robin protocol (the paper's \[22\])
//! removes it.
//!
//! Setup: a multi-worker simulation where the *outcome correlates with the
//! completion time* — exactly the situation in statistical model
//! checking, where paths that hit the goal early finish sooner than
//! paths that must run to the time bound. Successful paths take 1 time
//! unit, failing paths take 10. A sequential stopping rule (Gauss) reads
//! the stream:
//!
//! * accept-on-arrival: early samples over-represent successes ⇒ the
//!   stopping rule sees a *biased prefix*;
//! * round-robin rounds: each consumed round is one sample per worker in
//!   a fixed order ⇒ the prefix is exchangeable and unbiased.
//!
//! ```text
//! cargo run -p slimsim-bench --release --bin bias_ablation
//! ```

use slim_stats::estimator::Generator;
use slim_stats::parallel::RoundRobinCollector;
use slim_stats::rng::derive_seed;
use slim_stats::sequential::Gauss;
use slim_stats::Accuracy;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

const TRUE_P: f64 = 0.3;
const FAST: f64 = 1.0; // completion time of a success
const SLOW: f64 = 10.0; // completion time of a failure
const WORKERS: usize = 16;

fn uniform(x: &mut u64) -> f64 {
    *x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    (*x >> 11) as f64 / (1u64 << 53) as f64
}

/// Simulates `WORKERS` workers producing Bernoulli(p) samples whose
/// completion time depends on the outcome, delivering them in completion
/// order. Returns the estimate a sequential Gauss rule reaches under the
/// chosen collection scheme.
fn run(seed: u64, round_robin: bool) -> (f64, u64) {
    let mut gen = Gauss::new(Accuracy::new(0.1, 0.05).expect("valid accuracy"));
    let mut collector = RoundRobinCollector::new(WORKERS);

    // Event queue: (finish_time, worker, outcome).
    let mut heap: BinaryHeap<Reverse<(u64, usize, bool)>> = BinaryHeap::new();
    let mut rngs: Vec<u64> = (0..WORKERS).map(|w| derive_seed(seed, w as u64)).collect();
    let mut clock = [0f64; WORKERS];
    for w in 0..WORKERS {
        let s = uniform(&mut rngs[w]) < TRUE_P;
        clock[w] += if s { FAST } else { SLOW };
        heap.push(Reverse(((clock[w] * 1e6) as u64, w, s)));
    }

    while !gen.is_complete() {
        let Reverse((_, w, outcome)) = heap.pop().expect("workers keep producing");
        if round_robin {
            collector.push(w, outcome);
            for s in collector.drain_rounds() {
                if !gen.is_complete() {
                    gen.add(s);
                }
            }
        } else {
            gen.add(outcome); // accept on arrival — the biased protocol
        }
        // The worker starts its next sample.
        let s = uniform(&mut rngs[w]) < TRUE_P;
        clock[w] += if s { FAST } else { SLOW };
        heap.push(Reverse(((clock[w] * 1e6) as u64, w, s)));
    }
    let e = gen.estimate();
    (e.mean, e.samples)
}

fn main() {
    println!("§III-C collection-bias ablation");
    println!(
        "true p = {TRUE_P}; successes finish in {FAST} t.u., failures in {SLOW} t.u.; {WORKERS} workers"
    );
    println!("sequential Gauss stopping rule (ε = 0.1, δ = 0.05 — small samples,");
    println!("where the arrival-order transient matters), 400 repetitions\n");

    let mut naive_sum = 0.0;
    let mut rr_sum = 0.0;
    let reps = 400;
    for seed in 0..reps {
        let (naive, _) = run(seed, false);
        let (rr, _) = run(seed, true);
        naive_sum += naive;
        rr_sum += rr;
    }
    let naive_mean = naive_sum / reps as f64;
    let rr_mean = rr_sum / reps as f64;
    println!("{:<22} {:>10} {:>12}", "protocol", "mean p̂", "bias");
    println!("{:<22} {:>10.4} {:>+12.4}", "accept-on-arrival", naive_mean, naive_mean - TRUE_P);
    println!("{:<22} {:>10.4} {:>+12.4}", "round-robin rounds", rr_mean, rr_mean - TRUE_P);
    println!("\nAccept-on-arrival over-weights fast (successful) paths in every");
    println!("prefix the stopping rule examines; the round-robin protocol's");
    println!("estimate is centered on the true probability.");
}
