//! Regenerates **Fig. 5** (§V-d): launcher failure probability
//! `P(◇[0,u] failure)` as a function of the time bound `u`, per strategy,
//! for the permanent (left graph) and recoverable (right graph) DPU fault
//! variants.
//!
//! ```text
//! cargo run -p slimsim-bench --release --bin fig5 [-- permanent|recoverable]
//! ```
//!
//! The paper ran with ε = 0.005; we default to ε = 0.02 to keep the
//! regeneration minutes-scale (pass `--paper-accuracy` for the original).

use slim_models::launcher::DpuFaultMode;
use slim_stats::Accuracy;
use slimsim_bench::fig5_series;
use slimsim_core::prelude::StrategyKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paper_accuracy = args.iter().any(|a| a == "--paper-accuracy");
    let accuracy = if paper_accuracy {
        Accuracy::new(0.005, 0.1).expect("paper accuracy") // §V-d parameters
    } else {
        Accuracy::new(0.02, 0.05).expect("default accuracy")
    };
    let which: Vec<DpuFaultMode> = match args.iter().find(|a| !a.starts_with("--")) {
        Some(s) if s == "permanent" => vec![DpuFaultMode::Permanent],
        Some(s) if s == "recoverable" => vec![DpuFaultMode::Recoverable],
        Some(s) if s == "three-class" => vec![DpuFaultMode::ThreeClass],
        _ => vec![DpuFaultMode::Permanent, DpuFaultMode::Recoverable],
    };
    let bounds = [0.5, 1.0, 1.5, 2.0, 2.5, 3.0];
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get());

    for mode in which {
        let label = match mode {
            DpuFaultMode::Permanent => "Fig. 5 LEFT — permanent DPU faults",
            DpuFaultMode::Recoverable => "Fig. 5 RIGHT — recoverable DPU faults",
            DpuFaultMode::ThreeClass => "extension — all three fault classes (§V-c)",
        };
        println!("{label}  ({accuracy}, {workers} workers)");
        print!("{:>6}", "u (h)");
        for s in StrategyKind::ALL {
            print!(" {:>12}", s.to_string());
        }
        println!();
        let series = fig5_series(mode, &bounds, accuracy, workers, 0xF165);
        for &bound in &bounds {
            print!("{bound:>6}");
            for s in StrategyKind::ALL {
                let p = series
                    .iter()
                    .find(|pt| pt.bound == bound && pt.strategy == s)
                    .expect("point exists");
                print!(" {:>12.4}", p.probability);
            }
            println!();
        }
        match mode {
            DpuFaultMode::Permanent => {
                println!("shape check: all four columns coincide (within ε) — no timed");
                println!("non-determinism, so the strategy cannot matter.\n");
            }
            DpuFaultMode::Recoverable => {
                println!("shape check: ASAP (always restarts too early) is the highest");
                println!("curve, MaxTime (never too early) the lowest, with Progressive");
                println!("and Local in between — the paper's ordering.\n");
            }
            DpuFaultMode::ThreeClass => {
                println!("extension: self-healing transients dominate, so every curve");
                println!("sits below the permanent variant; the strategy ordering of");
                println!("the recoverable variant persists through the hot faults.\n");
            }
        }
    }
}
