//! Proves the simulator's zero-allocation steady-state contract.
//!
//! ```text
//! cargo run -p slimsim-bench --release --bin alloc_check
//! ```
//!
//! For each model the check builds a [`PathGenerator`] and one
//! [`SimScratch`], runs warm-up paths so every pooled buffer reaches its
//! steady-state capacity, resets the global allocation counter, runs the
//! measured paths, and requires the counter delta to be **exactly zero**.
//! The batched SoA kernel is gated the same way on every model: one
//! [`BatchScratch`], warm-up batches to steady state, then measured
//! batches that must allocate nothing (the reused output `Vec` included).
//! Any regression that sneaks an allocation into the hot loop — a
//! `clone`, a `Vec` literal, a formatted error on the happy path — fails
//! the process with a nonzero exit code, which CI treats as a hard error.

use slim_automata::prelude::{Expr, Network};
use slim_models::{
    gps_network, repair_network, sensor_filter_network, voting_network, GpsParams, RepairParams,
    SensorFilterParams, VotingParams,
};
use slim_stats::rng::path_rng;
use slimsim_bench::alloc::{self, CountingAllocator};
use slimsim_core::prelude::*;
use std::hint::black_box;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

const WARM_PATHS: u64 = 512;
const MEASURED_PATHS: u64 = 512;

struct Case {
    name: &'static str,
    net: Network,
    goal_var: &'static str,
    bound: f64,
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "sensor_filter",
            net: sensor_filter_network(&SensorFilterParams::default()),
            goal_var: slim_models::GOAL_VAR,
            bound: 1.0,
        },
        Case {
            name: "voting",
            net: voting_network(&VotingParams::default()),
            goal_var: slim_models::VOTING_GOAL_VAR,
            bound: 1.0,
        },
        Case {
            name: "repair",
            net: repair_network(&RepairParams::default()),
            goal_var: slim_models::REPAIR_GOAL_VAR,
            bound: 2.0,
        },
        Case {
            name: "gps",
            net: gps_network(&GpsParams::default()),
            goal_var: "gps.measurement",
            bound: 10.0,
        },
    ]
}

fn main() {
    let mut failures = 0usize;
    let mut gated = 0usize;
    for case in cases() {
        let goal = Goal::expr(Expr::var(case.net.var_id(case.goal_var).expect("goal variable")));
        let property = TimedReach::new(goal, case.bound);
        let gen = PathGenerator::new(&case.net, &property, 100_000);
        // Every well-typed guard compiles to solver bytecode; any AST
        // fallback in a zoo model is a compiler regression and fails the
        // gate outright.
        let fallbacks = gen.tables().fallback_guards();
        let mut strategy = Asap;
        let mut scratch = SimScratch::new();

        for i in 0..WARM_PATHS {
            let mut rng = path_rng(1, i);
            black_box(gen.generate_with(&mut scratch, &mut strategy, &mut rng).unwrap());
        }

        alloc::reset();
        let mut steps = 0u64;
        for i in WARM_PATHS..WARM_PATHS + MEASURED_PATHS {
            let mut rng = path_rng(1, i);
            let out = gen.generate_with(&mut scratch, &mut strategy, &mut rng).unwrap();
            steps += out.steps;
            black_box(out);
        }
        let (calls, bytes) = alloc::counts();

        // The batched SoA kernel under the same contract: warm every
        // lane (and the reused output buffer) to steady state, then
        // require zero allocations across the measured batches.
        const LANES: u64 = 32;
        let mut batch_scratch = BatchScratch::new();
        let mut batch = Vec::new();
        let mut run_batches = |from: u64, to: u64, steps: &mut u64| {
            let mut i = from;
            while i < to {
                let count = (to - i).min(LANES) as usize;
                gen.generate_batch_with(
                    &mut batch_scratch,
                    &mut strategy,
                    1,
                    i,
                    1,
                    count,
                    None,
                    &mut batch,
                );
                for r in batch.drain(..) {
                    let out = r.unwrap();
                    *steps += out.steps;
                    black_box(out);
                }
                i += count as u64;
            }
        };
        let mut batch_steps = 0u64;
        run_batches(0, WARM_PATHS, &mut batch_steps);
        alloc::reset();
        batch_steps = 0;
        run_batches(WARM_PATHS, WARM_PATHS + MEASURED_PATHS, &mut batch_steps);
        let (batch_calls, batch_bytes) = alloc::counts();

        let verdict = if fallbacks > 0 {
            failures += 1;
            format!("FAIL ({fallbacks} AST-fallback guards)")
        } else if calls == 0 && batch_calls == 0 {
            gated += 1;
            "OK".to_string()
        } else {
            failures += 1;
            "FAIL".to_string()
        };
        println!(
            "{:>14}: scalar {MEASURED_PATHS} paths, {steps} steps — {calls} allocations \
             ({bytes} bytes); batched {MEASURED_PATHS} paths, {batch_steps} steps — \
             {batch_calls} allocations ({batch_bytes} bytes) [{verdict}]",
            case.name
        );
    }

    if failures > 0 {
        eprintln!("alloc_check: {failures} model(s) allocated in the steady-state hot path");
        std::process::exit(1);
    }
    if gated == 0 {
        eprintln!("alloc_check: no fully-compiled model exercised the zero-allocation gate");
        std::process::exit(1);
    }
    println!("alloc_check: steady-state hot path is allocation-free ({gated} model(s) gated)");
}
