//! Emits the machine-readable simulator bench artifact
//! (`BENCH_simulator.json`) used to track throughput across commits.
//!
//! ```text
//! cargo run -p slimsim-bench --release --bin bench_report \
//!     [-- <out-dir> [--workers N] [--repeat K]]
//! ```
//!
//! `--workers N` pins the worker-thread count (default: available
//! parallelism capped at 4). The committed baseline is recorded at
//! `--workers 1` so throughput deltas measure per-core work, not the
//! host's core count. `--repeat K` (default 1) runs each model's timed
//! pass `K` times and records the **median** pass (by wall time): each
//! pass takes only a few milliseconds, so on shared hosts a single pass
//! measures scheduler luck as much as the simulator. The median is
//! robust against a slow scheduler window in either direction — unlike
//! best-of-`K`, one anomalously *fast* pass cannot skew the artifact —
//! and the per-pass spread is recorded alongside
//! (`<model>.paths_per_sec_min` / `_max`) so `bench_compare` can report
//! how noisy the host was.
//!
//! Runs the instrumented simulator on the three untimed conformance
//! models (sensor–filter, voting, repairable pair) plus the timed GPS
//! model, and records per-model throughput, sample counts and estimates
//! through a [`slim_obs::BenchReport`]. The artifact lands in `<out-dir>`
//! (default: the current directory).

use slim_models::{
    gps_network, repair_network, sensor_filter_network, voting_network, GpsParams, RepairParams,
    SensorFilterParams, VotingParams,
};
use slim_obs::BenchReport;
use slim_stats::Accuracy;
use slimsim_core::prelude::*;

struct Case {
    name: &'static str,
    net: slim_automata::prelude::Network,
    goal_var: &'static str,
    bound: f64,
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "sensor_filter",
            net: sensor_filter_network(&SensorFilterParams::default()),
            goal_var: slim_models::GOAL_VAR,
            bound: 1.0,
        },
        Case {
            name: "voting",
            net: voting_network(&VotingParams::default()),
            goal_var: slim_models::VOTING_GOAL_VAR,
            bound: 1.0,
        },
        Case {
            name: "repair",
            net: repair_network(&RepairParams::default()),
            goal_var: slim_models::REPAIR_GOAL_VAR,
            bound: 2.0,
        },
        Case {
            name: "gps",
            net: gps_network(&GpsParams::default()),
            goal_var: "gps.measurement",
            bound: 10.0,
        },
    ]
}

fn main() {
    let mut out_dir = ".".to_string();
    let mut workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(4);
    let mut repeat = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--workers" || arg == "--repeat" {
            let n = args.next().and_then(|v| v.parse::<usize>().ok());
            match n {
                Some(n) if n >= 1 => {
                    if arg == "--workers" {
                        workers = n;
                    } else {
                        repeat = n;
                    }
                }
                _ => {
                    eprintln!("bench_report: {arg} expects a positive integer");
                    std::process::exit(2);
                }
            }
        } else {
            out_dir = arg;
        }
    }
    let config = SimConfig::default()
        .with_accuracy(Accuracy::new(0.02, 0.05).expect("valid accuracy"))
        .with_strategy(StrategyKind::Asap)
        .with_workers(workers);

    let mut report = BenchReport::new("simulator");
    report.push("config.epsilon", config.accuracy.epsilon(), "1");
    report.push("config.delta", config.accuracy.delta(), "1");
    report.push("config.workers", config.workers as f64, "threads");
    report.push("config.batch_lanes", config.batch_lanes as f64, "lanes");
    report.push("config.repeat", repeat as f64, "passes");

    for case in cases() {
        let goal =
            Goal::expr(slim_automata::prelude::Expr::var(case.net.var_id(case.goal_var).unwrap()));
        let property = TimedReach::new(goal, case.bound);
        // Untimed warm-up pass: faults in the binary's pages, grows the
        // per-worker scratch to steady-state capacity and settles branch
        // predictors, so the timed pass below measures sustained
        // throughput rather than process cold-start.
        analyze_observed(&case.net, &property, &config, None).expect("bench warm-up succeeds");
        // Median-of-`repeat`: run every timed pass, keep the pass with
        // the median wall time (lower median for even `K`). The passes
        // are identical work — same seed, same sample count — so the
        // spread between them is host noise; the median is what CI
        // should compare, and the min/max entries record the spread.
        let mut passes: Vec<(AnalysisResult, SimObserver)> = Vec::with_capacity(repeat);
        for _ in 0..repeat {
            let obs = SimObserver::new(config.workers);
            let result = analyze_observed(&case.net, &property, &config, Some(&obs))
                .expect("bench analysis succeeds");
            passes.push((result, obs));
        }
        passes.sort_by_key(|(a, _)| a.wall);
        let pps = |r: &AnalysisResult| {
            let secs = r.wall.as_secs_f64();
            if secs > 0.0 {
                r.estimate.samples as f64 / secs
            } else {
                0.0
            }
        };
        // Fastest pass = max paths/s; slowest = min.
        let pps_max = pps(&passes.first().expect("repeat >= 1").0);
        let pps_min = pps(&passes.last().expect("repeat >= 1").0);
        let (result, obs) = passes.remove((passes.len() - 1) / 2);
        let wall_secs = result.wall.as_secs_f64();
        let samples = result.estimate.samples;
        let prefix = case.name;
        report.push(format!("{prefix}.paths"), samples as f64, "paths");
        report.push(format!("{prefix}.wall_ms"), wall_secs * 1e3, "ms");
        report.push(format!("{prefix}.paths_per_sec"), pps(&result), "paths/s");
        report.push(format!("{prefix}.paths_per_sec_min"), pps_min, "paths/s");
        report.push(format!("{prefix}.paths_per_sec_max"), pps_max, "paths/s");
        report.push(format!("{prefix}.probability"), result.estimate.mean, "1");
        report.push(format!("{prefix}.mean_steps_per_path"), result.stats.mean_steps(), "steps");
        report.push(
            format!("{prefix}.approx_memory_kib"),
            result.approx_memory_bytes as f64 / 1024.0,
            "KiB",
        );
        let snap = obs.snapshot();
        report.push(
            format!("{prefix}.path_micros_p99"),
            snap.histograms["sim.path_micros"].p99,
            "us",
        );
        eprintln!(
            "{prefix:>14}: {samples} paths in {:.1} ms ({:.0} paths/s median, \
             spread {:.0}..{:.0} over {repeat} pass(es)), P = {:.5}",
            wall_secs * 1e3,
            samples as f64 / wall_secs.max(1e-9),
            pps_min,
            pps_max,
            result.estimate.mean,
        );
    }

    let path = std::path::Path::new(&out_dir).join(report.filename());
    std::fs::write(&path, report.to_json().to_pretty() + "\n").expect("write bench artifact");
    eprintln!("wrote {}", path.display());
}
