//! Regenerates **Table I** (§IV): CTMC pipeline vs Monte Carlo simulator
//! on the sensor–filter benchmark over model size.
//!
//! ```text
//! cargo run -p slimsim-bench --release --bin table1 [-- sizes...]
//! ```
//!
//! Expected shape (the paper's, not its absolute numbers): the CTMC
//! columns blow up with size and eventually exhaust the state limit; the
//! simulator's time and memory stay (nearly) flat.

use slim_stats::Accuracy;
use slimsim_bench::{mib, secs, table1_row, Table1Config};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sizes: Vec<usize> = if args.is_empty() {
        vec![2, 4, 6, 8, 10]
    } else {
        args.iter().filter_map(|a| a.parse().ok()).collect()
    };
    let cfg = Table1Config {
        // ε = 0.01, δ = 0.05 — the accuracy used for the whole table.
        accuracy: Accuracy::new(0.01, 0.05).expect("valid accuracy"),
        ..Default::default()
    };
    println!("Table I — sensor–filter benchmark, P(◇[0,{}] failed), {}", cfg.horizon, cfg.accuracy);
    println!(
        "(simulator: ASAP strategy, {} workers; CTMC state limit {})\n",
        cfg.workers, cfg.state_limit
    );
    println!(
        "{:>4} | {:>9} {:>7} {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9} {:>8}",
        "size",
        "states",
        "lumped",
        "ctmc s",
        "ctmc MiB",
        "ctmc P",
        "sim s",
        "sim MiB",
        "sim P",
        "paths"
    );
    println!("{}", "-".repeat(108));
    for size in sizes {
        let row = table1_row(size, &cfg);
        match &row.ctmc {
            Ok(c) => println!(
                "{:>4} | {:>9} {:>7} {:>9} {:>9} {:>9.5} | {:>9} {:>9} {:>9.5} {:>8}",
                row.size,
                c.states,
                c.lumped,
                secs(c.time),
                mib(c.memory_bytes),
                c.probability,
                secs(row.sim.time),
                mib(row.sim.memory_bytes),
                row.sim.probability,
                row.sim.paths
            ),
            Err(reason) => println!(
                "{:>4} | {:>46} | {:>9} {:>9} {:>9.5} {:>8}",
                row.size,
                reason,
                secs(row.sim.time),
                mib(row.sim.memory_bytes),
                row.sim.probability,
                row.sim.paths
            ),
        }
    }
    println!("\nShape check: CTMC states grow ~4^size; its time/memory follow; the");
    println!("simulator columns stay flat (its cost is per-path, not per-state).");
}
