//! A minimal, dependency-free micro-benchmark harness for the
//! `[[bench]]` targets (`harness = false`).
//!
//! Each benchmark calibrates an iteration count from a short warm-up,
//! takes a handful of timed samples, and reports the median time per
//! iteration. `cargo bench -- <filter>` runs only matching benchmarks;
//! `cargo test --benches` compiles them and runs each body once, so CI
//! keeps the benches honest without paying measurement time.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall-clock time for one measurement sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(60);
/// Timed samples per benchmark (the median is reported).
const SAMPLES: usize = 5;

/// Collects and prints benchmark measurements.
#[derive(Debug)]
pub struct Harness {
    filter: Option<String>,
    test_mode: bool,
    group: String,
}

impl Harness {
    /// Builds a harness from the process arguments (`[filter]`,
    /// `--test`); ignores the flags cargo's bench runner passes.
    pub fn from_args() -> Harness {
        let mut filter = None;
        let mut test_mode = false;
        for a in std::env::args().skip(1) {
            if a == "--test" {
                test_mode = true;
            } else if !a.starts_with('-') {
                filter = Some(a);
            }
        }
        Harness { filter, test_mode, group: String::new() }
    }

    /// Sets the group prefix for subsequent benchmark names.
    pub fn group(&mut self, name: &str) {
        self.group = name.to_string();
    }

    /// Measures `f`, reporting median ns/iteration under `name`.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) {
        let full =
            if self.group.is_empty() { name.to_string() } else { format!("{}/{name}", self.group) };
        if let Some(fi) = &self.filter {
            if !full.contains(fi.as_str()) {
                return;
            }
        }
        if self.test_mode {
            // `cargo test --benches`: run once for correctness only.
            black_box(f());
            println!("test {full} ... ok");
            return;
        }

        // Warm-up: find how many iterations fill the sample target.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let el = t.elapsed();
            if el >= SAMPLE_TARGET / 4 || iters >= 1 << 30 {
                let per = el.as_nanos().max(1) as f64 / iters as f64;
                iters = ((SAMPLE_TARGET.as_nanos() as f64 / per).ceil() as u64).max(1);
                break;
            }
            iters *= 2;
        }

        let mut samples: Vec<f64> = (0..SAMPLES)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                t.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        let (lo, hi) = (samples[0], samples[samples.len() - 1]);
        println!("{full:<48} {:>12}/iter  (range {} … {})", fmt_ns(median), fmt_ns(lo), fmt_ns(hi));
    }
}

/// Formats nanoseconds human-readably.
fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_scales() {
        assert_eq!(fmt_ns(12.34), "12.3 ns");
        assert_eq!(fmt_ns(12_340.0), "12.34 µs");
        assert_eq!(fmt_ns(12_340_000.0), "12.34 ms");
        assert_eq!(fmt_ns(2_500_000_000.0), "2.50 s");
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut h = Harness { filter: Some("other".into()), test_mode: true, group: String::new() };
        let mut ran = false;
        h.bench("this", || ran = true);
        assert!(!ran);
        h.bench("other/x", || ran = true);
        assert!(ran);
    }
}
