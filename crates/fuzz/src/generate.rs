//! Seeded, grammar-directed generator of SLIM models.
//!
//! [`generate`] maps a `(seed, index, GenParams)` triple to one SLIM model
//! deterministically: the same triple yields a byte-identical `.slim` text
//! on every run and platform, so a failing model is fully identified by
//! three numbers plus the knob fingerprint.
//!
//! The generator works at the [`slim_lang::ast`] level and stays inside
//! the validity envelope enforced by lowering and network validation:
//! bounded integers are written through `min`/`max` clamps, clock guards
//! and invariants stay affine, no location mixes guarded and Markovian
//! transitions, Markovian locations carry trivial invariants, every rate
//! is a strictly positive dyadic, and every transition entering a
//! location with a clock invariant resets that clock so the invariant
//! holds on entry. A generated model that fails to lower, validate, or
//! pass the deny-level lints is itself an oracle failure — the harness
//! tests the pipeline, not the operator's patience.
//!
//! Half the components (by default) come from a small distributed-systems
//! vocabulary — servers with exponential failure/repair, lossy links with
//! delivery/loss races, bounded queues — seeding the reusable component
//! library named on the roadmap; the rest are free-form automata drawn
//! from the full grammar (τ/Markovian/sync transitions, urgency, clock
//! windows, data flows, error models with fault injections).

use slim_lang::ast::{
    Category, ComponentImpl, ComponentType, Connection, DataType, Direction, ErrorModel,
    ErrorState, ErrorTransition, ErrorTrigger, Expr, FaultInjection, Feature, FlowDef, Literal,
    ModeDecl, Model, QName, Subcomponent, TransitionDecl, Trigger,
};
use slim_lang::token::Pos;
use slim_lang::{lower, pretty, LangError};
use slim_stats::rng::path_rng;

use crate::params::GenParams;
use crate::sample::{chance, f64_in, i64_in, pick, rate_in, usize_in, StdRng};

/// How the reachability goal of a generated model is expressed.
///
/// Both forms are plain text so a corpus entry can carry them alongside
/// the `.slim` source and rebuild the exact property on replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GoalSpec {
    /// A Boolean network variable by full path (e.g. `root.failed`).
    Var(String),
    /// A `(automaton path, location name)` atom (e.g. `root.c0` / `bad`).
    Loc(String, String),
}

impl GoalSpec {
    /// One-line textual form, `var <path>` or `loc <automaton> <location>`.
    pub fn describe(&self) -> String {
        match self {
            GoalSpec::Var(v) => format!("var {v}"),
            GoalSpec::Loc(a, l) => format!("loc {a} {l}"),
        }
    }

    /// Parses [`Self::describe`]'s output back.
    pub fn parse(s: &str) -> Option<GoalSpec> {
        let mut it = s.split_whitespace();
        match (it.next()?, it.next(), it.next()) {
            ("var", Some(v), None) => Some(GoalSpec::Var(v.to_string())),
            ("loc", Some(a), Some(l)) => Some(GoalSpec::Loc(a.to_string(), l.to_string())),
            _ => None,
        }
    }
}

/// One generated model: source text, parsed form, goal, and provenance.
#[derive(Debug, Clone)]
pub struct GeneratedModel {
    /// Campaign master seed.
    pub seed: u64,
    /// Index of this model within the campaign.
    pub index: u64,
    /// Pretty-printed `.slim` source (the canonical form; byte-identical
    /// for identical `(seed, index, params)`).
    pub source: String,
    /// The model as built (before any print/parse round-trip).
    pub model: Model,
    /// Root component type name.
    pub root_type: String,
    /// Root implementation name.
    pub root_impl: String,
    /// The timed-reachability goal.
    pub goal: GoalSpec,
    /// Time bound of the property `P(◇[0, bound] goal)`.
    pub bound: f64,
}

impl GeneratedModel {
    /// Lowers the model to its automata network (root instance `root`).
    ///
    /// # Errors
    /// Propagates lowering errors; for generator-produced models any
    /// error here is a harness bug and oracles report it as such.
    pub fn network(&self) -> Result<slim_automata::network::Network, LangError> {
        lower(&self.model, &self.root_type, &self.root_impl, "root").map(|l| l.network)
    }

    /// Rebuilds a model from stored corpus fields. The source is parsed
    /// and re-printed, so `source` ends up in canonical form.
    ///
    /// # Errors
    /// Returns the parse error text when `source` is not valid SLIM, or
    /// a description when no root system can be identified.
    pub fn from_source(
        source: &str,
        root_type: &str,
        root_impl: &str,
        goal: GoalSpec,
        bound: f64,
    ) -> Result<GeneratedModel, String> {
        let model = slim_lang::parse(source).map_err(|e| e.to_string())?;
        model
            .find_impl(root_type, root_impl)
            .ok_or_else(|| format!("no implementation `{root_type}.{root_impl}` in source"))?;
        Ok(GeneratedModel {
            seed: 0,
            index: 0,
            source: pretty(&model),
            model,
            root_type: root_type.to_string(),
            root_impl: root_impl.to_string(),
            goal,
            bound,
        })
    }

    /// Replaces the AST and re-prints the source (shrinker helper).
    pub fn with_model(&self, model: Model) -> GeneratedModel {
        GeneratedModel { source: pretty(&model), model, ..self.clone() }
    }
}

/// Generates the model identified by `(seed, index)` under `params`.
pub fn generate(seed: u64, index: u64, params: &GenParams) -> GeneratedModel {
    let mut rng = path_rng(seed, index);
    let mut g = Gen { rng: &mut rng, p: params };
    let (model, root_type, root_impl, goal, bound) = g.model();
    let source = pretty(&model);
    GeneratedModel { seed, index, source, model, root_type, root_impl, goal, bound }
}

/// A goal atom contributed by one component, phrased over its ports.
enum FailAtom {
    /// A Boolean out port; `bad_when_true` gives the failure polarity.
    BoolPort(String, bool),
    /// An integer out port compared `>= threshold`.
    IntGe(String, i64),
}

/// One generated component plus the wiring metadata the top level needs.
struct CompBuild {
    ty: ComponentType,
    im: ComponentImpl,
    out_events: Vec<String>,
    in_events: Vec<String>,
    in_bools: Vec<String>,
    bool_outs: Vec<String>,
    fail_atoms: Vec<FailAtom>,
    locs: Vec<String>,
}

struct Gen<'a> {
    rng: &'a mut StdRng,
    p: &'a GenParams,
}

const P: Pos = Pos::START;

fn q(segs: &[&str]) -> QName {
    QName(segs.iter().map(|s| (*s).to_string()).collect())
}

fn lit(l: Literal) -> Expr {
    Expr::Lit(l)
}

fn name1(s: &str) -> Expr {
    Expr::Name(QName::simple(s))
}

fn bin(op: slim_lang::ast::BinOp, a: Expr, b: Expr) -> Expr {
    Expr::Bin(op, Box::new(a), Box::new(b))
}

use slim_lang::ast::BinOp;

impl Gen<'_> {
    fn model(&mut self) -> (Model, String, String, GoalSpec, f64) {
        let k = usize_in(self.rng, self.p.min_components, self.p.max_components);
        let comps: Vec<CompBuild> = (0..k).map(|i| self.component(i)).collect();

        let inst_names: Vec<String> = (0..k).map(|i| format!("c{i}")).collect();

        // Event wiring: each in-event port synchronizes with a random
        // out-event port (preferably of another component) with
        // probability `sync_prob`. Multiple consumers of one producer
        // merge into a single multi-party action in the network.
        let mut connections = Vec::new();
        let producers: Vec<(usize, String)> = comps
            .iter()
            .enumerate()
            .flat_map(|(i, c)| c.out_events.iter().map(move |e| (i, e.clone())))
            .collect();
        for (i, c) in comps.iter().enumerate() {
            for ev in &c.in_events {
                if producers.is_empty() || !chance(self.rng, self.p.sync_prob) {
                    continue;
                }
                let others: Vec<&(usize, String)> =
                    producers.iter().filter(|(j, _)| *j != i).collect();
                let (j, out) = if others.is_empty() {
                    pick(self.rng, &producers).clone()
                } else {
                    (*pick(self.rng, &others)).clone()
                };
                connections.push(Connection {
                    from: q(&[&inst_names[j], &out]),
                    to: q(&[&inst_names[i], ev]),
                });
            }
        }

        // Data wiring: each in-data Boolean port may read another
        // component's Boolean out port (becomes a flow after lowering).
        let bool_sources: Vec<(usize, String)> = comps
            .iter()
            .enumerate()
            .flat_map(|(i, c)| c.bool_outs.iter().map(move |p| (i, p.clone())))
            .collect();
        for (i, c) in comps.iter().enumerate() {
            for port in &c.in_bools {
                let others: Vec<&(usize, String)> =
                    bool_sources.iter().filter(|(j, _)| *j != i).collect();
                if others.is_empty() || !chance(self.rng, self.p.sync_prob) {
                    continue;
                }
                let (j, out) = (*pick(self.rng, &others)).clone();
                connections.push(Connection {
                    from: q(&[&inst_names[j], &out]),
                    to: q(&[&inst_names[i], port]),
                });
            }
        }

        // Goal: an `or` over a random non-empty subset of the components'
        // failure atoms, defined as a flow into `root.failed` — or, with
        // probability `goal_loc_prob` (and always when no component
        // contributes an atom), a location atom on a random component.
        let atoms: Vec<(usize, &FailAtom)> = comps
            .iter()
            .enumerate()
            .flat_map(|(i, c)| c.fail_atoms.iter().map(move |a| (i, a)))
            .collect();
        let mut flows = Vec::new();
        let goal = if atoms.is_empty() || chance(self.rng, self.p.goal_loc_prob) {
            let i = usize_in(self.rng, 0, k - 1);
            let loc = pick(self.rng, &comps[i].locs).clone();
            GoalSpec::Loc(format!("root.{}", inst_names[i]), loc)
        } else {
            let mut expr: Option<Expr> = None;
            for (i, atom) in &atoms {
                if expr.is_some() && !chance(self.rng, 0.7) {
                    continue;
                }
                let inst = inst_names[*i].as_str();
                let a = match atom {
                    FailAtom::BoolPort(port, true) => Expr::Name(q(&[inst, port])),
                    FailAtom::BoolPort(port, false) => {
                        Expr::Not(Box::new(Expr::Name(q(&[inst, port]))))
                    }
                    FailAtom::IntGe(port, t) => {
                        bin(BinOp::Ge, Expr::Name(q(&[inst, port])), lit(Literal::Int(*t)))
                    }
                };
                expr = Some(match expr.take() {
                    None => a,
                    Some(e) => bin(BinOp::Or, e, a),
                });
            }
            flows.push(FlowDef {
                target: QName::simple("failed"),
                expr: expr.expect("atoms checked non-empty"),
            });
            GoalSpec::Var("root.failed".to_string())
        };

        let top_ty = ComponentType {
            category: Category::System,
            name: "Top".to_string(),
            features: if flows.is_empty() {
                Vec::new()
            } else {
                vec![Feature {
                    name: "failed".to_string(),
                    direction: Direction::Out,
                    data: Some(DataType::Bool),
                    default: Some(Literal::Bool(false)),
                }]
            },
            pos: P,
        };
        let top_im = ComponentImpl {
            category: Category::System,
            name: ("Top".to_string(), "Gen".to_string()),
            subcomponents: comps
                .iter()
                .enumerate()
                .map(|(i, c)| Subcomponent::Instance {
                    name: inst_names[i].clone(),
                    category: c.ty.category,
                    impl_ref: (c.ty.name.clone(), c.im.name.1.clone()),
                    pos: P,
                })
                .collect(),
            connections,
            flows,
            modes: Vec::new(),
            transitions: Vec::new(),
            pos: P,
        };

        let mut model = Model {
            types: vec![top_ty],
            impls: vec![top_im],
            error_models: Vec::new(),
            injections: Vec::new(),
        };
        for c in &comps {
            model.types.push(c.ty.clone());
            model.impls.push(c.im.clone());
        }

        // Model extension (§II-D): weave an error model over a component
        // that exposes a Boolean out port the injection can corrupt.
        if chance(self.rng, self.p.injection_prob) {
            let targets: Vec<(usize, String)> = comps
                .iter()
                .enumerate()
                .filter_map(|(i, c)| c.bool_outs.first().map(|p| (i, p.clone())))
                .collect();
            if !targets.is_empty() {
                let (i, port) = pick(self.rng, &targets).clone();
                let bad = match comps[i].fail_atoms.iter().find(|a| match a {
                    FailAtom::BoolPort(p, _) => p == &port,
                    FailAtom::IntGe(..) => false,
                }) {
                    Some(FailAtom::BoolPort(_, bad_when_true)) => *bad_when_true,
                    _ => true,
                };
                let (em, inj) = self.error_model(&inst_names[i], &port, bad);
                model.error_models.push(em);
                model.injections.push(inj);
            }
        }

        let bound = (f64_in(self.rng, 0.5, 8.0) * 4.0).round().max(1.0) / 4.0;
        (model, "Top".to_string(), "Gen".to_string(), goal, bound)
    }

    fn component(&mut self, idx: usize) -> CompBuild {
        if chance(self.rng, self.p.vocabulary_prob) {
            match usize_in(self.rng, 0, 2) {
                0 => self.server(idx),
                1 => self.link(idx),
                _ => self.queue(idx),
            }
        } else {
            self.worker(idx)
        }
    }

    // ---- vocabulary: server with exponential failure/repair ----

    fn server(&mut self, idx: usize) -> CompBuild {
        let ty_name = format!("Srv{idx}");
        let lambda_f = rate_in(self.rng, self.p.rate_range.0, self.p.rate_range.1);
        let mut features = vec![Feature {
            name: "up".to_string(),
            direction: Direction::Out,
            data: Some(DataType::Bool),
            default: Some(Literal::Bool(true)),
        }];
        let timed_repair = chance(self.rng, 0.5);
        let mut out_events = Vec::new();
        let mut subcomponents = Vec::new();
        let mut modes = vec![ModeDecl {
            name: "ok".to_string(),
            initial: true,
            invariant: None,
            derivatives: Vec::new(),
            pos: P,
        }];
        let mut transitions = Vec::new();
        if timed_repair {
            // Deterministic repair window: fail at rate λf, repair within
            // `[r0, r]` of wall time (guarded escape under an invariant).
            let r = f64_in(self.rng, 1.0, 8.0).round().max(1.0);
            let r0 = (r * f64_in(self.rng, 0.25, 1.0) * 4.0).round().max(1.0) / 4.0;
            let alarm = chance(self.rng, 0.5);
            if alarm {
                features.push(Feature {
                    name: "alarm".to_string(),
                    direction: Direction::Out,
                    data: None,
                    default: None,
                });
                out_events.push("alarm".to_string());
            }
            subcomponents.push(Subcomponent::Data {
                name: "t".to_string(),
                ty: DataType::Clock,
                init: None,
                pos: P,
            });
            modes.push(ModeDecl {
                name: "down".to_string(),
                initial: false,
                invariant: Some(bin(BinOp::Le, name1("t"), lit(Literal::Real(r)))),
                derivatives: Vec::new(),
                pos: P,
            });
            transitions.push(TransitionDecl {
                from: "ok".to_string(),
                urgent: false,
                trigger: Trigger::Rate(lambda_f),
                guard: None,
                effects: vec![
                    (QName::simple("up"), lit(Literal::Bool(false))),
                    (QName::simple("t"), lit(Literal::Real(0.0))),
                ],
                to: "down".to_string(),
                pos: P,
            });
            transitions.push(TransitionDecl {
                from: "down".to_string(),
                urgent: chance(self.rng, self.p.urgent_prob),
                trigger: if alarm {
                    Trigger::Port(QName::simple("alarm"))
                } else {
                    Trigger::Internal
                },
                guard: Some(bin(BinOp::Ge, name1("t"), lit(Literal::Real(r0.min(r))))),
                effects: vec![(QName::simple("up"), lit(Literal::Bool(true)))],
                to: "ok".to_string(),
                pos: P,
            });
        } else {
            let lambda_r = rate_in(self.rng, self.p.rate_range.0, self.p.rate_range.1);
            modes.push(ModeDecl {
                name: "down".to_string(),
                initial: false,
                invariant: None,
                derivatives: Vec::new(),
                pos: P,
            });
            transitions.push(TransitionDecl {
                from: "ok".to_string(),
                urgent: false,
                trigger: Trigger::Rate(lambda_f),
                guard: None,
                effects: vec![(QName::simple("up"), lit(Literal::Bool(false)))],
                to: "down".to_string(),
                pos: P,
            });
            transitions.push(TransitionDecl {
                from: "down".to_string(),
                urgent: false,
                trigger: Trigger::Rate(lambda_r),
                guard: None,
                effects: vec![(QName::simple("up"), lit(Literal::Bool(true)))],
                to: "ok".to_string(),
                pos: P,
            });
        }
        CompBuild {
            ty: ComponentType {
                category: Category::Process,
                name: ty_name.clone(),
                features,
                pos: P,
            },
            im: ComponentImpl {
                category: Category::Process,
                name: (ty_name, "Impl".to_string()),
                subcomponents,
                connections: Vec::new(),
                flows: Vec::new(),
                modes,
                transitions,
                pos: P,
            },
            out_events,
            in_events: Vec::new(),
            in_bools: Vec::new(),
            bool_outs: vec!["up".to_string()],
            fail_atoms: vec![FailAtom::BoolPort("up".to_string(), false)],
            locs: vec!["ok".to_string(), "down".to_string()],
        }
    }

    // ---- vocabulary: lossy link with delivery/loss race ----

    fn link(&mut self, idx: usize) -> CompBuild {
        let ty_name = format!("Lnk{idx}");
        let lambda_d = rate_in(self.rng, self.p.rate_range.0, self.p.rate_range.1);
        let lambda_l = rate_in(self.rng, self.p.rate_range.0, self.p.rate_range.1);
        let d = f64_in(self.rng, 1.0, 6.0).round().max(1.0);
        let d0 = (d * f64_in(self.rng, 0.1, 0.9) * 4.0).round().max(1.0) / 4.0;
        let lost_cap = i64_in(self.rng, 2, 4);
        let count_losses = chance(self.rng, 0.7);
        let mut features = vec![
            Feature {
                name: "snd".to_string(),
                direction: Direction::In,
                data: None,
                default: None,
            },
            Feature {
                name: "rcv".to_string(),
                direction: Direction::Out,
                data: None,
                default: None,
            },
        ];
        let mut fail_atoms = Vec::new();
        if count_losses {
            features.push(Feature {
                name: "lost".to_string(),
                direction: Direction::Out,
                data: Some(DataType::Int(Some((0, lost_cap)))),
                default: Some(Literal::Int(0)),
            });
            fail_atoms.push(FailAtom::IntGe("lost".to_string(), i64_in(self.rng, 1, lost_cap)));
        }
        let clamp_inc = bin(
            BinOp::Min,
            bin(BinOp::Add, name1("lost"), lit(Literal::Int(1))),
            lit(Literal::Int(lost_cap)),
        );
        let modes = vec![
            ModeDecl {
                name: "idle".to_string(),
                initial: true,
                invariant: None,
                derivatives: Vec::new(),
                pos: P,
            },
            ModeDecl {
                name: "xfer".to_string(),
                initial: false,
                invariant: None,
                derivatives: Vec::new(),
                pos: P,
            },
            ModeDecl {
                name: "busy".to_string(),
                initial: false,
                invariant: Some(bin(BinOp::Le, name1("t"), lit(Literal::Real(d)))),
                derivatives: Vec::new(),
                pos: P,
            },
        ];
        let mut transitions = vec![
            TransitionDecl {
                from: "idle".to_string(),
                urgent: false,
                trigger: Trigger::Port(QName::simple("snd")),
                guard: None,
                effects: vec![(QName::simple("t"), lit(Literal::Real(0.0)))],
                to: "xfer".to_string(),
                pos: P,
            },
            TransitionDecl {
                from: "xfer".to_string(),
                urgent: false,
                trigger: Trigger::Rate(lambda_d),
                guard: None,
                effects: vec![(QName::simple("t"), lit(Literal::Real(0.0)))],
                to: "busy".to_string(),
                pos: P,
            },
            TransitionDecl {
                from: "busy".to_string(),
                urgent: chance(self.rng, self.p.urgent_prob),
                trigger: Trigger::Port(QName::simple("rcv")),
                guard: Some(bin(BinOp::Ge, name1("t"), lit(Literal::Real(d0.min(d))))),
                effects: Vec::new(),
                to: "idle".to_string(),
                pos: P,
            },
        ];
        let mut loss = TransitionDecl {
            from: "xfer".to_string(),
            urgent: false,
            trigger: Trigger::Rate(lambda_l),
            guard: None,
            effects: Vec::new(),
            to: "idle".to_string(),
            pos: P,
        };
        if count_losses {
            loss.effects.push((QName::simple("lost"), clamp_inc));
        }
        transitions.push(loss);
        CompBuild {
            ty: ComponentType { category: Category::Bus, name: ty_name.clone(), features, pos: P },
            im: ComponentImpl {
                category: Category::Bus,
                name: (ty_name, "Impl".to_string()),
                subcomponents: vec![Subcomponent::Data {
                    name: "t".to_string(),
                    ty: DataType::Clock,
                    init: None,
                    pos: P,
                }],
                connections: Vec::new(),
                flows: Vec::new(),
                modes,
                transitions,
                pos: P,
            },
            out_events: vec!["rcv".to_string()],
            in_events: vec!["snd".to_string()],
            in_bools: Vec::new(),
            bool_outs: Vec::new(),
            fail_atoms,
            locs: vec!["idle".to_string(), "xfer".to_string(), "busy".to_string()],
        }
    }

    // ---- vocabulary: bounded queue ----

    fn queue(&mut self, idx: usize) -> CompBuild {
        let ty_name = format!("Que{idx}");
        let cap = i64_in(self.rng, 2, 5);
        let features = vec![
            Feature {
                name: "enq".to_string(),
                direction: Direction::In,
                data: None,
                default: None,
            },
            Feature {
                name: "deq".to_string(),
                direction: Direction::Out,
                data: None,
                default: None,
            },
            Feature {
                name: "len".to_string(),
                direction: Direction::Out,
                data: Some(DataType::Int(Some((0, cap)))),
                default: Some(Literal::Int(0)),
            },
        ];
        let modes = vec![ModeDecl {
            name: "run".to_string(),
            initial: true,
            invariant: None,
            derivatives: Vec::new(),
            pos: P,
        }];
        let transitions = vec![
            TransitionDecl {
                from: "run".to_string(),
                urgent: false,
                trigger: Trigger::Port(QName::simple("enq")),
                guard: Some(bin(BinOp::Lt, name1("len"), lit(Literal::Int(cap)))),
                effects: vec![(
                    QName::simple("len"),
                    bin(BinOp::Add, name1("len"), lit(Literal::Int(1))),
                )],
                to: "run".to_string(),
                pos: P,
            },
            TransitionDecl {
                from: "run".to_string(),
                urgent: false,
                trigger: Trigger::Port(QName::simple("deq")),
                guard: Some(bin(BinOp::Gt, name1("len"), lit(Literal::Int(0)))),
                effects: vec![(
                    QName::simple("len"),
                    bin(BinOp::Sub, name1("len"), lit(Literal::Int(1))),
                )],
                to: "run".to_string(),
                pos: P,
            },
        ];
        CompBuild {
            ty: ComponentType {
                category: Category::Process,
                name: ty_name.clone(),
                features,
                pos: P,
            },
            im: ComponentImpl {
                category: Category::Process,
                name: (ty_name, "Impl".to_string()),
                subcomponents: Vec::new(),
                connections: Vec::new(),
                flows: Vec::new(),
                modes,
                transitions,
                pos: P,
            },
            out_events: vec!["deq".to_string()],
            in_events: vec!["enq".to_string()],
            in_bools: Vec::new(),
            bool_outs: Vec::new(),
            fail_atoms: vec![FailAtom::IntGe("len".to_string(), cap)],
            locs: vec!["run".to_string()],
        }
    }

    // ---- free-form worker drawn from the full grammar ----

    fn worker(&mut self, idx: usize) -> CompBuild {
        let ty_name = format!("Wrk{idx}");
        let nloc = usize_in(self.rng, 2, self.p.max_locations.max(2));
        let has_clock = chance(self.rng, 0.75);
        let cap = i64_in(self.rng, 3, 8);
        let has_int = chance(self.rng, 0.6);
        let has_flag = chance(self.rng, 0.5);
        let has_down = chance(self.rng, 0.7);
        let has_level = chance(self.rng, 0.3);
        let has_emit = chance(self.rng, 0.4);
        let has_poke = chance(self.rng, 0.4);
        let has_peer = chance(self.rng, 0.35);

        let mut features = Vec::new();
        if has_down {
            features.push(Feature {
                name: "down".to_string(),
                direction: Direction::Out,
                data: Some(DataType::Bool),
                default: Some(Literal::Bool(false)),
            });
        }
        if has_level {
            features.push(Feature {
                name: "level".to_string(),
                direction: Direction::Out,
                data: Some(DataType::Real),
                default: Some(Literal::Real(self.real_value())),
            });
        }
        if has_emit {
            features.push(Feature {
                name: "emit".to_string(),
                direction: Direction::Out,
                data: None,
                default: None,
            });
        }
        if has_poke {
            features.push(Feature {
                name: "poke".to_string(),
                direction: Direction::In,
                data: None,
                default: None,
            });
        }
        if has_peer {
            features.push(Feature {
                name: "peer".to_string(),
                direction: Direction::In,
                data: Some(DataType::Bool),
                default: Some(Literal::Bool(false)),
            });
        }

        let mut subcomponents = Vec::new();
        if has_clock {
            subcomponents.push(Subcomponent::Data {
                name: "t".to_string(),
                ty: DataType::Clock,
                init: None,
                pos: P,
            });
        }
        if has_int {
            subcomponents.push(Subcomponent::Data {
                name: "n".to_string(),
                ty: DataType::Int(Some((0, cap))),
                init: Some(Literal::Int(i64_in(self.rng, 0, cap))),
                pos: P,
            });
        }
        if has_flag {
            subcomponents.push(Subcomponent::Data {
                name: "flag".to_string(),
                ty: DataType::Bool,
                init: Some(Literal::Bool(chance(self.rng, 0.5))),
                pos: P,
            });
        }

        // Per-location flavor: a location's outgoing transitions are all
        // Markovian or all guarded (network well-formedness rule), and
        // only guarded locations may carry a clock invariant.
        let locs: Vec<String> = (0..nloc).map(|i| format!("l{i}")).collect();
        let markov: Vec<bool> =
            (0..nloc).map(|_| chance(self.rng, self.p.fault_prob * 0.5)).collect();
        let invariant: Vec<Option<f64>> = (0..nloc)
            .map(|i| {
                if has_clock && !markov[i] && chance(self.rng, self.p.invariant_prob) {
                    Some(f64_in(self.rng, 1.0, 8.0).round().max(1.0))
                } else {
                    None
                }
            })
            .collect();

        let modes: Vec<ModeDecl> = (0..nloc)
            .map(|i| ModeDecl {
                name: locs[i].clone(),
                initial: i == 0,
                invariant: invariant[i].map(|k| bin(BinOp::Le, name1("t"), lit(Literal::Real(k)))),
                derivatives: Vec::new(),
                pos: P,
            })
            .collect();

        let vars = WorkerVars {
            has_clock,
            has_int,
            cap,
            has_flag,
            has_down,
            has_level,
            has_peer,
            has_poke,
            has_emit,
        };

        let mut transitions = Vec::new();
        // Structural chain l0 → l1 → … keeps every location reachable in
        // the transition graph (modulo guards, which the fixpoint and the
        // simulator are free to disagree about — that is the point).
        for (i, &mk) in markov.iter().enumerate().take(nloc.saturating_sub(1)) {
            transitions.push(self.worker_transition(&locs, i, i + 1, mk, &vars));
        }
        let extra = usize_in(self.rng, 0, self.p.max_extra_transitions);
        for _ in 0..extra {
            let from = usize_in(self.rng, 0, nloc - 1);
            let to = usize_in(self.rng, 0, nloc - 1);
            transitions.push(self.worker_transition(&locs, from, to, markov[from], &vars));
        }
        // The last location marks failure when the component has a
        // failure port: entering it raises `down`.
        if has_down {
            for t in &mut transitions {
                if t.to == locs[nloc - 1]
                    && !t.effects.iter().any(|(n, _)| n.segments() == ["down"])
                {
                    t.effects.push((QName::simple("down"), lit(Literal::Bool(true))));
                }
            }
        }
        // Invariant soundness: any transition entering a location with a
        // clock invariant resets the clock so the invariant holds on
        // entry (the engine treats a violated invariant as a hard error).
        for t in &mut transitions {
            let target = locs.iter().position(|l| l == &t.to).expect("target exists");
            if invariant[target].is_some() && !t.effects.iter().any(|(n, _)| n.segments() == ["t"])
            {
                t.effects.push((QName::simple("t"), lit(Literal::Real(0.0))));
            }
        }

        let mut fail_atoms = Vec::new();
        if has_down {
            fail_atoms.push(FailAtom::BoolPort("down".to_string(), true));
        }
        CompBuild {
            ty: ComponentType {
                category: Category::Device,
                name: ty_name.clone(),
                features,
                pos: P,
            },
            im: ComponentImpl {
                category: Category::Device,
                name: (ty_name, "Impl".to_string()),
                subcomponents,
                connections: Vec::new(),
                flows: Vec::new(),
                modes,
                transitions,
                pos: P,
            },
            out_events: if has_emit { vec!["emit".to_string()] } else { Vec::new() },
            in_events: if has_poke { vec!["poke".to_string()] } else { Vec::new() },
            in_bools: if has_peer { vec!["peer".to_string()] } else { Vec::new() },
            bool_outs: if has_down { vec!["down".to_string()] } else { Vec::new() },
            fail_atoms,
            locs,
        }
    }

    fn worker_transition(
        &mut self,
        locs: &[String],
        from: usize,
        to: usize,
        markovian: bool,
        vars: &WorkerVars,
    ) -> TransitionDecl {
        if markovian {
            TransitionDecl {
                from: locs[from].clone(),
                urgent: false,
                trigger: Trigger::Rate(rate_in(self.rng, self.p.rate_range.0, self.p.rate_range.1)),
                guard: None,
                effects: self.worker_effects(vars),
                to: locs[to].clone(),
                pos: P,
            }
        } else {
            // Event triggers where the ports exist; τ otherwise.
            let mut ports = Vec::new();
            if vars.has_poke {
                ports.push("poke");
            }
            if vars.has_emit {
                ports.push("emit");
            }
            let trigger = if !ports.is_empty() && chance(self.rng, 0.35) {
                Trigger::Port(QName::simple(*pick(self.rng, &ports)))
            } else {
                Trigger::Internal
            };
            TransitionDecl {
                from: locs[from].clone(),
                urgent: chance(self.rng, self.p.urgent_prob),
                trigger,
                guard: self.worker_guard(vars),
                effects: self.worker_effects(vars),
                to: locs[to].clone(),
                pos: P,
            }
        }
    }

    fn worker_guard(&mut self, vars: &WorkerVars) -> Option<Expr> {
        let mut parts = Vec::new();
        if vars.has_clock && chance(self.rng, 0.5) {
            let k = (f64_in(self.rng, 0.25, 6.0) * 4.0).round().max(1.0) / 4.0;
            let op = if chance(self.rng, 0.6) { BinOp::Ge } else { BinOp::Le };
            parts.push(bin(op, name1("t"), lit(Literal::Real(k))));
        }
        if chance(self.rng, 0.6) {
            if let Some(e) = self.bool_expr(vars, self.p.max_expr_depth) {
                parts.push(e);
            }
        }
        let mut it = parts.into_iter();
        let first = it.next()?;
        Some(it.fold(first, |a, b| bin(BinOp::And, a, b)))
    }

    fn worker_effects(&mut self, vars: &WorkerVars) -> Vec<(QName, Expr)> {
        let mut effects = Vec::new();
        if vars.has_clock && chance(self.rng, 0.4) {
            effects.push((QName::simple("t"), lit(Literal::Real(0.0))));
        }
        if vars.has_int && chance(self.rng, 0.5) {
            effects.push((QName::simple("n"), self.clamped_int_expr(vars)));
        }
        if vars.has_flag && chance(self.rng, 0.4) {
            let e = self
                .bool_expr(vars, self.p.max_expr_depth)
                .unwrap_or_else(|| lit(Literal::Bool(true)));
            effects.push((QName::simple("flag"), e));
        }
        if vars.has_down && chance(self.rng, 0.25) {
            effects.push((QName::simple("down"), lit(Literal::Bool(chance(self.rng, 0.8)))));
        }
        if vars.has_level && chance(self.rng, 0.3) {
            effects.push((QName::simple("level"), lit(Literal::Real(self.real_value()))));
        }
        effects
    }

    /// An integer expression clamped into `[0, cap]` so assignments never
    /// leave the variable's declared range at runtime.
    fn clamped_int_expr(&mut self, vars: &WorkerVars) -> Expr {
        let inner = self.int_expr(vars, self.p.max_expr_depth);
        bin(BinOp::Max, bin(BinOp::Min, inner, lit(Literal::Int(vars.cap))), lit(Literal::Int(0)))
    }

    fn int_expr(&mut self, vars: &WorkerVars, depth: usize) -> Expr {
        if depth == 0 || chance(self.rng, 0.4) {
            if vars.has_int && chance(self.rng, 0.6) {
                name1("n")
            } else {
                lit(Literal::Int(i64_in(self.rng, 0, vars.cap.max(1))))
            }
        } else {
            let a = self.int_expr(vars, depth - 1);
            let b = self.int_expr(vars, depth - 1);
            match usize_in(self.rng, 0, 4) {
                0 => bin(BinOp::Add, a, b),
                1 => bin(BinOp::Sub, a, b),
                2 => bin(BinOp::Mul, a, b),
                3 => bin(BinOp::Min, a, b),
                _ => {
                    let c = self.bool_expr(vars, 1).unwrap_or_else(|| lit(Literal::Bool(true)));
                    Expr::Ite(Box::new(c), Box::new(a), Box::new(b))
                }
            }
        }
    }

    fn bool_expr(&mut self, vars: &WorkerVars, depth: usize) -> Option<Expr> {
        let mut leaves: Vec<Expr> = Vec::new();
        if vars.has_flag {
            leaves.push(name1("flag"));
        }
        if vars.has_peer {
            leaves.push(name1("peer"));
        }
        if vars.has_int {
            let op = *pick(self.rng, &[BinOp::Lt, BinOp::Le, BinOp::Ge, BinOp::Eq, BinOp::Ne]);
            leaves.push(bin(op, name1("n"), lit(Literal::Int(i64_in(self.rng, 0, vars.cap)))));
        }
        if leaves.is_empty() {
            return None;
        }
        Some(self.bool_expr_from(&leaves, depth))
    }

    fn bool_expr_from(&mut self, leaves: &[Expr], depth: usize) -> Expr {
        if depth == 0 || chance(self.rng, 0.5) {
            pick(self.rng, leaves).clone()
        } else {
            let a = self.bool_expr_from(leaves, depth - 1);
            match usize_in(self.rng, 0, 4) {
                0 => Expr::Not(Box::new(a)),
                1 => bin(BinOp::And, a, self.bool_expr_from(leaves, depth - 1)),
                2 => bin(BinOp::Or, a, self.bool_expr_from(leaves, depth - 1)),
                3 => bin(BinOp::Xor, a, self.bool_expr_from(leaves, depth - 1)),
                _ => bin(BinOp::Implies, a, self.bool_expr_from(leaves, depth - 1)),
            }
        }
    }

    /// A real literal — usually small and dyadic, occasionally drawn from
    /// the extreme pool to exercise numeric printing/parsing edges.
    fn real_value(&mut self) -> f64 {
        if chance(self.rng, self.p.extreme_real_prob) {
            *pick(self.rng, &[1e15, 1e16, 4.0e18, 2.0e19, 9007199254740993.0, 0.001, 123456789.5])
        } else {
            (f64_in(self.rng, 0.0, 16.0) * 4.0).round() / 4.0
        }
    }

    // ---- error models (§II-D) ----

    fn error_model(
        &mut self,
        inst: &str,
        port: &str,
        bad_value: bool,
    ) -> (ErrorModel, FaultInjection) {
        let lambda = rate_in(self.rng, self.p.rate_range.0, self.p.rate_range.1);
        let path = q(&["root", inst, port]);
        let with_recovery = chance(self.rng, 0.5);
        let mut states =
            vec![ErrorState { name: "good".to_string(), initial: true, invariant: None, pos: P }];
        let mut transitions = Vec::new();
        let mut effects: Vec<(String, QName, Literal)> = Vec::new();
        if with_recovery {
            // good --λ--> degraded --[r0 ≤ c ≤ r]--> good, with a second
            // exponential race into the absorbing dead state.
            let r = f64_in(self.rng, 1.0, 6.0).round().max(1.0);
            let r0 = (r * f64_in(self.rng, 0.25, 0.75) * 4.0).round().max(1.0) / 4.0;
            states.push(ErrorState {
                name: "degraded".to_string(),
                initial: false,
                invariant: Some(bin(BinOp::Le, name1("c"), lit(Literal::Real(r)))),
                pos: P,
            });
            transitions.push(ErrorTransition {
                from: "good".to_string(),
                trigger: ErrorTrigger::Rate(lambda),
                to: "degraded".to_string(),
                pos: P,
            });
            transitions.push(ErrorTransition {
                from: "degraded".to_string(),
                trigger: ErrorTrigger::When(bin(
                    BinOp::Ge,
                    name1("c"),
                    lit(Literal::Real(r0.min(r))),
                )),
                to: "good".to_string(),
                pos: P,
            });
            effects.push(("degraded".to_string(), path.clone(), Literal::Bool(bad_value)));
            effects.push(("good".to_string(), path, Literal::Bool(!bad_value)));
        } else {
            states.push(ErrorState {
                name: "dead".to_string(),
                initial: false,
                invariant: None,
                pos: P,
            });
            transitions.push(ErrorTransition {
                from: "good".to_string(),
                trigger: ErrorTrigger::Rate(lambda),
                to: "dead".to_string(),
                pos: P,
            });
            effects.push(("dead".to_string(), path, Literal::Bool(bad_value)));
        }
        (
            ErrorModel { name: "Fail".to_string(), states, transitions, pos: P },
            FaultInjection {
                target: q(&["root", inst]),
                error_model: "Fail".to_string(),
                effects,
                pos: P,
            },
        )
    }
}

/// Which local variables/ports a worker component owns.
struct WorkerVars {
    has_clock: bool,
    has_int: bool,
    cap: i64,
    has_flag: bool,
    has_down: bool,
    has_level: bool,
    has_peer: bool,
    has_poke: bool,
    has_emit: bool,
}
