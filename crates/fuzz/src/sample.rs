//! Small sampling combinators over the workspace's seeded RNG.
//!
//! The generator deliberately uses only [`slim_stats::rng::StdRng`] — the
//! same splittable xoshiro generator the simulator itself runs on — so a
//! `(seed, index)` pair identifies one generated model forever, across
//! runs, platforms, and worker counts.

pub use slim_stats::rng::StdRng;

/// Uniform `f64` in `[lo, hi)`.
pub fn f64_in(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    lo + rng.gen::<f64>() * (hi - lo)
}

/// Uniform `i64` in `[lo, hi]` (inclusive; `lo <= hi`).
pub fn i64_in(rng: &mut StdRng, lo: i64, hi: i64) -> i64 {
    lo + rng.gen_range(0..(hi - lo + 1) as usize) as i64
}

/// Uniform `usize` in `[lo, hi]` (inclusive; `lo <= hi`).
pub fn usize_in(rng: &mut StdRng, lo: usize, hi: usize) -> usize {
    rng.gen_range(lo..hi + 1)
}

/// A uniformly chosen element of `items`.
///
/// # Panics
/// Panics if `items` is empty.
pub fn pick<'a, T>(rng: &mut StdRng, items: &'a [T]) -> &'a T {
    &items[rng.gen_range(0..items.len())]
}

/// True with probability `p`.
pub fn chance(rng: &mut StdRng, p: f64) -> bool {
    rng.gen_bool(p)
}

/// A rate drawn log-uniformly from `[lo, hi]` — fault/repair rates span
/// orders of magnitude in realistic availability models, and a log-uniform
/// draw exercises both the fast and the rare regimes.
pub fn rate_in(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    let (llo, lhi) = (lo.ln(), hi.ln());
    let r = f64_in(rng, llo, lhi).exp();
    // Round to a multiple of 1/1024 — dyadic, so the value survives text
    // round-trips exactly — keeping at least one tick so the rate stays
    // strictly positive.
    (r * 1024.0).round().max(1.0) / 1024.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_are_inclusive() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let v = usize_in(&mut rng, 2, 3);
            assert!(v == 2 || v == 3);
            let i = i64_in(&mut rng, -1, 1);
            assert!((-1..=1).contains(&i));
        }
    }

    #[test]
    fn rates_positive_and_round_trip_stable() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..200 {
            let r = rate_in(&mut rng, 0.001, 100.0);
            assert!(r > 0.0 && r.is_finite());
            let printed = format!("{r}");
            assert_eq!(printed.parse::<f64>().unwrap(), r);
        }
    }
}
