//! The differential oracle stack run on every generated model.
//!
//! Each oracle checks one claim a pipeline layer makes and a later layer
//! silently trusts. Oracles run in pipeline order and stop at the first
//! failure — the shrinker then re-runs only the failing oracle while
//! minimizing. All randomness derives from the model's `(seed, index)`
//! provenance, so a failure replays exactly from a corpus entry.

use slim_analysis::analyze_network;
use slim_automata::network::{Network, PruneMaps, PrunePlan};
use slim_automata::prelude::{CompileOptions, Expr, IntervalSet, StepScratch};
use slim_lint::LintConfig;
use slim_stats::chernoff::Accuracy;
use slim_stats::rng::{derive_seed, path_rng};
use slimsim_core::prelude::{
    analyze, pre_verdict, BatchScratch, DeadlockPolicy, Goal, PathGenerator, PathOutcome,
    PreVerdict, SimConfig, SimError, SimScratch, StrategyKind, TimedReach,
};

use crate::generate::{GeneratedModel, GoalSpec};

/// Tag mixed into the simulation seed so soundness-oracle paths never
/// collide with the generator's own RNG stream.
const SOUNDNESS_SEED_TAG: u64 = 0x00f1_7b0a_57ab_1e00;

/// Tag for the prune-invariance runs, distinct from every other stream.
const INVARIANCE_SEED_TAG: u64 = 0x0b5e_55ed;

/// Tag for the batch-equivalence paths, distinct from every other stream.
const BATCH_SEED_TAG: u64 = 0x000b_a7c1_1ed0_u64;

/// Tag for the fusion-equivalence paths, distinct from every other stream.
const FUSION_SEED_TAG: u64 = 0x000f_05ed_0000_u64;

/// The eight checked claims, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OracleKind {
    /// `parse(pretty(m)) == m`, and `pretty` is a fixed point of the
    /// round trip (printing the reparsed model reproduces the source).
    RoundTrip,
    /// The model lowers, the lints run without panicking and
    /// deterministically, and the shared [`slim_lint::preflight`] gate
    /// accepts the model (generated models are in-envelope by
    /// construction — a deny here is a generator or lint bug).
    Lint,
    /// `Network::compile()` output passes `verify_bytecode`.
    Bytecode,
    /// The compiled step tables agree with the legacy interpreter API on
    /// a seeded pseudo-random walk: delay windows, candidate lists
    /// (order included), Markovian rates, successor states.
    CompiledEquivalence,
    /// The batched SoA path kernel reproduces the scalar engine's
    /// per-path outcome (or error) lane-exactly at every lane width.
    BatchEquivalence,
    /// The fused/specialized kernel (`CompileOptions::default`) and the
    /// plain reference kernel (`CompileOptions::reference`) produce
    /// bit-identical per-path verdict streams (or the same errors).
    FusionEquivalence,
    /// A `P = 0` pre-verdict is never contradicted by a simulated goal
    /// hit; a `P = 1` pre-verdict never sees a failing path.
    FixpointSoundness,
    /// Pruning with the goal pinned leaves the estimate bit-identical at
    /// fixed `(seed, workers)`.
    PruneInvariance,
}

impl OracleKind {
    /// Stable kebab-case name (corpus entries, reports).
    pub fn name(self) -> &'static str {
        match self {
            OracleKind::RoundTrip => "round-trip",
            OracleKind::Lint => "lint",
            OracleKind::Bytecode => "bytecode",
            OracleKind::CompiledEquivalence => "compiled-equivalence",
            OracleKind::BatchEquivalence => "batch-equivalence",
            OracleKind::FusionEquivalence => "fusion-equivalence",
            OracleKind::FixpointSoundness => "fixpoint-soundness",
            OracleKind::PruneInvariance => "prune-invariance",
        }
    }

    /// Parses [`Self::name`]'s output back.
    pub fn parse(s: &str) -> Option<OracleKind> {
        OracleKind::ALL.iter().copied().find(|k| k.name() == s)
    }

    /// All oracles, in pipeline order.
    pub const ALL: [OracleKind; 8] = [
        OracleKind::RoundTrip,
        OracleKind::Lint,
        OracleKind::Bytecode,
        OracleKind::CompiledEquivalence,
        OracleKind::BatchEquivalence,
        OracleKind::FusionEquivalence,
        OracleKind::FixpointSoundness,
        OracleKind::PruneInvariance,
    ];
}

/// One oracle violation: which claim broke and how.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleFailure {
    /// The violated claim.
    pub kind: OracleKind,
    /// Human-readable description of the divergence.
    pub detail: String,
}

/// Result of running the stack on one model.
#[derive(Debug, Clone)]
pub struct OracleOutcome {
    /// The first failure, if any.
    pub failure: Option<OracleFailure>,
    /// Oracles that completed (vacuous passes included) before the first
    /// failure stopped the stack.
    pub ran: Vec<OracleKind>,
    /// The fixpoint's exact probability claim, when it made one —
    /// campaign statistics use this to report pre-verdict coverage.
    pub pre_exact: Option<f64>,
}

/// Effort knobs for one oracle run.
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// Paths simulated to challenge a `P = 0` / `P = 1` pre-verdict.
    pub soundness_paths: u64,
    /// Steps of the compiled-vs-legacy differential walk.
    pub equivalence_steps: u64,
    /// Pseudo-random walks driven per model in the equivalence oracle.
    pub equivalence_walks: u64,
    /// Statistical accuracy of the two prune-invariance estimates (kept
    /// loose: invariance is about bit-identity, not tightness).
    pub invariance_accuracy: Accuracy,
    /// Worker threads for the prune-invariance runs (invariance must
    /// hold for any fixed worker count, so exercising > 1 is useful).
    pub workers: usize,
    /// Step budget per simulated path.
    pub max_steps: u64,
    /// The pre-verdict function under test. Defaults to
    /// [`slimsim_core::pre_verdict`]; tests substitute a corrupted one to
    /// prove the soundness oracle actually catches unsound claims.
    pub pre_verdict_fn: fn(&Network, &TimedReach) -> PreVerdict,
}

impl OracleConfig {
    /// The CI-smoke configuration: small path counts, short walks.
    pub fn quick() -> OracleConfig {
        OracleConfig {
            soundness_paths: 24,
            equivalence_steps: 60,
            equivalence_walks: 2,
            invariance_accuracy: Accuracy::new(0.25, 0.25).expect("static accuracy is valid"),
            workers: 2,
            max_steps: 4_000,
            pre_verdict_fn: pre_verdict,
        }
    }

    /// The overnight-triage configuration: deeper walks, more paths.
    pub fn thorough() -> OracleConfig {
        OracleConfig {
            soundness_paths: 200,
            equivalence_steps: 200,
            equivalence_walks: 4,
            invariance_accuracy: Accuracy::new(0.15, 0.15).expect("static accuracy is valid"),
            workers: 2,
            max_steps: 20_000,
            ..Self::quick()
        }
    }
}

impl Default for OracleConfig {
    fn default() -> Self {
        Self::quick()
    }
}

/// Runs the oracle stack on one model, stopping at the first failure.
pub fn run_oracles(model: &GeneratedModel, cfg: &OracleConfig) -> OracleOutcome {
    let mut out = OracleOutcome { failure: None, ran: Vec::new(), pre_exact: None };

    if let Err(detail) = round_trip(model) {
        out.failure = Some(OracleFailure { kind: OracleKind::RoundTrip, detail });
        return out;
    }
    out.ran.push(OracleKind::RoundTrip);

    // Everything downstream needs the network; a lowering failure on a
    // generated model is a generator-envelope bug and surfaces as a Lint
    // failure (the pre-flight gate could never have accepted the model).
    let net = match model.network() {
        Ok(net) => net,
        Err(e) => {
            out.failure = Some(OracleFailure {
                kind: OracleKind::Lint,
                detail: format!("model does not lower: {e}"),
            });
            return out;
        }
    };

    if let Err(detail) = lint_oracle(model, &net) {
        out.failure = Some(OracleFailure { kind: OracleKind::Lint, detail });
        return out;
    }
    out.ran.push(OracleKind::Lint);

    let tables = net.compile();
    if let Err(e) = tables.verify_bytecode() {
        out.failure = Some(OracleFailure {
            kind: OracleKind::Bytecode,
            detail: format!("bytecode verification failed: {e}"),
        });
        return out;
    }
    out.ran.push(OracleKind::Bytecode);

    if let Err(detail) = compiled_equivalence(model, &net, &tables, cfg) {
        out.failure = Some(OracleFailure { kind: OracleKind::CompiledEquivalence, detail });
        return out;
    }
    out.ran.push(OracleKind::CompiledEquivalence);

    let property = match build_property(model, &net) {
        Ok(p) => p,
        Err(detail) => {
            // The goal names structure the model is known to have; losing
            // it is a lowering/naming regression, reported as Lint.
            out.failure = Some(OracleFailure { kind: OracleKind::Lint, detail });
            return out;
        }
    };

    if let Err(detail) = batch_equivalence(model, &net, &property, cfg) {
        out.failure = Some(OracleFailure { kind: OracleKind::BatchEquivalence, detail });
        return out;
    }
    out.ran.push(OracleKind::BatchEquivalence);

    if let Err(detail) = fusion_equivalence(model, &net, &property, cfg) {
        out.failure = Some(OracleFailure { kind: OracleKind::FusionEquivalence, detail });
        return out;
    }
    out.ran.push(OracleKind::FusionEquivalence);

    match fixpoint_soundness(model, &net, &property, cfg) {
        Ok(pre_exact) => out.pre_exact = pre_exact,
        Err(detail) => {
            out.failure = Some(OracleFailure { kind: OracleKind::FixpointSoundness, detail });
            return out;
        }
    }
    out.ran.push(OracleKind::FixpointSoundness);

    if let Err(detail) = prune_invariance(model, &net, &property, cfg) {
        out.failure = Some(OracleFailure { kind: OracleKind::PruneInvariance, detail });
        return out;
    }
    out.ran.push(OracleKind::PruneInvariance);

    out
}

/// Builds the timed-reachability property from the model's goal spec.
fn build_property(model: &GeneratedModel, net: &Network) -> Result<TimedReach, String> {
    let goal = match &model.goal {
        GoalSpec::Var(path) => {
            let id = net
                .var_id(path)
                .ok_or_else(|| format!("goal variable `{path}` missing after lowering"))?;
            Goal::expr(Expr::var(id))
        }
        GoalSpec::Loc(auto, loc) => Goal::in_location(net, auto, loc)
            .map_err(|n| format!("goal location `{auto}@{loc}` missing after lowering: {n}"))?,
    };
    Ok(TimedReach::new(goal, model.bound))
}

// ---- round-trip ----

fn round_trip(model: &GeneratedModel) -> Result<(), String> {
    let reparsed = slim_lang::parse(&model.source)
        .map_err(|e| format!("pretty output fails to parse: {e}"))?;
    if reparsed != model.model {
        return Err(diff_models(&model.model, &reparsed));
    }
    let reprinted = slim_lang::pretty(&reparsed);
    if reprinted != model.source {
        return Err("pretty is not a fixed point: printing the reparsed model \
                    yields different text"
            .to_string());
    }
    Ok(())
}

/// A short pointer at the first section where two models disagree.
fn diff_models(a: &slim_lang::ast::Model, b: &slim_lang::ast::Model) -> String {
    if a.types != b.types {
        for (x, y) in a.types.iter().zip(&b.types) {
            if x != y {
                return format!("reparsed AST differs in component type `{}`", x.name);
            }
        }
        return "reparsed AST differs in the component type list".to_string();
    }
    if a.impls != b.impls {
        for (x, y) in a.impls.iter().zip(&b.impls) {
            if x != y {
                return format!(
                    "reparsed AST differs in implementation `{}.{}`",
                    x.name.0, x.name.1
                );
            }
        }
        return "reparsed AST differs in the implementation list".to_string();
    }
    if a.error_models != b.error_models {
        return "reparsed AST differs in an error model".to_string();
    }
    if a.injections != b.injections {
        return "reparsed AST differs in a fault injection".to_string();
    }
    "reparsed AST differs (position-independent comparison)".to_string()
}

// ---- lint ----

fn lint_oracle(model: &GeneratedModel, net: &Network) -> Result<(), String> {
    let front = catch(|| slim_lang::analyze_model(&model.model))
        .map_err(|p| format!("analyze_model panicked: {p}"))?;
    let front2 = catch(|| slim_lang::analyze_model(&model.model))
        .map_err(|p| format!("analyze_model panicked on second run: {p}"))?;
    if front != front2 {
        return Err("analyze_model is nondeterministic across identical runs".to_string());
    }

    let cfg = LintConfig::new();
    let first = catch(|| slim_lint::lint_network(net, &cfg))
        .map_err(|p| format!("lint_network panicked: {p}"))?;
    let second = catch(|| slim_lint::lint_network(net, &cfg))
        .map_err(|p| format!("lint_network panicked on second run: {p}"))?;
    if first != second {
        return Err("lint_network is nondeterministic across identical runs".to_string());
    }

    // The analyze pre-flight decision must match the raw deny count, and
    // must accept every generated model (the generator stays inside the
    // validity envelope by construction).
    match slim_lint::preflight(net, &cfg) {
        Ok(diags) => {
            if slim_lint::error_count(&diags) > 0 {
                return Err("preflight accepted a model with deny-level lints".to_string());
            }
            Ok(())
        }
        Err(diags) => Err(format!(
            "preflight rejects a generated model: {}",
            diags
                .iter()
                .filter(|d| d.severity == slim_lint::Severity::Error)
                .map(|d| format!("{} {}", d.code, d.message))
                .collect::<Vec<_>>()
                .join("; ")
        )),
    }
}

fn catch<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).map_err(|e| {
        e.downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| e.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "opaque panic payload".to_string())
    })
}

// ---- compiled vs legacy ----

/// Deterministic linear-congruential driver for the differential walk
/// (kept independent of `StdRng` so the walk is part of the oracle's
/// identity, mirroring `tests/compiled_equivalence.rs`).
fn lcg(s: &mut u64) -> u64 {
    *s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *s >> 33
}

fn compiled_equivalence(
    model: &GeneratedModel,
    net: &Network,
    tables: &slim_automata::compiled::StepTables,
    cfg: &OracleConfig,
) -> Result<(), String> {
    let mut s = StepScratch::new();
    let mut window = IntervalSet::empty();
    let mut seed = derive_seed(model.seed, model.index) | 1;

    for _walk in 0..cfg.equivalence_walks {
        let mut st = net.initial_state().map_err(|e| format!("initial state: {e}"))?;
        let mut st_c = st.clone();
        for step in 0..cfg.equivalence_steps {
            if st != st_c {
                return Err(format!("states diverged before step {step}"));
            }
            let w = net.delay_window(&st).map_err(|e| format!("legacy delay_window: {e}"))?;
            net.delay_window_into(tables, &mut s, &st_c, &mut window)
                .map_err(|e| format!("compiled delay_window: {e}"))?;
            if w != window {
                return Err(format!("delay windows diverged at step {step}: {w:?} vs {window:?}"));
            }

            let cands =
                net.guarded_candidates(&st).map_err(|e| format!("legacy candidates: {e}"))?;
            net.guarded_candidates_into(tables, &mut s, &st_c)
                .map_err(|e| format!("compiled candidates: {e}"))?;
            let compiled = s.candidates();
            if cands.len() != compiled.len() {
                return Err(format!(
                    "candidate count diverged at step {step}: {} vs {}",
                    cands.len(),
                    compiled.len()
                ));
            }
            for (l, c) in cands.iter().zip(compiled) {
                if l.transition.action != c.action
                    || l.transition.parts != c.parts
                    || l.window != c.window
                    || l.urgent != c.urgent
                {
                    return Err(format!(
                        "candidate diverged at step {step}: action {:?} vs {:?}",
                        l.transition.action, c.action
                    ));
                }
            }

            let markov = net.markovian_candidates(&st);
            net.markovian_candidates_into(tables, &mut s, &st_c);
            if markov.len() != s.markovian().len() {
                return Err(format!("Markovian count diverged at step {step}"));
            }
            for (l, &(p, t, rate)) in markov.iter().zip(s.markovian()) {
                if l.transition.parts != vec![(p, t)] || l.rate != rate {
                    return Err(format!("Markovian candidate diverged at step {step}"));
                }
            }

            // Drive: a guarded candidate enabled inside the delay window
            // if one exists, else a Markovian jump, else stop this walk.
            let pick = lcg(&mut seed) as usize;
            let fired = cands
                .iter()
                .cycle()
                .skip(pick % cands.len().max(1))
                .take(cands.len())
                .find(|cand| !cand.window.intersect(&w).is_empty());
            let (d, transition) = if let Some(cand) = fired {
                let joint = cand.window.intersect(&w);
                let lo = joint.earliest_point().ok_or("joint window has no earliest point")?;
                let frac = (lcg(&mut seed) % 101) as f64 / 100.0;
                let d = match joint.sup().filter(|sup| sup.is_finite()) {
                    Some(sup) => lo + (sup - lo).max(0.0) * frac * 0.5,
                    None => lo,
                };
                (if joint.contains(d) { d } else { lo }, cand.transition.clone())
            } else if !markov.is_empty() {
                let sup = w.sup().unwrap_or(0.0);
                let d = if sup.is_finite() { sup * 0.9 } else { 1.0 };
                let m = &markov[lcg(&mut seed) as usize % markov.len()];
                (d, m.transition.clone())
            } else {
                break;
            };
            st = net.advance(&st, d).map_err(|e| format!("legacy advance: {e}"))?;
            net.advance_mut(tables, &mut s, &mut st_c, d, &window)
                .map_err(|e| format!("compiled advance: {e}"))?;
            if st != st_c {
                return Err(format!("advance diverged at step {step} (d = {d})"));
            }
            st = net.apply(&st, &transition).map_err(|e| format!("legacy apply: {e}"))?;
            net.apply_mut(tables, &mut s, &mut st_c, &transition.parts)
                .map_err(|e| format!("compiled apply: {e}"))?;
        }
    }
    Ok(())
}

// ---- fixpoint soundness ----

fn fixpoint_soundness(
    model: &GeneratedModel,
    net: &Network,
    property: &TimedReach,
    cfg: &OracleConfig,
) -> Result<Option<f64>, String> {
    let pv = (cfg.pre_verdict_fn)(net, property);
    let Some(claim) = pv.exact_probability() else {
        return Ok(None);
    };

    // Challenge the exact claim with independent sampled paths, the
    // pre-verdict machinery bypassed entirely.
    let generator = PathGenerator::new(net, property, cfg.max_steps);
    let mut scratch = SimScratch::new();
    let sim_seed = derive_seed(model.seed, model.index ^ SOUNDNESS_SEED_TAG);
    for i in 0..cfg.soundness_paths {
        let mut rng = path_rng(sim_seed, i);
        let mut strategy = StrategyKind::Asap.instantiate();
        let outcome = match generator.generate_with(&mut scratch, strategy.as_mut(), &mut rng) {
            Ok(o) => o,
            // A path cut by the step budget proves nothing either way.
            Err(SimError::StepLimitExceeded { .. }) => continue,
            Err(e) => return Err(format!("simulation error on path {i}: {e}")),
        };
        let success = outcome.verdict.is_success();
        if claim == 0.0 && success {
            // Covers timed claims too: a success verdict means the goal
            // was reached *inside* the property deadline, so it refutes
            // `deadline-unreachable` exactly as it refutes `unreachable`.
            return Err(format!(
                "fixpoint claims P = 0 ({pv}) but path {i} (seed {sim_seed}) hits the \
                 goal at t = {}",
                outcome.end_time
            ));
        }
        if claim == 1.0 && !success {
            return Err(format!(
                "fixpoint claims P = 1 but path {i} (seed {sim_seed}) ends with {:?}",
                outcome.verdict
            ));
        }
    }
    Ok(Some(claim))
}

// ---- batch equivalence ----

/// Challenges the batched SoA kernel's lane determinism contract: every
/// path generated through a batch must reproduce the scalar engine's
/// outcome for the same `(seed, index)` — verdict, step count, end time,
/// or the *same* error — at every lane width, on a scratch deliberately
/// left dirty between widths.
fn batch_equivalence(
    model: &GeneratedModel,
    net: &Network,
    property: &TimedReach,
    cfg: &OracleConfig,
) -> Result<(), String> {
    let generator = PathGenerator::new(net, property, cfg.max_steps);
    let sim_seed = derive_seed(model.seed, model.index ^ BATCH_SEED_TAG);
    let total = cfg.soundness_paths;

    // Scalar reference stream, one fresh RNG per path index.
    let mut scratch = SimScratch::new();
    let mut scalar: Vec<Result<PathOutcome, String>> = Vec::with_capacity(total as usize);
    for i in 0..total {
        let mut rng = path_rng(sim_seed, i);
        let mut strategy = StrategyKind::Asap.instantiate();
        scalar.push(
            generator
                .generate_with(&mut scratch, strategy.as_mut(), &mut rng)
                .map_err(|e| e.to_string()),
        );
    }

    // The same stream through the batched kernel; the scratch stays
    // dirty across widths so stale lane state can never leak.
    let mut batch_scratch = BatchScratch::new();
    let mut batch = Vec::new();
    for lanes in [4usize, 8] {
        let mut strategy = StrategyKind::Asap.instantiate();
        let mut i = 0u64;
        while i < total {
            let count = ((total - i) as usize).min(lanes);
            generator.generate_batch_with(
                &mut batch_scratch,
                strategy.as_mut(),
                sim_seed,
                i,
                1,
                count,
                None,
                &mut batch,
            );
            for (j, got) in batch.drain(..).enumerate() {
                let index = i + j as u64;
                let got = got.map_err(|e| e.to_string());
                let want = &scalar[index as usize];
                if got != *want {
                    return Err(format!(
                        "path {index} (seed {sim_seed}) diverged at lane width {lanes}: \
                         scalar {want:?}, batched {got:?}"
                    ));
                }
            }
            i += count as u64;
        }
    }
    Ok(())
}

// ---- fusion equivalence ----

/// Challenges the optimizing compile tiers (superinstruction fusion,
/// whole-step specialization, write-set–masked flow re-establishment):
/// the default kernel and the reference kernel must produce bit-identical
/// per-path outcomes — verdict, step count, end time — or the *same*
/// error, for the same `(seed, index)` stream.
fn fusion_equivalence(
    model: &GeneratedModel,
    net: &Network,
    property: &TimedReach,
    cfg: &OracleConfig,
) -> Result<(), String> {
    let fused = PathGenerator::new(net, property, cfg.max_steps);
    let reference = PathGenerator::with_compile_options(
        net,
        property,
        cfg.max_steps,
        &CompileOptions::reference(),
    );
    let sim_seed = derive_seed(model.seed, model.index ^ FUSION_SEED_TAG);

    let mut scratch = SimScratch::new();
    for i in 0..cfg.soundness_paths {
        let mut rng = path_rng(sim_seed, i);
        let mut strategy = StrategyKind::Asap.instantiate();
        let want = reference
            .generate_with(&mut scratch, strategy.as_mut(), &mut rng)
            .map_err(|e| e.to_string());

        let mut rng = path_rng(sim_seed, i);
        let mut strategy = StrategyKind::Asap.instantiate();
        let got = fused
            .generate_with(&mut scratch, strategy.as_mut(), &mut rng)
            .map_err(|e| e.to_string());

        if got != want {
            return Err(format!(
                "path {i} (seed {sim_seed}) diverged between the fused and reference \
                 kernels: reference {want:?}, fused {got:?}"
            ));
        }
    }
    Ok(())
}

// ---- prune invariance ----

fn prune_invariance(
    model: &GeneratedModel,
    net: &Network,
    property: &TimedReach,
    cfg: &OracleConfig,
) -> Result<(), String> {
    let fx = analyze_network(net);
    let mut plan = fx.prune_plan(net);
    keep_goal_locations(&property.goal, &mut plan);
    if plan.is_noop() {
        return Ok(());
    }
    let (pruned, maps) = net.prune(&plan);
    let pruned_property = TimedReach {
        goal: remap_goal(property.goal.clone(), &maps),
        hold: property.hold.clone().map(|h| remap_goal(h, &maps)),
        bound: property.bound,
    };

    let sim_seed = derive_seed(model.seed, model.index ^ INVARIANCE_SEED_TAG);
    // The oracle's own step budget applies here too: generated models may
    // be Zeno (cycles of always-enabled guarded transitions), and the
    // default 1M-step cap would make each such path a slog.
    let mut sim_cfg = SimConfig::default()
        .with_accuracy(cfg.invariance_accuracy)
        .with_seed(sim_seed)
        .with_workers(cfg.workers)
        .with_deadlock_policy(DeadlockPolicy::Falsify)
        .with_static_pre_verdicts(false);
    sim_cfg.max_steps = cfg.max_steps;
    let full = analyze(net, property, &sim_cfg)
        .map_err(|e| format!("analysis on the full network failed: {e}"))?;
    let thin = analyze(&pruned, &pruned_property, &sim_cfg)
        .map_err(|e| format!("analysis on the pruned network failed: {e}"))?;

    let (a, b) = (full.estimate, thin.estimate);
    if a.mean.to_bits() != b.mean.to_bits() || a.samples != b.samples || a.successes != b.successes
    {
        return Err(format!(
            "estimates diverge under --prune at seed {sim_seed}, workers {}: \
             full {}/{} (mean {}), pruned {}/{} (mean {}); \
             {} transitions and {} locations were pruned",
            cfg.workers,
            a.successes,
            a.samples,
            a.mean,
            b.successes,
            b.samples,
            b.mean,
            plan.dropped_transitions(),
            plan.dropped_locations(),
        ));
    }
    Ok(())
}

/// Pins every location the goal names into the prune plan (mirrors the
/// CLI's `--prune` path).
fn keep_goal_locations(goal: &Goal, plan: &mut PrunePlan) {
    match goal {
        Goal::Expr(_) => {}
        Goal::InLocation(p, l) => plan.keep_location(*p, *l),
        Goal::And(a, b) | Goal::Or(a, b) => {
            keep_goal_locations(a, plan);
            keep_goal_locations(b, plan);
        }
        Goal::Not(a) => keep_goal_locations(a, plan),
    }
}

/// Rewrites the goal's location atoms through the prune maps.
fn remap_goal(goal: Goal, maps: &PruneMaps) -> Goal {
    match goal {
        Goal::Expr(e) => Goal::Expr(e),
        Goal::InLocation(p, l) => {
            let new = maps.locs[p.0][l.0].expect("goal locations are pinned before pruning");
            Goal::InLocation(p, new)
        }
        Goal::And(a, b) => {
            Goal::And(Box::new(remap_goal(*a, maps)), Box::new(remap_goal(*b, maps)))
        }
        Goal::Or(a, b) => Goal::Or(Box::new(remap_goal(*a, maps)), Box::new(remap_goal(*b, maps))),
        Goal::Not(a) => Goal::Not(Box::new(remap_goal(*a, maps))),
    }
}
