//! The campaign driver: generate → check → shrink → record, in a loop.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use crate::corpus::{write_corpus_entry, CorpusEntry};
use crate::generate::generate;
use crate::oracle::{run_oracles, OracleConfig, OracleKind};
use crate::params::GenParams;
use crate::shrink::shrink;

/// Configuration of one fuzzing campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Master seed; model `i` is `generate(seed, start_index + i, ..)`.
    pub seed: u64,
    /// Number of models to generate and check.
    pub count: u64,
    /// First model index (lets a campaign resume or zoom into a range).
    pub start_index: u64,
    /// Generator knobs.
    pub params: GenParams,
    /// Oracle effort knobs.
    pub oracle: OracleConfig,
    /// Minimize failures before recording them.
    pub shrink: bool,
    /// Stop after this many failures (0 = never stop early).
    pub max_failures: usize,
    /// When set, write each (shrunk) failure into this corpus directory.
    pub corpus_dir: Option<PathBuf>,
}

impl CampaignConfig {
    /// A campaign with default knobs over `count` models.
    pub fn new(seed: u64, count: u64) -> CampaignConfig {
        CampaignConfig {
            seed,
            count,
            start_index: 0,
            params: GenParams::default(),
            oracle: OracleConfig::quick(),
            shrink: true,
            max_failures: 10,
            corpus_dir: None,
        }
    }
}

/// One recorded campaign failure.
#[derive(Debug, Clone)]
pub struct CampaignFailure {
    /// Index of the failing model.
    pub index: u64,
    /// The violated oracle.
    pub kind: OracleKind,
    /// Failure description (of the shrunk model when shrinking ran).
    pub detail: String,
    /// Minimized source (original source when shrinking is disabled).
    pub source: String,
    /// Where the corpus entry was written, if a corpus dir was given.
    pub corpus_path: Option<PathBuf>,
}

/// Aggregate statistics of a campaign.
#[derive(Debug, Clone, Default)]
pub struct CampaignSummary {
    /// Models generated and checked.
    pub models: u64,
    /// Recorded failures, in discovery order.
    pub failures: Vec<CampaignFailure>,
    /// Completed runs per oracle, aligned with [`OracleKind::ALL`].
    pub oracle_runs: [u64; 8],
    /// Models on which the fixpoint claimed exactly `P = 0`.
    pub pre_zero: u64,
    /// Models on which the fixpoint claimed exactly `P = 1`.
    pub pre_one: u64,
    /// Wall-clock time of the campaign.
    pub wall: Duration,
}

impl CampaignSummary {
    /// Completed runs of one oracle.
    pub fn runs_of(&self, kind: OracleKind) -> u64 {
        let i = OracleKind::ALL.iter().position(|k| *k == kind).expect("kind is in ALL");
        self.oracle_runs[i]
    }
}

/// Progress callbacks emitted while a campaign runs.
#[derive(Debug)]
pub enum CampaignEvent<'a> {
    /// `done` of `total` models checked so far.
    Progress {
        /// Models checked.
        done: u64,
        /// Campaign size.
        total: u64,
    },
    /// A failure was recorded (already shrunk when shrinking is on).
    Failure(&'a CampaignFailure),
}

/// Runs a campaign, invoking `on_event` with progress and failures.
pub fn run_campaign(
    cfg: &CampaignConfig,
    on_event: &mut dyn FnMut(CampaignEvent<'_>),
) -> CampaignSummary {
    let start = Instant::now();
    let mut summary = CampaignSummary::default();
    let fingerprint = cfg.params.fingerprint();
    let progress_every = (cfg.count / 20).clamp(1, 500);

    for i in 0..cfg.count {
        let index = cfg.start_index + i;
        let model = generate(cfg.seed, index, &cfg.params);
        let outcome = run_oracles(&model, &cfg.oracle);
        summary.models += 1;
        for kind in &outcome.ran {
            let slot =
                OracleKind::ALL.iter().position(|k| k == kind).expect("oracle kind is in ALL");
            summary.oracle_runs[slot] += 1;
        }
        match outcome.pre_exact {
            Some(0.0) => summary.pre_zero += 1,
            Some(_) => summary.pre_one += 1,
            None => {}
        }

        if let Some(found) = outcome.failure {
            let (reduced, failure) = if cfg.shrink {
                match shrink(&model, &cfg.oracle) {
                    Some(r) => (r.model, r.failure),
                    // A flaky non-reproducing failure would be a
                    // determinism bug in itself; record the original.
                    None => (model.clone(), found.clone()),
                }
            } else {
                (model.clone(), found.clone())
            };
            let corpus_path = cfg.corpus_dir.as_ref().and_then(|dir| {
                let entry = CorpusEntry::new(&reduced, &failure, &fingerprint);
                write_corpus_entry(dir, &entry).ok()
            });
            let failure = CampaignFailure {
                index,
                kind: failure.kind,
                detail: failure.detail,
                source: reduced.source,
                corpus_path,
            };
            on_event(CampaignEvent::Failure(&failure));
            summary.failures.push(failure);
            if cfg.max_failures > 0 && summary.failures.len() >= cfg.max_failures {
                break;
            }
        }

        if (i + 1) % progress_every == 0 || i + 1 == cfg.count {
            on_event(CampaignEvent::Progress { done: i + 1, total: cfg.count });
        }
    }

    summary.wall = start.elapsed();
    summary
}
