//! # slim-fuzz
//!
//! Seeded parametric SLIM model generator plus a differential soundness
//! harness for the whole `slimsim` pipeline: parse → lint → fixpoint →
//! prune → compile → simulate.
//!
//! The static layers added over the last PRs make *claims* the simulator
//! silently trusts: the abstract-interpretation fixpoint short-circuits
//! sampling with exact `P = 0`/`P = 1` pre-verdicts, `--prune` deletes
//! model structure it proves dead, and the compiled step tables replace
//! the legacy interpreter on the hot path. This crate holds those layers
//! to an adversarial standard by generating thousands of structurally
//! diverse models per run and differential-testing every claim:
//!
//! | Oracle | Checked claim |
//! |--------|---------------|
//! | [`OracleKind::RoundTrip`] | `parse(pretty(m)) == m` and `pretty` is a fixed point |
//! | [`OracleKind::Lint`] | front-end + network lints never panic, are deterministic, and the deny verdict matches the `analyze` pre-flight |
//! | [`OracleKind::Bytecode`] | `Network::compile()` output passes `verify_bytecode` |
//! | [`OracleKind::CompiledEquivalence`] | compiled step tables reproduce the legacy interpreter exactly on sampled prefixes |
//! | [`OracleKind::BatchEquivalence`] | the batched SoA kernel reproduces the scalar engine's per-path outcome lane-exactly at every lane width |
//! | [`OracleKind::FusionEquivalence`] | the fused/specialized kernel and the unfused reference kernel produce bit-identical per-path outcomes |
//! | [`OracleKind::FixpointSoundness`] | a `P = 0` pre-verdict is never contradicted by a simulated goal hit (and dually for `P = 1`) |
//! | [`OracleKind::PruneInvariance`] | `--prune` leaves estimates bit-identical at fixed `(seed, workers)` |
//!
//! Any failing model is minimized by the deterministic [`shrink`]er and
//! written (with its repro command) into a regression corpus that a normal
//! `cargo test` replays — see `docs/fuzzing.md`.
//!
//! ## Example
//!
//! ```
//! use slim_fuzz::{generate, run_oracles, GenParams, OracleConfig};
//!
//! let model = generate(42, 0, &GenParams::default());
//! let outcome = run_oracles(&model, &OracleConfig::quick());
//! assert!(outcome.failure.is_none(), "{:?}", outcome.failure);
//! ```

#![forbid(unsafe_code)]

pub mod corpus;
pub mod generate;
pub mod oracle;
pub mod params;
pub mod runner;
pub mod sample;
pub mod shrink;

pub use corpus::{replay_corpus, write_corpus_entry, CorpusEntry};
pub use generate::{generate, GeneratedModel, GoalSpec};
pub use oracle::{run_oracles, OracleConfig, OracleFailure, OracleKind, OracleOutcome};
pub use params::GenParams;
pub use runner::{run_campaign, CampaignConfig, CampaignSummary};
pub use shrink::{shrink, ShrinkResult};
