//! Tunable knobs of the parametric model generator.

/// Size and shape knobs for [`crate::generate`].
///
/// Every knob is a hard range or probability the generator respects
/// exactly, so a `(seed, GenParams)` pair is a complete, reproducible
/// description of one model family. The defaults produce small models
/// (1–4 components, 2–4 locations each) that stress structural diversity
/// rather than raw size — the right regime for differential testing,
/// where thousands of cheap models beat tens of large ones.
#[derive(Debug, Clone, PartialEq)]
pub struct GenParams {
    /// Minimum number of behavioral components (≥ 1).
    pub min_components: usize,
    /// Maximum number of behavioral components (≥ `min_components`).
    pub max_components: usize,
    /// Maximum locations per component (≥ 2).
    pub max_locations: usize,
    /// Maximum extra (non-structural) transitions added per component.
    pub max_extra_transitions: usize,
    /// Probability that a component is drawn from the distributed-systems
    /// vocabulary (server with failure/repair, lossy link, bounded queue)
    /// instead of the free-form grammar.
    pub vocabulary_prob: f64,
    /// Probability that a generated component carries an exponential
    /// fault self-loop or failure branch (the "fault rate" knob).
    pub fault_prob: f64,
    /// Fault/repair rate range (log-uniform draw), per time unit.
    pub rate_range: (f64, f64),
    /// Probability that two components are wired by a synchronized event
    /// connection (per candidate pair, producer → consumer).
    pub sync_prob: f64,
    /// Probability that a guarded transition is urgent.
    pub urgent_prob: f64,
    /// Probability that a location carries a clock-bound invariant.
    pub invariant_prob: f64,
    /// Maximum depth of generated guard/effect expressions over discrete
    /// variables (clock guards stay affine regardless).
    pub max_expr_depth: usize,
    /// Probability that the model gets an error model + fault injection
    /// woven in (§II-D model extension).
    pub injection_prob: f64,
    /// Probability that the goal is a location atom rather than the
    /// Boolean goal variable.
    pub goal_loc_prob: f64,
    /// Probability that a real literal is drawn from the extreme pool
    /// (very large / very small magnitudes) instead of the small pool —
    /// exercises numeric printing and parsing edges.
    pub extreme_real_prob: f64,
}

impl Default for GenParams {
    fn default() -> Self {
        GenParams {
            min_components: 1,
            max_components: 4,
            max_locations: 4,
            max_extra_transitions: 3,
            vocabulary_prob: 0.5,
            fault_prob: 0.6,
            rate_range: (0.01, 16.0),
            sync_prob: 0.5,
            urgent_prob: 0.2,
            invariant_prob: 0.5,
            max_expr_depth: 3,
            injection_prob: 0.3,
            goal_loc_prob: 0.3,
            extreme_real_prob: 0.05,
        }
    }
}

impl GenParams {
    /// Tiny models (1–2 components) — the shrinker's target regime and
    /// the fastest smoke configuration.
    pub fn tiny() -> Self {
        GenParams {
            min_components: 1,
            max_components: 2,
            max_locations: 3,
            max_extra_transitions: 2,
            ..Self::default()
        }
    }

    /// Larger models for overnight triage runs.
    pub fn stress() -> Self {
        GenParams {
            min_components: 3,
            max_components: 8,
            max_locations: 6,
            max_extra_transitions: 6,
            ..Self::default()
        }
    }

    /// A short stable fingerprint of the knob values, recorded in corpus
    /// entries so a repro names the exact family it came from.
    pub fn fingerprint(&self) -> String {
        format!(
            "c{}-{}/l{}/t{}/v{:.2}/f{:.2}/s{:.2}",
            self.min_components,
            self.max_components,
            self.max_locations,
            self.max_extra_transitions,
            self.vocabulary_prob,
            self.fault_prob,
            self.sync_prob
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_coherent() {
        let p = GenParams::default();
        assert!(p.min_components >= 1 && p.min_components <= p.max_components);
        assert!(p.max_locations >= 2);
        assert!(p.rate_range.0 > 0.0 && p.rate_range.0 < p.rate_range.1);
        for prob in [
            p.vocabulary_prob,
            p.fault_prob,
            p.sync_prob,
            p.urgent_prob,
            p.invariant_prob,
            p.injection_prob,
            p.goal_loc_prob,
            p.extreme_real_prob,
        ] {
            assert!((0.0..=1.0).contains(&prob));
        }
    }

    #[test]
    fn fingerprint_is_stable() {
        assert_eq!(GenParams::default().fingerprint(), GenParams::default().fingerprint());
        assert_ne!(GenParams::default().fingerprint(), GenParams::stress().fingerprint());
    }
}
