//! The committed regression corpus.
//!
//! Every failure the campaign finds is shrunk and written as one
//! self-contained `.slim` file whose leading `--` comment lines carry the
//! metadata needed to replay it: the oracle that failed, the `(seed,
//! index)` provenance, the goal/bound of the property, and the exact CLI
//! repro command. [`replay_corpus`] parses the files back and re-runs the
//! full oracle stack on each — a normal `cargo test` (and the CI
//! `fuzz-smoke` job) replays the corpus and fails on any regression.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::generate::{GeneratedModel, GoalSpec};
use crate::oracle::{run_oracles, OracleConfig, OracleFailure, OracleKind};

/// One corpus entry: a minimized failing model plus replay metadata.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// The oracle that failed when the entry was captured.
    pub oracle: OracleKind,
    /// Campaign master seed.
    pub seed: u64,
    /// Model index within the campaign.
    pub index: u64,
    /// [`crate::GenParams::fingerprint`] of the generating family.
    pub params: String,
    /// Root component (`Type.Impl`).
    pub root_type: String,
    /// Root implementation name.
    pub root_impl: String,
    /// The reachability goal.
    pub goal: GoalSpec,
    /// Property time bound.
    pub bound: f64,
    /// One-line failure description at capture time.
    pub detail: String,
    /// Exact CLI command that reproduces the campaign hit.
    pub repro: String,
    /// Minimized `.slim` source.
    pub source: String,
}

impl CorpusEntry {
    /// Builds an entry from a (shrunk) model and its failure.
    pub fn new(model: &GeneratedModel, failure: &OracleFailure, params: &str) -> CorpusEntry {
        CorpusEntry {
            oracle: failure.kind,
            seed: model.seed,
            index: model.index,
            params: params.to_string(),
            root_type: model.root_type.clone(),
            root_impl: model.root_impl.clone(),
            goal: model.goal.clone(),
            bound: model.bound,
            detail: failure.detail.replace('\n', " "),
            repro: format!(
                "slimsim fuzz --seed {} --start-index {} --count 1 --thorough",
                model.seed, model.index
            ),
            source: model.source.clone(),
        }
    }

    /// Stable file name for this entry.
    pub fn file_name(&self) -> String {
        format!("{}-s{}-i{}.slim", self.oracle.name(), self.seed, self.index)
    }

    /// Renders the entry as a self-contained `.slim` file.
    pub fn render(&self) -> String {
        format!(
            "-- slim-fuzz regression case (see docs/fuzzing.md)\n\
             -- oracle: {}\n\
             -- seed: {}\n\
             -- index: {}\n\
             -- params: {}\n\
             -- root: {}.{}\n\
             -- goal: {}\n\
             -- bound: {}\n\
             -- repro: {}\n\
             -- detail: {}\n\
             {}",
            self.oracle.name(),
            self.seed,
            self.index,
            self.params,
            self.root_type,
            self.root_impl,
            self.goal.describe(),
            self.bound,
            self.repro,
            self.detail,
            self.source
        )
    }

    /// Parses a rendered entry back. The model text is everything after
    /// the leading comment block (comments are also legal SLIM, so the
    /// whole file parses as a model too).
    ///
    /// # Errors
    /// Describes the missing or malformed header field.
    pub fn parse(text: &str) -> Result<CorpusEntry, String> {
        let mut fields: Vec<(String, String)> = Vec::new();
        let mut body_start = 0;
        for line in text.lines() {
            let trimmed = line.trim_start();
            if let Some(rest) = trimmed.strip_prefix("--") {
                if let Some((k, v)) = rest.split_once(':') {
                    fields.push((k.trim().to_string(), v.trim().to_string()));
                }
                body_start += line.len() + 1;
            } else {
                break;
            }
        }
        let get = |key: &str| {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.clone())
                .ok_or_else(|| format!("corpus entry is missing the `-- {key}:` header"))
        };
        let oracle = OracleKind::parse(&get("oracle")?)
            .ok_or_else(|| "unknown oracle name in corpus header".to_string())?;
        let (root_type, root_impl) = {
            let root = get("root")?;
            let (t, i) = root
                .split_once('.')
                .ok_or_else(|| format!("`-- root:` must be Type.Impl, got `{root}`"))?;
            (t.to_string(), i.to_string())
        };
        let goal = GoalSpec::parse(&get("goal")?)
            .ok_or_else(|| "malformed `-- goal:` header".to_string())?;
        let parse_u64 =
            |v: String| v.parse::<u64>().map_err(|e| format!("bad integer header: {e}"));
        Ok(CorpusEntry {
            oracle,
            seed: parse_u64(get("seed")?)?,
            index: parse_u64(get("index")?)?,
            params: get("params").unwrap_or_default(),
            root_type,
            root_impl,
            goal,
            bound: get("bound")?.parse().map_err(|e| format!("bad `-- bound:` header: {e}"))?,
            detail: get("detail").unwrap_or_default(),
            repro: get("repro").unwrap_or_default(),
            source: text[body_start.min(text.len())..].to_string(),
        })
    }

    /// Rebuilds the generated-model view for replay, restoring the
    /// `(seed, index)` provenance so oracle RNG streams match the
    /// original failure exactly.
    ///
    /// # Errors
    /// Parse errors in the stored source.
    pub fn to_model(&self) -> Result<GeneratedModel, String> {
        let mut gm = GeneratedModel::from_source(
            &self.source,
            &self.root_type,
            &self.root_impl,
            self.goal.clone(),
            self.bound,
        )?;
        gm.seed = self.seed;
        gm.index = self.index;
        Ok(gm)
    }
}

/// Writes `entry` into `dir` (created if missing); returns the path.
///
/// # Errors
/// Propagates filesystem errors.
pub fn write_corpus_entry(dir: &Path, entry: &CorpusEntry) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(entry.file_name());
    fs::write(&path, entry.render())?;
    Ok(path)
}

/// Replays every `.slim` entry under `dir` (sorted by file name) through
/// the full oracle stack. Returns one `(file name, result)` row per
/// entry: `Ok(())` when all oracles pass — the regression stays fixed —
/// and `Err(description)` on a parse problem or a re-failing oracle.
///
/// A missing directory replays as an empty corpus (no failures): the
/// corpus is optional until the first bug is found.
///
/// # Errors
/// Propagates filesystem errors from reading the directory itself.
pub fn replay_corpus(
    dir: &Path,
    cfg: &OracleConfig,
) -> io::Result<Vec<(String, Result<(), String>)>> {
    let mut entries = Vec::new();
    if !dir.exists() {
        return Ok(entries);
    }
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "slim"))
        .collect();
    paths.sort();
    for path in paths {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string());
        let text = fs::read_to_string(&path)?;
        let result = replay_one(&text, cfg);
        entries.push((name, result));
    }
    Ok(entries)
}

fn replay_one(text: &str, cfg: &OracleConfig) -> Result<(), String> {
    let entry = CorpusEntry::parse(text)?;
    let model = entry.to_model()?;
    match run_oracles(&model, cfg).failure {
        None => Ok(()),
        Some(f) => Err(format!(
            "regression: oracle `{}` fails again: {} (captured failure was `{}`: {})",
            f.kind.name(),
            f.detail,
            entry.oracle.name(),
            entry.detail
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate;
    use crate::oracle::OracleFailure;
    use crate::params::GenParams;

    #[test]
    fn corpus_entry_round_trips() {
        let model = generate(11, 3, &GenParams::tiny());
        let failure = OracleFailure {
            kind: OracleKind::FixpointSoundness,
            detail: "fixpoint claims P = 0 but path 4 hits the goal".to_string(),
        };
        let entry = CorpusEntry::new(&model, &failure, &GenParams::tiny().fingerprint());
        let parsed = CorpusEntry::parse(&entry.render()).expect("rendered entry parses");
        assert_eq!(parsed.oracle, entry.oracle);
        assert_eq!(parsed.seed, entry.seed);
        assert_eq!(parsed.index, entry.index);
        assert_eq!(parsed.goal, entry.goal);
        assert_eq!(parsed.bound, entry.bound);
        assert_eq!(parsed.source.trim_end(), entry.source.trim_end());
        let rebuilt = parsed.to_model().expect("stored source parses");
        assert_eq!(rebuilt.seed, 11);
        assert_eq!(rebuilt.index, 3);
    }
}
