//! Deterministic greedy shrinker for failing models.
//!
//! Given a model on which an oracle fails, [`shrink`] repeatedly applies
//! the first size-reducing edit that preserves the *same* failing oracle
//! kind, until no edit applies. Edits are enumerated in a fixed order
//! (large structural deletions first, then local simplifications), every
//! candidate is re-checked by re-running the oracle stack, and progress
//! is measured by the pretty-printed source length — strictly decreasing,
//! so the loop terminates. The result is a 1-minimal model: no single
//! enumerated edit can be applied without losing the failure.
//!
//! Edits are allowed to produce broken models (dangling references,
//! unlowerable structure): the acceptance check — "still fails with the
//! same oracle kind" — filters them out, which keeps the edit set simple
//! and the shrinker honest.

use slim_lang::ast::{Expr, Model, QName};

use crate::generate::{GeneratedModel, GoalSpec};
use crate::oracle::{run_oracles, OracleConfig, OracleFailure};

/// Outcome of a shrink run.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The minimized model (still failing).
    pub model: GeneratedModel,
    /// The failure exhibited by the minimized model (same kind as the
    /// original's; the detail text may differ).
    pub failure: OracleFailure,
    /// Accepted edits (size-reducing steps taken).
    pub rounds: usize,
    /// Candidate edits tried, accepted or not.
    pub attempts: usize,
}

/// Minimizes `model` while it keeps failing with the same oracle kind.
///
/// Returns `None` when the model does not fail at all under `cfg` —
/// there is nothing to shrink.
pub fn shrink(model: &GeneratedModel, cfg: &OracleConfig) -> Option<ShrinkResult> {
    let mut failure = run_oracles(model, cfg).failure?;
    let kind = failure.kind;
    let mut current = model.clone();
    let mut rounds = 0;
    let mut attempts = 0;

    loop {
        let mut improved = false;
        for candidate in edits(&current) {
            if candidate.source.len() >= current.source.len() {
                continue;
            }
            attempts += 1;
            if let Some(f) = run_oracles(&candidate, cfg).failure {
                if f.kind == kind {
                    current = candidate;
                    failure = f;
                    rounds += 1;
                    improved = true;
                    break;
                }
            }
        }
        if !improved {
            return Some(ShrinkResult { model: current, failure, rounds, attempts });
        }
    }
}

/// All candidate one-step reductions of `gm`, in priority order.
fn edits(gm: &GeneratedModel) -> Vec<GeneratedModel> {
    let m = &gm.model;
    let mut out = Vec::new();

    // 1. Drop a whole component instance (and its now-unused decls).
    if let Some(root) = m.find_impl(&gm.root_type, &gm.root_impl) {
        for sub in &root.subcomponents {
            if let slim_lang::ast::Subcomponent::Instance { name, .. } = sub {
                if let Some(next) = remove_component(gm, name) {
                    out.push(gm.with_model(next));
                }
            }
        }
    }

    // 2. Drop a fault injection (and its error model when unused).
    for i in 0..m.injections.len() {
        let mut next = m.clone();
        next.injections.remove(i);
        drop_unused_error_models(&mut next);
        out.push(gm.with_model(next));
    }

    // 3. Drop a non-initial mode plus every transition touching it.
    for (ii, im) in m.impls.iter().enumerate() {
        for mode in &im.modes {
            if mode.initial || goal_names_location(&gm.goal, &mode.name) {
                continue;
            }
            let mut next = m.clone();
            let target = &mut next.impls[ii];
            let name = mode.name.clone();
            target.modes.retain(|md| md.name != name);
            target.transitions.retain(|t| t.from != name && t.to != name);
            out.push(gm.with_model(next));
        }
    }

    // 4. Drop a single transition.
    for (ii, im) in m.impls.iter().enumerate() {
        for ti in 0..im.transitions.len() {
            let mut next = m.clone();
            next.impls[ii].transitions.remove(ti);
            out.push(gm.with_model(next));
        }
    }

    // 5. Narrow the goal flow: replace an `or` with either branch.
    for (ii, im) in m.impls.iter().enumerate() {
        for (fi, flow) in im.flows.iter().enumerate() {
            for replacement in or_halves(&flow.expr) {
                let mut next = m.clone();
                next.impls[ii].flows[fi].expr = replacement;
                out.push(gm.with_model(next));
            }
        }
    }

    // 6. Drop one effect from a transition.
    for (ii, im) in m.impls.iter().enumerate() {
        for (ti, t) in im.transitions.iter().enumerate() {
            for ei in 0..t.effects.len() {
                let mut next = m.clone();
                next.impls[ii].transitions[ti].effects.remove(ei);
                out.push(gm.with_model(next));
            }
        }
    }

    // 7. Drop a guard or an invariant (both mean `true`).
    for (ii, im) in m.impls.iter().enumerate() {
        for (ti, t) in im.transitions.iter().enumerate() {
            if t.guard.is_some() {
                let mut next = m.clone();
                next.impls[ii].transitions[ti].guard = None;
                out.push(gm.with_model(next));
            }
            if t.urgent {
                let mut next = m.clone();
                next.impls[ii].transitions[ti].urgent = false;
                out.push(gm.with_model(next));
            }
        }
        for (mi, mode) in im.modes.iter().enumerate() {
            if mode.invariant.is_some() {
                let mut next = m.clone();
                next.impls[ii].modes[mi].invariant = None;
                out.push(gm.with_model(next));
            }
        }
    }

    // 8. Drop a connection.
    for (ii, im) in m.impls.iter().enumerate() {
        for ci in 0..im.connections.len() {
            let mut next = m.clone();
            next.impls[ii].connections.remove(ci);
            out.push(gm.with_model(next));
        }
    }

    // 9. Drop a feature or a data subcomponent (blind: acceptance
    // filters out edits that break references the failure depends on).
    for (ty_i, ty) in m.types.iter().enumerate() {
        for fi in 0..ty.features.len() {
            let mut next = m.clone();
            next.types[ty_i].features.remove(fi);
            out.push(gm.with_model(next));
        }
    }
    for (ii, im) in m.impls.iter().enumerate() {
        for si in 0..im.subcomponents.len() {
            if matches!(im.subcomponents[si], slim_lang::ast::Subcomponent::Data { .. }) {
                let mut next = m.clone();
                next.impls[ii].subcomponents.remove(si);
                out.push(gm.with_model(next));
            }
        }
    }

    out
}

/// Removes instance `inst` from the root implementation, patches every
/// reference (connections, flow atoms, injections), and drops the
/// instance's type/impl when no other instance uses them. Returns `None`
/// when the edit cannot keep the goal expressible (location goal on the
/// instance, or the goal flow would lose its last atom).
fn remove_component(gm: &GeneratedModel, inst: &str) -> Option<Model> {
    if let GoalSpec::Loc(auto, _) = &gm.goal {
        if auto.split('.').nth(1) == Some(inst) {
            return None;
        }
    }
    let mut next = gm.model.clone();
    let root_idx =
        next.impls.iter().position(|im| im.name.0 == gm.root_type && im.name.1 == gm.root_impl)?;

    let mut removed_ref: Option<(String, String)> = None;
    {
        let root = &mut next.impls[root_idx];
        let before = root.subcomponents.len();
        root.subcomponents.retain(|s| match s {
            slim_lang::ast::Subcomponent::Instance { name, impl_ref, .. } if name == inst => {
                removed_ref = Some(impl_ref.clone());
                false
            }
            _ => true,
        });
        if root.subcomponents.len() == before {
            return None;
        }
        root.connections.retain(|c| !mentions(&c.from, inst) && !mentions(&c.to, inst));
        for flow in &mut root.flows {
            flow.expr = prune_atoms(&flow.expr, inst)?;
        }
    }
    next.injections.retain(|inj| inj.target.segments().get(1).map(String::as_str) != Some(inst));
    drop_unused_error_models(&mut next);

    if let Some((ty, im)) = removed_ref {
        let still_used = next.impls.iter().any(|ci| {
            ci.subcomponents.iter().any(|s| {
                matches!(s, slim_lang::ast::Subcomponent::Instance { impl_ref, .. }
                    if impl_ref.0 == ty)
            })
        });
        if !still_used {
            next.types.retain(|t| t.name != ty);
            next.impls.retain(|ci| !(ci.name.0 == ty && ci.name.1 == im));
        }
    }
    Some(next)
}

fn mentions(q: &QName, inst: &str) -> bool {
    q.segments().first().map(String::as_str) == Some(inst)
}

/// Rewrites a goal-flow expression with every atom referring to `inst`
/// removed; `None` when nothing would remain.
fn prune_atoms(e: &Expr, inst: &str) -> Option<Expr> {
    match e {
        Expr::Bin(slim_lang::ast::BinOp::Or, a, b) => {
            match (prune_atoms(a, inst), prune_atoms(b, inst)) {
                (Some(x), Some(y)) => {
                    Some(Expr::Bin(slim_lang::ast::BinOp::Or, Box::new(x), Box::new(y)))
                }
                (Some(x), None) | (None, Some(x)) => Some(x),
                (None, None) => None,
            }
        }
        _ if expr_mentions(e, inst) => None,
        _ => Some(e.clone()),
    }
}

fn expr_mentions(e: &Expr, inst: &str) -> bool {
    match e {
        Expr::Lit(_) => false,
        Expr::Name(q) => mentions(q, inst),
        Expr::Not(x) | Expr::Neg(x) => expr_mentions(x, inst),
        Expr::Bin(_, a, b) => expr_mentions(a, inst) || expr_mentions(b, inst),
        Expr::Ite(c, a, b) => {
            expr_mentions(c, inst) || expr_mentions(a, inst) || expr_mentions(b, inst)
        }
    }
}

/// Both halves of every `or` node in `e` (the classic disjunction
/// narrowing used to minimize goal flows).
fn or_halves(e: &Expr) -> Vec<Expr> {
    match e {
        Expr::Bin(slim_lang::ast::BinOp::Or, a, b) => {
            let mut v = vec![(**a).clone(), (**b).clone()];
            for half in or_halves(a) {
                v.push(Expr::Bin(slim_lang::ast::BinOp::Or, Box::new(half), b.clone()));
            }
            for half in or_halves(b) {
                v.push(Expr::Bin(slim_lang::ast::BinOp::Or, a.clone(), Box::new(half)));
            }
            v
        }
        _ => Vec::new(),
    }
}

fn goal_names_location(goal: &GoalSpec, loc: &str) -> bool {
    matches!(goal, GoalSpec::Loc(_, l) if l == loc)
}

fn drop_unused_error_models(m: &mut Model) {
    let used: Vec<String> = m.injections.iter().map(|i| i.error_model.clone()).collect();
    m.error_models.retain(|em| used.contains(&em.name));
}
