//! End-to-end tests for the fuzz harness itself: generator determinism,
//! the injected-unsoundness acceptance check, and shrinker stability.

use slim_automata::network::Network;
use slim_fuzz::{generate, run_oracles, shrink, GenParams, OracleConfig, OracleKind};
use slimsim_core::prelude::{PreVerdict, TimedReach};

/// Same `(seed, index, params)` must yield byte-identical sources — the
/// whole harness (repro commands, corpus entries, CI) leans on this.
#[test]
fn generator_is_deterministic() {
    for params in [GenParams::tiny(), GenParams::default(), GenParams::stress()] {
        for index in 0..20u64 {
            let a = generate(0xD5_2015, index, &params);
            let b = generate(0xD5_2015, index, &params);
            assert_eq!(a.source, b.source, "index {index}, params {}", params.fingerprint());
            assert_eq!(a.goal, b.goal);
            assert_eq!(a.bound, b.bound);
        }
    }
}

/// Different indices must not collapse onto one model (a stuck RNG
/// stream would silently turn a 10k-model campaign into one model).
#[test]
fn generator_varies_across_indices() {
    let sources: Vec<String> =
        (0..12).map(|i| generate(5, i, &GenParams::default()).source).collect();
    let distinct: std::collections::HashSet<&str> = sources.iter().map(String::as_str).collect();
    assert!(distinct.len() >= 10, "only {} distinct models in 12 indices", distinct.len());
}

/// A pre-verdict function that is unsound by construction: it claims
/// `P = 0` for every property. Any model whose goal is actually
/// reachable within the bound must trip the soundness oracle.
fn always_unreachable(_: &Network, _: &TimedReach) -> PreVerdict {
    PreVerdict::Unreachable
}

/// Cheap oracle configuration for the injection tests: few paths, short
/// walks — the corrupted claim falls over on the first goal-hitting path.
fn injected_cfg() -> OracleConfig {
    let mut cfg = OracleConfig::quick();
    cfg.soundness_paths = 8;
    cfg.equivalence_steps = 20;
    cfg.equivalence_walks = 1;
    cfg.pre_verdict_fn = always_unreachable;
    cfg
}

/// Finds a seeded model that reaches its goal, so the corrupted `P = 0`
/// claim is observably false.
fn first_caught_index() -> u64 {
    let cfg = injected_cfg();
    for index in 0..200 {
        let model = generate(1, index, &GenParams::tiny());
        if let Some(failure) = run_oracles(&model, &cfg).failure {
            assert_eq!(
                failure.kind,
                OracleKind::FixpointSoundness,
                "corrupted pre-verdict tripped the wrong oracle: {}",
                failure.detail
            );
            return index;
        }
    }
    panic!("no model in 200 tiny seeds reaches its goal — generator envelope regressed");
}

/// The acceptance check from the issue: an intentionally unsound
/// fixpoint claim is caught by the soundness oracle and shrunk to a
/// model that still exhibits the failure.
#[test]
fn injected_unsoundness_is_caught_and_shrunk() {
    let cfg = injected_cfg();
    let index = first_caught_index();
    let model = generate(1, index, &GenParams::tiny());

    let result = shrink(&model, &cfg).expect("model fails, so shrink returns a result");
    assert_eq!(result.failure.kind, OracleKind::FixpointSoundness);
    assert!(result.model.source.len() <= model.source.len(), "shrinking may never grow the model");
    // The minimized model must still fail on its own.
    let check = run_oracles(&result.model, &cfg);
    assert_eq!(
        check.failure.map(|f| f.kind),
        Some(OracleKind::FixpointSoundness),
        "minimized model no longer fails"
    );
    // ... and must pass cleanly under the real, sound pre-verdict: the
    // bug lived in the injected claim, not the model.
    let sound = run_oracles(&result.model, &OracleConfig::quick());
    assert!(
        sound.failure.is_none(),
        "minimized model fails even without the injected bug: {:?}",
        sound.failure
    );
}

/// The timed flavor of the injected unsoundness: a pre-verdict that
/// claims every goal provably misses its deadline. A path reaching the
/// goal *inside* the bound refutes it exactly like a plain `P = 0`.
fn always_deadline_unreachable(_: &Network, _: &TimedReach) -> PreVerdict {
    PreVerdict::DeadlineUnreachable
}

#[test]
fn injected_timed_unsoundness_is_caught_and_shrunk() {
    let mut cfg = injected_cfg();
    cfg.pre_verdict_fn = always_deadline_unreachable;
    let index = (0..200)
        .find(|&i| {
            let model = generate(1, i, &GenParams::tiny());
            run_oracles(&model, &cfg).failure.as_ref().is_some_and(|f| {
                assert_eq!(
                    f.kind,
                    OracleKind::FixpointSoundness,
                    "corrupted timed pre-verdict tripped the wrong oracle: {}",
                    f.detail
                );
                assert!(
                    f.detail.contains("deadline-unreachable"),
                    "refutation must name the timed verdict: {}",
                    f.detail
                );
                true
            })
        })
        .expect("no model in 200 tiny seeds reaches its goal in time");

    let model = generate(1, index, &GenParams::tiny());
    let result = shrink(&model, &cfg).expect("model fails, so shrink returns a result");
    assert_eq!(result.failure.kind, OracleKind::FixpointSoundness);
    let check = run_oracles(&result.model, &cfg);
    assert_eq!(check.failure.map(|f| f.kind), Some(OracleKind::FixpointSoundness));
    // The real, zone-enabled pre-verdict makes no such claim here.
    let sound = run_oracles(&result.model, &OracleConfig::quick());
    assert!(
        sound.failure.is_none(),
        "minimized model fails even without the injected bug: {:?}",
        sound.failure
    );
}

/// Shrinking is deterministic: two runs from the same failing model take
/// the same edits and land on byte-identical minimized sources.
#[test]
fn shrinker_output_is_stable() {
    let cfg = injected_cfg();
    let model = generate(1, first_caught_index(), &GenParams::tiny());
    let a = shrink(&model, &cfg).expect("first shrink");
    let b = shrink(&model, &cfg).expect("second shrink");
    assert_eq!(a.model.source, b.model.source);
    assert_eq!(a.rounds, b.rounds);
    assert_eq!(a.attempts, b.attempts);
}
