//! The industrial launcher case study of §V (Fig. 4), reconstructed from
//! the paper's prose.
//!
//! Architecture (Fig. 4): two PCDUs (each a battery with linear energy
//! dynamics and a permanent failure mode), two GPS units and three gyros
//! for navigation, two DPU *triplexes* (2-out-of-3 voting processors)
//! computing thruster commands, and the thruster block which needs a
//! command from at least one triplex. All output signals are abstracted
//! to Booleans indicating whether a correct signal is available (§V-a),
//! wired with data flows. Failure rates are scaled up unrealistically so
//! strategy effects show with moderate sample counts (§V-c).
//!
//! The §V-d experiment compares two variants:
//! * **permanent** DPU faults — the model has only probabilistic and
//!   deterministic transitions, so all strategies coincide (Fig. 5 left);
//! * **recoverable** (hot) DPU faults — recovery happens in a
//!   non-deterministic window `[0.2, 0.3]` h and restarting *before* the
//!   `0.25` h cool-down bricks the unit, so the strategies diverge: ASAP
//!   always restarts too early (worst), MaxTime never does (best), Local
//!   and Progressive land in between (Fig. 5 right).
//!
//! The failure property is the paper's probabilistic existence pattern
//! `P(◇[0,u] failure)` with `failure` = neither triplex can send a
//! thruster command while in flight.

use slim_automata::automaton::Effect;
use slim_automata::prelude::*;

/// DPU fault model variant (the Fig. 5 left/right knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DpuFaultMode {
    /// Permanent DPU faults: no recovery.
    Permanent,
    /// Hot (recoverable) DPU faults with a non-deterministic restart
    /// window and a cool-down before which restarting escalates.
    Recoverable,
    /// All three fault classes of §V-c: transient faults that self-heal
    /// within the repair window, hot faults that need a restart (with the
    /// cool-down escalation), and directly permanent faults. Transient
    /// faults dominate, hot follow, permanent are rare (the usual
    /// ordering of the classes).
    ThreeClass,
}

/// Parameters of the launcher model (time unit: hours).
#[derive(Debug, Clone, Copy)]
pub struct LauncherParams {
    /// DPU fault variant.
    pub dpu_faults: DpuFaultMode,
    /// DPU fault rate (scaled up, §V-c).
    pub lambda_dpu: f64,
    /// GPS permanent fault rate.
    pub lambda_gps: f64,
    /// Gyro permanent fault rate.
    pub lambda_gyro: f64,
    /// Battery permanent fault rate.
    pub lambda_battery: f64,
    /// Battery drain (energy units per hour; batteries start at 100).
    pub battery_drain: f64,
    /// DPU restart window start (after fault occurrence).
    pub repair_earliest: f64,
    /// Cool-down instant; restarts before it brick the DPU.
    pub cooldown: f64,
    /// DPU restart window end.
    pub repair_latest: f64,
    /// End of the boost phase (deterministic mission timing).
    pub boost_end: f64,
}

impl Default for LauncherParams {
    fn default() -> Self {
        LauncherParams {
            dpu_faults: DpuFaultMode::Recoverable,
            lambda_dpu: 0.3,
            lambda_gps: 0.02,
            lambda_gyro: 0.02,
            lambda_battery: 0.005,
            battery_drain: 2.0,
            repair_earliest: 0.2,
            cooldown: 0.25,
            repair_latest: 0.3,
            boost_end: 0.1,
        }
    }
}

/// Builds the launcher network.
///
/// Key variables: `failure` (the goal flag, a flow), `triplex_a.cmd`,
/// `triplex_b.cmd`, `nav.ok`, per-unit `*.ok` health flags.
///
/// # Panics
/// Panics if the internally constructed model fails validation — a bug,
/// covered by tests.
pub fn launcher_network(p: &LauncherParams) -> Network {
    let mut b = NetworkBuilder::new();

    // ---- power: two PCDUs with battery dynamics ------------------------
    let mut power_ok = Vec::new();
    for name in ["pcdu_a", "pcdu_b"] {
        let energy = b.var(format!("{name}.energy"), VarType::Continuous, Value::Real(100.0));
        let ok = b.var(format!("{name}.ok"), VarType::Bool, Value::Bool(true));
        power_ok.push(ok);
        // Battery dynamics: linear energy drain with an urgent depletion
        // transition at the invariant boundary. (Markovian transitions
        // may not share a location with guards or invariants in SLIM, so
        // the permanent battery fault lives in a sibling automaton.)
        let mut a = AutomatonBuilder::new(format!("{name}.battery"));
        let on = a.location_with(
            "on",
            Expr::var(energy).ge(Expr::real(0.0)),
            [(energy, -p.battery_drain)],
        );
        let empty = a.location("empty");
        a.guarded_urgent(
            on,
            ActionId::TAU,
            Expr::var(energy).le(Expr::real(0.0)),
            [Effect::assign(ok, Expr::bool(false))],
            empty,
        );
        b.add_automaton(a);
        // Permanent battery fault (§V-b: a single permanent failure mode).
        let mut f = AutomatonBuilder::new(format!("{name}.fault"));
        let nominal = f.location("ok");
        let dead = f.location("dead");
        f.markovian(nominal, p.lambda_battery, [Effect::assign(ok, Expr::bool(false))], dead);
        b.add_automaton(f);
    }

    // ---- navigation sensors -------------------------------------------
    let mut gps_ok = Vec::new();
    for name in ["gps1", "gps2"] {
        let ok = b.var(format!("{name}.ok"), VarType::Bool, Value::Bool(true));
        gps_ok.push(ok);
        let mut a = AutomatonBuilder::new(name);
        let acq = a.location("acquisition");
        let dead = a.location("failed");
        a.markovian(acq, p.lambda_gps, [Effect::assign(ok, Expr::bool(false))], dead);
        b.add_automaton(a);
    }
    let mut gyro_ok = Vec::new();
    for name in ["gyro1", "gyro2", "gyro3"] {
        let ok = b.var(format!("{name}.ok"), VarType::Bool, Value::Bool(true));
        gyro_ok.push(ok);
        let mut a = AutomatonBuilder::new(name);
        let run = a.location("running");
        let dead = a.location("failed");
        a.markovian(run, p.lambda_gyro, [Effect::assign(ok, Expr::bool(false))], dead);
        b.add_automaton(a);
    }

    // ---- DPU triplexes --------------------------------------------------
    let mut triplex_units: Vec<Vec<VarId>> = Vec::new();
    for triplex in ["triplex_a", "triplex_b"] {
        let mut units = Vec::new();
        for i in 0..3 {
            let name = format!("{triplex}.dpu{i}");
            let ok = b.var(format!("{name}.ok"), VarType::Bool, Value::Bool(true));
            units.push(ok);
            let mut a = AutomatonBuilder::new(name.clone());
            match p.dpu_faults {
                DpuFaultMode::Permanent => {
                    let run = a.location("ok");
                    let dead = a.location("permanent");
                    a.markovian(run, p.lambda_dpu, [Effect::assign(ok, Expr::bool(false))], dead);
                }
                DpuFaultMode::ThreeClass => {
                    // §V-c: transient (self-healing), hot (restartable)
                    // and permanent faults, rates split 70/25/5.
                    let c = b.var(format!("{name}.c"), VarType::Clock, Value::Real(0.0));
                    let run = a.location("ok");
                    let transient = a.location_with(
                        "transient",
                        Expr::var(c).le(Expr::real(p.repair_latest)),
                        [],
                    );
                    let hot =
                        a.location_with("hot", Expr::var(c).le(Expr::real(p.repair_latest)), []);
                    let bricked = a.location("permanent");
                    let fault_effects =
                        [Effect::assign(ok, Expr::bool(false)), Effect::assign(c, Expr::real(0.0))];
                    a.markovian(run, 0.70 * p.lambda_dpu, fault_effects.clone(), transient);
                    a.markovian(run, 0.25 * p.lambda_dpu, fault_effects.clone(), hot);
                    a.markovian(
                        run,
                        0.05 * p.lambda_dpu,
                        [Effect::assign(ok, Expr::bool(false))],
                        bricked,
                    );
                    // Transient faults self-heal anywhere in the window.
                    a.guarded(
                        transient,
                        ActionId::TAU,
                        Expr::var(c)
                            .ge(Expr::real(p.repair_earliest))
                            .and(Expr::var(c).le(Expr::real(p.repair_latest))),
                        [Effect::assign(ok, Expr::bool(true)), Effect::assign(c, Expr::real(0.0))],
                        run,
                    );
                    // Hot faults: restart too early bricks, later recovers.
                    a.guarded(
                        hot,
                        ActionId::TAU,
                        Expr::var(c)
                            .ge(Expr::real(p.repair_earliest))
                            .and(Expr::var(c).lt(Expr::real(p.cooldown))),
                        [],
                        bricked,
                    );
                    a.guarded(
                        hot,
                        ActionId::TAU,
                        Expr::var(c)
                            .ge(Expr::real(p.cooldown))
                            .and(Expr::var(c).le(Expr::real(p.repair_latest))),
                        [Effect::assign(ok, Expr::bool(true)), Effect::assign(c, Expr::real(0.0))],
                        run,
                    );
                }
                DpuFaultMode::Recoverable => {
                    let c = b.var(format!("{name}.c"), VarType::Clock, Value::Real(0.0));
                    let run = a.location("ok");
                    let hot =
                        a.location_with("hot", Expr::var(c).le(Expr::real(p.repair_latest)), []);
                    let bricked = a.location("permanent");
                    a.markovian(
                        run,
                        p.lambda_dpu,
                        [Effect::assign(ok, Expr::bool(false)), Effect::assign(c, Expr::real(0.0))],
                        hot,
                    );
                    // Restart too early (before cool-down): bricks.
                    a.guarded(
                        hot,
                        ActionId::TAU,
                        Expr::var(c)
                            .ge(Expr::real(p.repair_earliest))
                            .and(Expr::var(c).lt(Expr::real(p.cooldown))),
                        [],
                        bricked,
                    );
                    // Restart after cool-down: recovers.
                    a.guarded(
                        hot,
                        ActionId::TAU,
                        Expr::var(c)
                            .ge(Expr::real(p.cooldown))
                            .and(Expr::var(c).le(Expr::real(p.repair_latest))),
                        [Effect::assign(ok, Expr::bool(true))],
                        run,
                    );
                }
            }
            b.add_automaton(a);
        }
        triplex_units.push(units);
    }

    // ---- mission phases (deterministic timing) -------------------------
    let t = b.var("mission.t", VarType::Clock, Value::Real(0.0));
    let in_flight = b.var("mission.in_flight", VarType::Bool, Value::Bool(true));
    let mut mission = AutomatonBuilder::new("mission");
    let boost = mission.location_with("boost", Expr::var(t).le(Expr::real(p.boost_end)), []);
    let flight = mission.location("flight");
    mission.guarded_urgent(
        boost,
        ActionId::TAU,
        Expr::var(t).ge(Expr::real(p.boost_end)),
        [],
        flight,
    );
    b.add_automaton(mission);

    // ---- signal flows (Boolean health abstraction, §V-a) ---------------
    let nav = b.var("nav.ok", VarType::Bool, Value::Bool(true));
    let two_of_three = |u: &[VarId]| {
        Expr::var(u[0])
            .and(Expr::var(u[1]))
            .or(Expr::var(u[0]).and(Expr::var(u[2])))
            .or(Expr::var(u[1]).and(Expr::var(u[2])))
    };
    b.flow(nav, Expr::var(gps_ok[0]).or(Expr::var(gps_ok[1])).and(two_of_three(&gyro_ok)));
    let cmd_a = b.var("triplex_a.cmd", VarType::Bool, Value::Bool(true));
    let cmd_b = b.var("triplex_b.cmd", VarType::Bool, Value::Bool(true));
    b.flow(cmd_a, two_of_three(&triplex_units[0]).and(Expr::var(power_ok[0])).and(Expr::var(nav)));
    b.flow(cmd_b, two_of_three(&triplex_units[1]).and(Expr::var(power_ok[1])).and(Expr::var(nav)));
    // Thruster block: loss of control = no command from either triplex.
    let failure = b.var("failure", VarType::Bool, Value::Bool(false));
    b.flow(failure, Expr::var(cmd_a).not().and(Expr::var(cmd_b).not()).and(Expr::var(in_flight)));

    b.build().expect("launcher model is well-formed")
}

/// The goal variable name (`P(◇[0,u] failure)`, §V-d).
pub const FAILURE_VAR: &str = "failure";

#[cfg(test)]
mod tests {
    use super::*;
    use slim_stats::chernoff::Accuracy;
    use slimsim_core::prelude::*;

    fn goal(net: &Network) -> Goal {
        Goal::expr(Expr::var(net.var_id(FAILURE_VAR).unwrap()))
    }

    fn quick(strategy: StrategyKind, seed: u64) -> SimConfig {
        SimConfig::default()
            .with_accuracy(Accuracy::new(0.05, 0.1).unwrap())
            .with_strategy(strategy)
            .with_seed(seed)
    }

    #[test]
    fn architecture_shape() {
        let net = launcher_network(&LauncherParams::default());
        // 2 batteries + 2 depletion watchdogs + 2 gps + 3 gyros + 6 DPUs + mission = 16.
        assert_eq!(net.automata().len(), 16);
        assert!(net.var_id("triplex_a.dpu0.ok").is_some());
        assert!(net.var_id("nav.ok").is_some());
        assert!(net.var_id(FAILURE_VAR).is_some());
        let s0 = net.initial_state().unwrap();
        assert_eq!(s0.nu.get(net.var_id(FAILURE_VAR).unwrap()).unwrap(), Value::Bool(false));
        assert_eq!(s0.nu.get(net.var_id("triplex_a.cmd").unwrap()).unwrap(), Value::Bool(true));
    }

    #[test]
    fn permanent_variant_strategy_invariant() {
        // Fig. 5 left: only probabilistic/deterministic transitions — all
        // strategies produce (statistically) the same probability.
        let p = LauncherParams { dpu_faults: DpuFaultMode::Permanent, ..Default::default() };
        let net = launcher_network(&p);
        let prop = TimedReach::new(goal(&net), 2.0);
        let mut probs = Vec::new();
        for kind in StrategyKind::ALL {
            let r = analyze(&net, &prop, &quick(kind, 1)).unwrap();
            probs.push(r.probability());
        }
        let min = probs.iter().cloned().fold(1.0, f64::min);
        let max = probs.iter().cloned().fold(0.0, f64::max);
        assert!(max - min < 0.08, "permanent variant diverges: {probs:?}");
        assert!(min > 0.0, "failures do occur at these rates");
    }

    #[test]
    fn recoverable_variant_strategy_ordering() {
        // Fig. 5 right: ASAP (always restarts too early) worst, MaxTime
        // (never too early) best, Progressive/Local in between.
        let p = LauncherParams { dpu_faults: DpuFaultMode::Recoverable, ..Default::default() };
        let net = launcher_network(&p);
        let prop = TimedReach::new(goal(&net), 3.0);
        let prob = |kind| analyze(&net, &prop, &quick(kind, 2)).unwrap().probability();
        let asap = prob(StrategyKind::Asap);
        let progressive = prob(StrategyKind::Progressive);
        let local = prob(StrategyKind::Local);
        let maxtime = prob(StrategyKind::MaxTime);
        assert!(asap > progressive + 0.02, "ASAP {asap} should exceed Progressive {progressive}");
        assert!(
            progressive > maxtime + 0.02,
            "Progressive {progressive} should exceed MaxTime {maxtime}"
        );
        assert!(
            local > maxtime && local < asap,
            "Local {local} should sit between MaxTime {maxtime} and ASAP {asap}"
        );
    }

    #[test]
    fn asap_recoverable_close_to_permanent() {
        // ASAP bricks every hot fault, so the recoverable variant under
        // ASAP behaves like the permanent variant.
        let rec = LauncherParams { dpu_faults: DpuFaultMode::Recoverable, ..Default::default() };
        let perm = LauncherParams { dpu_faults: DpuFaultMode::Permanent, ..Default::default() };
        let prop_for = |net: &Network| TimedReach::new(goal(net), 2.0);
        let nr = launcher_network(&rec);
        let np = launcher_network(&perm);
        let pr = analyze(&nr, &prop_for(&nr), &quick(StrategyKind::Asap, 3)).unwrap();
        let pp = analyze(&np, &prop_for(&np), &quick(StrategyKind::Asap, 3)).unwrap();
        assert!(
            (pr.probability() - pp.probability()).abs() < 0.08,
            "recoverable+ASAP {} vs permanent {}",
            pr.probability(),
            pp.probability()
        );
    }

    #[test]
    fn three_class_variant_sits_between() {
        // Transient faults dominate and self-heal, so the three-class
        // variant fails less often than pure-permanent under any strategy,
        // and the ASAP-vs-MaxTime ordering still holds (hot faults brick
        // under ASAP).
        let p3 = LauncherParams { dpu_faults: DpuFaultMode::ThreeClass, ..Default::default() };
        let pp = LauncherParams { dpu_faults: DpuFaultMode::Permanent, ..Default::default() };
        let n3 = launcher_network(&p3);
        let np = launcher_network(&pp);
        let prop3 = TimedReach::new(goal(&n3), 3.0);
        let propp = TimedReach::new(goal(&np), 3.0);
        let asap3 = analyze(&n3, &prop3, &quick(StrategyKind::Asap, 4)).unwrap().probability();
        let asapp = analyze(&np, &propp, &quick(StrategyKind::Asap, 4)).unwrap().probability();
        let max3 = analyze(&n3, &prop3, &quick(StrategyKind::MaxTime, 4)).unwrap().probability();
        assert!(asap3 < asapp, "self-healing transients lower failure: {asap3} !< {asapp}");
        assert!(max3 < asap3, "MaxTime still beats ASAP: {max3} !< {asap3}");
    }

    #[test]
    fn mission_phase_changes_deterministically() {
        let net = launcher_network(&LauncherParams::default());
        let prop = TimedReach::new(Goal::in_location(&net, "mission", "flight").unwrap(), 1.0);
        let gen = PathGenerator::new(&net, &prop, 100_000);
        for kind in StrategyKind::ALL {
            let mut rng = slim_stats::rng::StdRng::seed_from_u64(5);
            let out = gen.generate(kind.instantiate().as_mut(), &mut rng).unwrap();
            assert_eq!(out.verdict, Verdict::Satisfied, "{kind}");
            assert!((out.end_time - 0.1).abs() < 1e-9, "{kind} boosts until {}", out.end_time);
        }
    }

    #[test]
    fn battery_depletion_fails_system_eventually() {
        // Rapid drain, negligible fault rates: both batteries deplete at
        // a deterministic instant and the system fails.
        let p = LauncherParams {
            dpu_faults: DpuFaultMode::Permanent,
            lambda_dpu: 1e-9,
            lambda_gps: 1e-9,
            lambda_gyro: 1e-9,
            lambda_battery: 1e-9,
            battery_drain: 100.0, // empty at t = 1
            ..Default::default()
        };
        let net = launcher_network(&p);
        let prop = TimedReach::new(goal(&net), 2.0);
        let gen = PathGenerator::new(&net, &prop, 100_000);
        let mut rng = slim_stats::rng::StdRng::seed_from_u64(9);
        let out = gen.generate(&mut Asap, &mut rng).unwrap();
        assert_eq!(out.verdict, Verdict::Satisfied);
        assert!((out.end_time - 1.0).abs() < 1e-6, "depletion at {}", out.end_time);
    }
}
