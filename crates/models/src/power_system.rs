//! A redundant power distribution system — a COMPASS-benchmark-style
//! model (§IV mentions the simulator was tested on the toolset's
//! benchmarks; power systems with generator/battery redundancy are the
//! classic specimens of that suite).
//!
//! Written entirely in SLIM and pushed through the full front-end:
//!
//! * two generators whose output **voltage degrades linearly** once a
//!   wear fault occurs (continuous dynamics + error model + injection);
//! * a backup battery with linear discharge while it powers the bus;
//! * an urgent switch-over controller: when the active source's voltage
//!   drops below the brown-out threshold it reconfigures to the next
//!   healthy source (generator 2, then battery);
//! * the bus powers a load; the system fails when no source can hold the
//!   bus voltage.
//!
//! Analysis targets `P(◇[0,T] load unpowered)`. The model mixes every
//! SLIM feature the paper's semantics support: Markovian error events,
//! fault injections, continuous dynamics with invariants, urgent
//! reconfiguration, data flows and clock-free guards.

use slim_automata::prelude::Network;
use slim_lang::{lower, parse};

/// Parameters of the power system (time unit: hours; voltage in volts).
#[derive(Debug, Clone, Copy)]
pub struct PowerSystemParams {
    /// Generator wear-fault rate (per hour).
    pub lambda_wear: f64,
    /// Voltage decay rate of a worn generator (V/h).
    pub decay: f64,
    /// Battery discharge rate while active (V-equivalent/h).
    pub battery_drain: f64,
    /// Brown-out threshold (V); below this a source is unusable.
    pub brownout: f64,
    /// Nominal source voltage (V).
    pub nominal: f64,
}

impl Default for PowerSystemParams {
    fn default() -> Self {
        PowerSystemParams {
            lambda_wear: 0.8,
            decay: 8.0,
            battery_drain: 12.0,
            brownout: 18.0,
            nominal: 28.0,
        }
    }
}

/// The SLIM source of the model for the given parameters.
pub fn power_system_slim_source(p: &PowerSystemParams) -> String {
    let nominal = p.nominal;
    let brownout = p.brownout;
    let decay = p.decay;
    let drain = p.battery_drain;
    let lambda = p.lambda_wear;
    format!(
        r#"
-- A generator: healthy output is nominal; a wear fault makes the
-- voltage decay linearly (the error model injects `worn`).
device Generator
  features
    voltage: out data port real := {nominal};
    worn: out data port bool := false;
end Generator;

device implementation Generator.Impl
  subcomponents
    level: data continuous := {nominal};
  flows
    voltage := level;
  modes
    fresh: initial mode;
    degrading: mode while level >= 0.0 der level = -{decay};
    flat: mode;
  transitions
    fresh -[ urgent when worn ]-> degrading;
    degrading -[ urgent when level <= 0.0 ]-> flat;
end Generator.Impl;

error model Wear
  states
    ok: initial state;
    worn_out: state;
  transitions
    ok -[ rate {lambda} ]-> worn_out;
end Wear;

-- The battery: discharges linearly once engaged.
device Battery
  features
    voltage: out data port real := {nominal};
    engage: in event port;
end Battery;

device implementation Battery.Impl
  subcomponents
    level: data continuous := {nominal};
  flows
    voltage := level;
  modes
    standby: initial mode;
    discharging: mode while level >= 0.0 der level = -{drain};
  transitions
    standby -[ engage ]-> discharging;
end Battery.Impl;

-- The switch-over controller: urgent reconfiguration to the next
-- healthy source when the active one browns out.
system Controller
  features
    gen1_v: in data port real := {nominal};
    gen2_v: in data port real := {nominal};
    batt_v: in data port real := {nominal};
    engage_battery: out event port;
    bus_v: out data port real := {nominal};
    failed: out data port bool := false;
end Controller;

system implementation Controller.Impl
  flows
    bus_v := if source = 0 then gen1_v else if source = 1 then gen2_v else batt_v;
    failed := bus_v < {brownout} and source >= 2;
  subcomponents
    source: data int [0..2] := 0;
  modes
    on_gen1: initial mode;
    on_gen2: mode;
    on_battery: mode;
  transitions
    on_gen1 -[ urgent when gen1_v < {brownout} then source := 1 ]-> on_gen2;
    on_gen2 -[ engage_battery when gen2_v < {brownout} then source := 2 ]-> on_battery;
end Controller.Impl;

system Plant end Plant;

system implementation Plant.Impl
  subcomponents
    gen1: device Generator.Impl;
    gen2: device Generator.Impl;
    battery: device Battery.Impl;
    ctrl: system Controller.Impl;
  connections
    port gen1.voltage -> ctrl.gen1_v;
    port gen2.voltage -> ctrl.gen2_v;
    port battery.voltage -> ctrl.batt_v;
    port ctrl.engage_battery -> battery.engage;
end Plant.Impl;

fault injection on plant.gen1 using Wear
  effect worn_out: plant.gen1.worn := true;
end;

fault injection on plant.gen2 using Wear
  effect worn_out: plant.gen2.worn := true;
end;
"#
    )
}

/// Builds the power-system network.
///
/// # Panics
/// Panics if the embedded source fails to parse or lower — a bug, covered
/// by tests.
pub fn power_system_network(p: &PowerSystemParams) -> Network {
    let src = power_system_slim_source(p);
    let model = parse(&src).unwrap_or_else(|e| panic!("power source does not parse: {e}"));
    lower(&model, "Plant", "Impl", "plant")
        .unwrap_or_else(|e| panic!("power source does not lower: {e}"))
        .network
}

/// The goal variable name: the controller's `failed` flag.
pub const POWER_FAILED_VAR: &str = "plant.ctrl.failed";

#[cfg(test)]
mod tests {
    use super::*;
    use slim_automata::prelude::Expr;
    use slim_stats::chernoff::Accuracy;
    use slimsim_core::prelude::*;

    #[test]
    fn builds_with_expected_shape() {
        let net = power_system_network(&PowerSystemParams::default());
        // gen1, gen2, battery, ctrl + two woven error automata.
        assert_eq!(net.automata().len(), 6);
        assert!(net.var_id(POWER_FAILED_VAR).is_some());
        assert!(net.var_id("plant.ctrl.bus_v").is_some());
        let s0 = net.initial_state().unwrap();
        let bus = net.var_id("plant.ctrl.bus_v").unwrap();
        assert_eq!(s0.nu.get(bus).unwrap().as_real().unwrap(), 28.0);
    }

    #[test]
    fn degradation_and_switchover_sequence() {
        // Force gen1's wear fault, then watch the reconfiguration chain.
        let net = power_system_network(&PowerSystemParams::default());
        let s0 = net.initial_state().unwrap();
        // Fire gen1's wear fault (the Markovian transition of its error
        // automaton).
        let wear1 = net
            .markovian_candidates(&s0)
            .into_iter()
            .find(|c| net.automata()[c.transition.parts[0].0 .0].name.contains("gen1.error"))
            .expect("gen1 wear fault exists");
        let s1 = net.apply(&s0, &wear1.transition).unwrap();
        // The urgent `fresh -> degrading` transition is now enabled.
        let cands = net.guarded_candidates(&s1).unwrap();
        assert!(!cands.is_empty());
        let s2 = net.apply(&s1, &cands[0].transition).unwrap();
        // Voltage decays: after (28-18)/8 h the brown-out hits; advance
        // most of the way and check the flow tracks the level.
        let s3 = net.advance(&s2, 1.0).unwrap();
        let v = net.var_id("plant.ctrl.gen1_v").unwrap();
        let got = s3.nu.get(v).unwrap().as_real().unwrap();
        assert!((got - 20.0).abs() < 1e-9, "gen1 voltage {got} after 1 h of decay");
    }

    #[test]
    fn single_wear_fault_does_not_fail_the_system() {
        // With only gen1 worn (gen2 healthy forever), the system never
        // fails: the controller switches to gen2 and stays there.
        let p = PowerSystemParams { lambda_wear: 1e-12, ..Default::default() };
        let net = power_system_network(&p);
        let failed = net.var_id(POWER_FAILED_VAR).unwrap();
        let prop = TimedReach::new(Goal::expr(Expr::var(failed)), 5.0);
        let cfg = SimConfig::default()
            .with_accuracy(Accuracy::new(0.1, 0.1).unwrap())
            .with_strategy(StrategyKind::Asap);
        let r = analyze(&net, &prop, &cfg).unwrap();
        assert_eq!(r.probability(), 0.0, "healthy redundancy should never fail");
    }

    #[test]
    fn failure_probability_grows_with_horizon() {
        let net = power_system_network(&PowerSystemParams::default());
        let failed = net.var_id(POWER_FAILED_VAR).unwrap();
        let acc = Accuracy::new(0.04, 0.1).unwrap();
        let prob = |bound: f64| {
            let prop = TimedReach::new(Goal::expr(Expr::var(failed)), bound);
            let cfg = SimConfig::default()
                .with_accuracy(acc)
                .with_strategy(StrategyKind::Asap)
                .with_seed(3);
            analyze(&net, &prop, &cfg).unwrap().probability()
        };
        let p2 = prob(2.0);
        let p6 = prob(6.0);
        assert!(p6 > p2, "monotone in the horizon: {p2} !< {p6}");
        assert!(p6 > 0.1, "both generators wear out eventually: {p6}");
    }

    #[test]
    fn strategies_agree_modulo_urgency() {
        // All non-determinism in this model is Markovian or urgent, so
        // the four strategies must agree statistically.
        let net = power_system_network(&PowerSystemParams::default());
        let failed = net.var_id(POWER_FAILED_VAR).unwrap();
        let prop = TimedReach::new(Goal::expr(Expr::var(failed)), 4.0);
        let acc = Accuracy::new(0.04, 0.1).unwrap();
        let mut probs = Vec::new();
        for kind in StrategyKind::ALL {
            let cfg = SimConfig::default().with_accuracy(acc).with_strategy(kind).with_seed(9);
            probs.push(analyze(&net, &prop, &cfg).unwrap().probability());
        }
        let min = probs.iter().cloned().fold(1.0, f64::min);
        let max = probs.iter().cloned().fold(0.0, f64::max);
        assert!(max - min < 0.1, "urgency-only model diverges: {probs:?}");
    }
}
