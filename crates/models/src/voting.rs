//! A k-of-n majority-voting redundancy benchmark (untimed).
//!
//! `n` warm-redundant processing channels feed a single voter. Each
//! channel fails with rate `lambda_channel`; the voter itself fails with
//! rate `lambda_voter` (a single point of failure). The system is
//! operational while the voter is healthy *and* at least `k` channels
//! agree; an urgent monitor latches `voter.system_failed` the instant
//! either condition breaks. The benchmark property is
//! `P(◇[0,T] system_failed)`.
//!
//! Like the sensor–filter benchmark, the model is untimed (no clocks),
//! so the simulator, the CTMC pipeline, and the closed form below can all
//! be cross-checked against each other — the conformance suite's job.
//!
//! Closed form: with `q = 1 − e^{−λc·T}` the per-channel death
//! probability and `Pv = 1 − e^{−λv·T}`,
//! `P = 1 − (1 − Pv) · Σ_{j=k}^{n} C(n,j) (1−q)^j q^{n−j}`.

use slim_automata::automaton::Effect;
use slim_automata::prelude::*;

/// Parameters of the voting benchmark (time unit: hours).
#[derive(Debug, Clone, Copy)]
pub struct VotingParams {
    /// Total number of channels.
    pub channels: usize,
    /// Minimum healthy channels for a usable majority.
    pub quorum: usize,
    /// Per-channel failure rate.
    pub lambda_channel: f64,
    /// Voter failure rate.
    pub lambda_voter: f64,
}

impl Default for VotingParams {
    fn default() -> Self {
        // Classic triple-modular redundancy: 2-of-3 with a reliable voter.
        VotingParams { channels: 3, quorum: 2, lambda_channel: 0.5, lambda_voter: 0.05 }
    }
}

/// Analytic `P(◇[0,t] system_failed)` for cross-checking every engine.
pub fn voting_failure_probability(p: &VotingParams, t: f64) -> f64 {
    let q = 1.0 - (-p.lambda_channel * t).exp();
    let pv = 1.0 - (-p.lambda_voter * t).exp();
    let mut quorum_alive = 0.0;
    for j in p.quorum..=p.channels {
        quorum_alive +=
            binomial(p.channels, j) * (1.0 - q).powi(j as i32) * q.powi((p.channels - j) as i32);
    }
    1.0 - (1.0 - pv) * quorum_alive
}

fn binomial(n: usize, k: usize) -> f64 {
    let mut out = 1.0;
    for i in 0..k.min(n - k) {
        out = out * (n - i) as f64 / (i + 1) as f64;
    }
    out
}

/// The goal variable name for properties on this model.
pub const VOTING_GOAL_VAR: &str = "voter.system_failed";

/// Builds the k-of-n voting network.
///
/// Variables of interest:
/// * `voter.system_failed` — the latched goal flag;
/// * `channels.c<i>.ok` — per-channel health;
/// * `voter.ok` — voter health.
///
/// # Panics
/// Panics unless `0 < quorum <= channels`.
pub fn voting_network(p: &VotingParams) -> Network {
    assert!(p.quorum > 0 && p.quorum <= p.channels, "need 0 < quorum <= channels");
    let n = p.channels;
    let mut b = NetworkBuilder::new();

    let channel_ok: Vec<VarId> = (0..n)
        .map(|i| b.var(format!("channels.c{i}.ok"), VarType::Bool, Value::Bool(true)))
        .collect();
    let voter_ok = b.var("voter.ok", VarType::Bool, Value::Bool(true));
    let failed = b.var(VOTING_GOAL_VAR, VarType::Bool, Value::Bool(false));

    for (i, &ok) in channel_ok.iter().enumerate() {
        let mut a = AutomatonBuilder::new(format!("channels.c{i}"));
        let l_ok = a.location("ok");
        let l_failed = a.location("failed");
        a.markovian(l_ok, p.lambda_channel, [Effect::assign(ok, Expr::bool(false))], l_failed);
        b.add_automaton(a);
    }

    // The voter hardware is a plain markovian failure source, exactly like
    // a channel; locations may not mix markovian and guarded transitions,
    // so the latching logic lives in a separate urgent monitor below.
    let mut voter = AutomatonBuilder::new("voter");
    let v_ok = voter.location("ok");
    let v_failed = voter.location("failed");
    voter.markovian(v_ok, p.lambda_voter, [Effect::assign(voter_ok, Expr::bool(false))], v_failed);
    b.add_automaton(voter);

    // The monitor watches the voter and its inputs; a voter fault and the
    // loss of quorum both latch the system failure. Guards are delay-free,
    // so the latch fires urgently the instant the condition holds — every
    // strategy resolves this model identically.
    let mut mon = AutomatonBuilder::new("monitor");
    let watch = mon.location("watching");
    let dead = mon.location("dead");
    let mut healthy = Expr::int(0);
    for &ok in &channel_ok {
        healthy = healthy.add(Expr::ite(Expr::var(ok), Expr::int(1), Expr::int(0)));
    }
    let quorum_lost = healthy.lt(Expr::int(p.quorum as i64));
    let down = Expr::var(voter_ok).not().or(quorum_lost);
    mon.guarded_urgent(
        watch,
        ActionId::TAU,
        down,
        [Effect::assign(failed, Expr::bool(true))],
        dead,
    );
    b.add_automaton(mon);

    b.build().expect("voting model is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_ctmc::analysis::{check_timed_reachability, PipelineConfig};
    use slim_stats::chernoff::Accuracy;
    use slimsim_core::prelude::*;

    #[test]
    fn binomial_coefficients() {
        assert_eq!(binomial(3, 0), 1.0);
        assert_eq!(binomial(3, 2), 3.0);
        assert_eq!(binomial(5, 2), 10.0);
        assert_eq!(binomial(6, 3), 20.0);
    }

    #[test]
    fn analytic_formula_sane() {
        let p = VotingParams::default();
        assert_eq!(voting_failure_probability(&p, 0.0), 0.0);
        let early = voting_failure_probability(&p, 0.5);
        let late = voting_failure_probability(&p, 5.0);
        assert!(0.0 < early && early < late && late < 1.0);
        // 2-of-3 beats a simplex channel with the same voter.
        let simplex = VotingParams { channels: 1, quorum: 1, ..p };
        assert!(
            voting_failure_probability(&p, 1.0) < voting_failure_probability(&simplex, 1.0),
            "TMR should beat simplex at moderate horizons"
        );
    }

    #[test]
    fn ctmc_pipeline_matches_analytic() {
        let p = VotingParams::default();
        let net = voting_network(&p);
        let failed = net.var_id(VOTING_GOAL_VAR).unwrap();
        let goal = move |s: &NetState| s.nu.get(failed).map(|v| v.as_bool().unwrap_or(false));
        let t = 1.0;
        let r = check_timed_reachability(&net, &goal, t, &PipelineConfig::default()).unwrap();
        let exact = voting_failure_probability(&p, t);
        assert!((r.probability - exact).abs() < 1e-6, "CTMC {} vs analytic {exact}", r.probability);
    }

    #[test]
    fn simulator_matches_analytic() {
        let p = VotingParams::default();
        let net = voting_network(&p);
        let goal = Goal::expr(Expr::var(net.var_id(VOTING_GOAL_VAR).unwrap()));
        let prop = TimedReach::new(goal, 1.0);
        let cfg = SimConfig::default()
            .with_accuracy(Accuracy::new(0.03, 0.05).unwrap())
            .with_strategy(StrategyKind::Asap);
        let r = analyze(&net, &prop, &cfg).unwrap();
        let exact = voting_failure_probability(&p, 1.0);
        assert!(
            (r.probability() - exact).abs() < 0.04,
            "simulator {} vs analytic {exact}",
            r.probability()
        );
    }

    #[test]
    fn quorum_loss_latches_failure() {
        // 2-of-3: after two channel failures the monitor latches.
        let p = VotingParams::default();
        let net = voting_network(&p);
        let mut s = net.initial_state().unwrap();
        for _ in 0..2 {
            let m = net
                .markovian_candidates(&s)
                .into_iter()
                .find(|c| net.automata()[c.transition.parts[0].0 .0].name.starts_with("channels"))
                .unwrap();
            s = net.apply(&s, &m.transition).unwrap();
        }
        let cands = net.guarded_candidates(&s).unwrap();
        assert_eq!(cands.len(), 1, "quorum-loss latch should be enabled");
        let s = net.apply(&s, &cands[0].transition).unwrap();
        let failed = net.var_id(VOTING_GOAL_VAR).unwrap();
        assert_eq!(s.nu.get(failed).unwrap(), Value::Bool(true));
    }
}
