//! A repairable redundant pair benchmark (untimed, with repair).
//!
//! Two warm-redundant units each fail with rate `lambda` and are repaired
//! with rate `mu` by an always-available repair crew (one crew per unit).
//! The system fails — latched by an urgent monitor — the first time both
//! units are down simultaneously. The benchmark property is
//! `P(◇[0,T] system_failed)`: *first-passage* probability into the
//! both-down condition, not steady-state unavailability.
//!
//! Unlike the pure-death sensor–filter and voting benchmarks, the
//! underlying CTMC has cycles (fail/repair), which exercises the
//! transient solver and the simulator on regenerative dynamics. The
//! closed form comes from the 3-state birth–death chain with an
//! absorbing both-down state (see [`repair_failure_probability`]).

use slim_automata::automaton::Effect;
use slim_automata::prelude::*;

/// Parameters of the repairable-pair benchmark (time unit: hours).
#[derive(Debug, Clone, Copy)]
pub struct RepairParams {
    /// Per-unit failure rate.
    pub lambda: f64,
    /// Per-unit repair rate.
    pub mu: f64,
}

impl Default for RepairParams {
    fn default() -> Self {
        RepairParams { lambda: 0.6, mu: 1.2 }
    }
}

/// Analytic `P(◇[0,t] both units down)`.
///
/// First-passage analysis on the chain `2 up --2λ--> 1 up --λ--> failed`
/// with repair `1 up --μ--> 2 up` and the failed state absorbing. Writing
/// `p = (p₂, p₁)` for the survival-state distribution,
/// `p' = A·p` with `A = [[−2λ, μ], [2λ, −(λ+μ)]]`; the failure
/// probability is `1 − p₂(t) − p₁(t)`. `A` has distinct real negative
/// eigenvalues (its discriminant `λ² + 6λμ + μ²` is positive), so the
/// solution is a sum of two exponentials.
///
/// # Panics
/// Panics unless both rates are positive.
pub fn repair_failure_probability(p: &RepairParams, t: f64) -> f64 {
    assert!(p.lambda > 0.0 && p.mu > 0.0, "rates must be positive");
    let (l, m) = (p.lambda, p.mu);
    let (a, b) = (-2.0 * l, m);
    let d = -(l + m);
    let tr = a + d;
    let disc = (tr * tr - 4.0 * (a * d - b * 2.0 * l)).sqrt();
    let s1 = 0.5 * (tr + disc);
    let s2 = 0.5 * (tr - disc);
    // p(0) = (1, 0) in the eigenbasis v_i = (b, s_i − a).
    let beta = (s1 - a) / (b * (s1 - s2));
    let alpha = 1.0 / b - beta;
    let p2 = alpha * b * (s1 * t).exp() + beta * b * (s2 * t).exp();
    let p1 = alpha * (s1 - a) * (s1 * t).exp() + beta * (s2 - a) * (s2 * t).exp();
    (1.0 - p2 - p1).clamp(0.0, 1.0)
}

/// The goal variable name for properties on this model.
pub const REPAIR_GOAL_VAR: &str = "monitor.system_failed";

/// Builds the repairable-pair network.
///
/// Variables of interest:
/// * `monitor.system_failed` — the latched goal flag;
/// * `units.u0.ok` / `units.u1.ok` — per-unit health.
pub fn repair_network(p: &RepairParams) -> Network {
    let mut b = NetworkBuilder::new();
    let ok: Vec<VarId> =
        (0..2).map(|i| b.var(format!("units.u{i}.ok"), VarType::Bool, Value::Bool(true))).collect();
    let failed = b.var(REPAIR_GOAL_VAR, VarType::Bool, Value::Bool(false));

    for (i, &ok) in ok.iter().enumerate() {
        let mut a = AutomatonBuilder::new(format!("units.u{i}"));
        let l_up = a.location("up");
        let l_down = a.location("down");
        a.markovian(l_up, p.lambda, [Effect::assign(ok, Expr::bool(false))], l_down);
        a.markovian(l_down, p.mu, [Effect::assign(ok, Expr::bool(true))], l_up);
        b.add_automaton(a);
    }

    // First passage into "both down" latches the failure flag; the units
    // keep failing and repairing afterwards, but the flag never resets.
    let mut mon = AutomatonBuilder::new("monitor");
    let watch = mon.location("watching");
    let tripped = mon.location("tripped");
    let both_down = Expr::var(ok[0]).not().and(Expr::var(ok[1]).not());
    mon.guarded_urgent(
        watch,
        ActionId::TAU,
        both_down,
        [Effect::assign(failed, Expr::bool(true))],
        tripped,
    );
    b.add_automaton(mon);

    b.build().expect("repairable-pair model is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_ctmc::analysis::{check_timed_reachability, PipelineConfig};
    use slim_stats::chernoff::Accuracy;
    use slimsim_core::prelude::*;

    #[test]
    fn analytic_formula_sane() {
        let p = RepairParams::default();
        assert!(repair_failure_probability(&p, 0.0) < 1e-12);
        let early = repair_failure_probability(&p, 0.5);
        let late = repair_failure_probability(&p, 10.0);
        assert!(0.0 < early && early < late && late <= 1.0);
        // More repair capacity, lower first-passage probability.
        let fast_repair = RepairParams { mu: 10.0, ..p };
        assert!(
            repair_failure_probability(&fast_repair, 2.0) < repair_failure_probability(&p, 2.0)
        );
        // Without meaningful repair the formula approaches the pure-death
        // two-unit result (1 − e^{−λt})² as μ → 0⁺.
        let slow = RepairParams { lambda: 0.6, mu: 1e-9 };
        let pure_death = (1.0 - (-0.6f64 * 2.0).exp()).powi(2);
        assert!((repair_failure_probability(&slow, 2.0) - pure_death).abs() < 1e-4);
    }

    #[test]
    fn ctmc_pipeline_matches_analytic() {
        let p = RepairParams::default();
        let net = repair_network(&p);
        let failed = net.var_id(REPAIR_GOAL_VAR).unwrap();
        let goal = move |s: &NetState| s.nu.get(failed).map(|v| v.as_bool().unwrap_or(false));
        let t = 2.0;
        let r = check_timed_reachability(&net, &goal, t, &PipelineConfig::default()).unwrap();
        let exact = repair_failure_probability(&p, t);
        assert!((r.probability - exact).abs() < 1e-6, "CTMC {} vs analytic {exact}", r.probability);
    }

    #[test]
    fn simulator_matches_analytic() {
        let p = RepairParams::default();
        let net = repair_network(&p);
        let goal = Goal::expr(Expr::var(net.var_id(REPAIR_GOAL_VAR).unwrap()));
        let prop = TimedReach::new(goal, 2.0);
        let cfg = SimConfig::default()
            .with_accuracy(Accuracy::new(0.03, 0.05).unwrap())
            .with_strategy(StrategyKind::Asap);
        let r = analyze(&net, &prop, &cfg).unwrap();
        let exact = repair_failure_probability(&p, 2.0);
        assert!(
            (r.probability() - exact).abs() < 0.04,
            "simulator {} vs analytic {exact}",
            r.probability()
        );
    }

    #[test]
    fn failure_latches_through_repair() {
        let p = RepairParams::default();
        let net = repair_network(&p);
        let mut s = net.initial_state().unwrap();
        // Fail both units.
        for unit in ["units.u0", "units.u1"] {
            let m = net
                .markovian_candidates(&s)
                .into_iter()
                .find(|c| net.automata()[c.transition.parts[0].0 .0].name == unit)
                .unwrap();
            s = net.apply(&s, &m.transition).unwrap();
        }
        // The latch fires urgently.
        let cands = net.guarded_candidates(&s).unwrap();
        assert_eq!(cands.len(), 1);
        s = net.apply(&s, &cands[0].transition).unwrap();
        let failed = net.var_id(REPAIR_GOAL_VAR).unwrap();
        assert_eq!(s.nu.get(failed).unwrap(), Value::Bool(true));
        // Repair a unit: the flag must stay latched.
        let m = net.markovian_candidates(&s).into_iter().next().unwrap();
        s = net.apply(&s, &m.transition).unwrap();
        assert_eq!(s.nu.get(failed).unwrap(), Value::Bool(true));
    }
}
