//! The GPS example of the paper (Listings 1–2, Fig. 2), written in SLIM
//! and lowered through the full front-end.
//!
//! The nominal model is a GPS unit that acquires a signal "within two
//! minutes but no faster than ten seconds" (Listing 1). The error model
//! (Listing 2 / Fig. 2) has transient, hot and permanent faults triggered
//! by exponential error events; a transient fault recovers after a
//! non-deterministic delay in the `[200, 300]` msec window — the window
//! the paper uses in §III-B to explain the four strategies.
//!
//! As in §V-c, failure rates are scaled up unrealistically so strategy
//! effects are visible with moderate sample counts. For the strategy
//! study, a repair attempted *too early* (before the 250 msec cool-down)
//! escalates the hot fault to a permanent one — this is what makes ASAP
//! ("always schedules the repair too early") the worst and MaxTime
//! ("never does so") the best resolution, with Progressive and Local in
//! between (§V-d's reading of Fig. 5 right).

use slim_automata::prelude::Network;
use slim_lang::{lower, parse};

/// Parameters of the GPS model (time unit: seconds).
#[derive(Debug, Clone, Copy)]
pub struct GpsParams {
    /// Rate of transient faults (per second; scaled up, §V-c).
    pub lambda_transient: f64,
    /// Rate of hot faults.
    pub lambda_hot: f64,
    /// Rate of permanent faults.
    pub lambda_permanent: f64,
    /// Repair window start (relative to fault occurrence).
    pub repair_earliest: f64,
    /// Cool-down instant: repairs before it escalate to permanent.
    pub cooldown: f64,
    /// Repair window end (also the invariant bound of faulty states).
    pub repair_latest: f64,
}

impl Default for GpsParams {
    fn default() -> Self {
        GpsParams {
            lambda_transient: 0.10,
            lambda_hot: 0.05,
            lambda_permanent: 0.01,
            repair_earliest: 0.2,
            cooldown: 0.25,
            repair_latest: 0.3,
        }
    }
}

/// The SLIM source of the GPS model for the given parameters.
pub fn gps_slim_source(p: &GpsParams) -> String {
    format!(
        r#"
-- The GPS unit of Listing 1: acquires a fix within [10, 120] s.
device GPS
  features
    measurement: out data port bool := false;
    healthy: out data port bool := true;
end GPS;

device implementation GPS.Impl
  subcomponents
    t: data clock;
  modes
    acquisition: initial mode while t <= 120.0;
    active: mode;
  transitions
    acquisition -[ when t >= 10.0 then measurement := true ]-> active;
end GPS.Impl;

-- The error model of Listing 2 / Fig. 2, with the too-early-repair
-- escalation used by the strategy study.
error model GpsError
  states
    ok: initial state;
    transient: state while c <= {latest};
    hot: state while c <= {latest};
    permanent: state;
  transitions
    ok -[ rate {lt} ]-> transient;
    ok -[ rate {lh} ]-> hot;
    ok -[ rate {lp} ]-> permanent;
    -- transient faults self-heal anywhere in the repair window
    transient -[ when c >= {earliest} and c <= {latest} ]-> ok;
    -- hot faults need a restart: restarting before the cool-down
    -- escalates, after it recovers
    hot -[ when c >= {earliest} and c < {cool} ]-> permanent;
    hot -[ when c >= {cool} and c <= {latest} ]-> ok;
end GpsError;

fault injection on gps using GpsError
  effect transient: gps.healthy := false;
  effect hot: gps.healthy := false;
  effect permanent: gps.healthy := false;
  effect ok: gps.healthy := true;
end;
"#,
        lt = p.lambda_transient,
        lh = p.lambda_hot,
        lp = p.lambda_permanent,
        earliest = p.repair_earliest,
        cool = p.cooldown,
        latest = p.repair_latest,
    )
}

/// Builds the GPS network (parses and lowers the SLIM source).
///
/// # Panics
/// Panics if the embedded source fails to parse or lower — a bug, covered
/// by tests.
pub fn gps_network(p: &GpsParams) -> Network {
    let src = gps_slim_source(p);
    let model = parse(&src).unwrap_or_else(|e| panic!("GPS source does not parse: {e}"));
    lower(&model, "GPS", "Impl", "gps")
        .unwrap_or_else(|e| panic!("GPS source does not lower: {e}"))
        .network
}

#[cfg(test)]
mod tests {
    use super::*;
    use slim_automata::prelude::*;
    use slim_stats::rng::StdRng;
    use slimsim_core::prelude::*;

    #[test]
    fn builds_and_has_expected_shape() {
        let net = gps_network(&GpsParams::default());
        assert_eq!(net.automata().len(), 2, "nominal + error automaton");
        assert!(net.var_id("gps.measurement").is_some());
        assert!(net.var_id("gps.healthy").is_some());
        assert!(net.proc_id("gps.error_GpsError").is_some());
    }

    #[test]
    fn acquisition_window_respected() {
        let net = gps_network(&GpsParams::default());
        let prop =
            TimedReach::new(Goal::expr(Expr::var(net.var_id("gps.measurement").unwrap())), 200.0);
        let gen = PathGenerator::new(&net, &prop, 100_000);
        // ASAP acquires at exactly 10 s (unless a fault races in first,
        // which at these rates is common — accept either outcome but
        // never an acquisition before 10 s).
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let out = gen.generate(&mut Asap, &mut rng).unwrap();
            if out.verdict == Verdict::Satisfied {
                assert!(out.end_time >= 10.0 - 1e-9, "acquired at {}", out.end_time);
            }
        }
    }

    #[test]
    fn asap_always_escalates_hot_faults() {
        // With only hot faults enabled, ASAP repairs at 0.2 < 0.25 and
        // every hot fault becomes permanent.
        let p = GpsParams {
            lambda_transient: 0.0001, // ~never
            lambda_hot: 50.0,         // immediately
            lambda_permanent: 0.0001,
            ..GpsParams::default()
        };
        let net = gps_network(&p);
        let goal = Goal::in_location(&net, "gps.error_GpsError", "permanent").unwrap();
        let prop = TimedReach::new(goal, 2.0);
        let gen = PathGenerator::new(&net, &prop, 100_000);
        let mut sat = 0;
        for seed in 0..40 {
            let mut rng = StdRng::seed_from_u64(seed);
            if gen.generate(&mut Asap, &mut rng).unwrap().verdict == Verdict::Satisfied {
                sat += 1;
            }
        }
        assert!(sat >= 38, "ASAP escalated only {sat}/40");
    }

    #[test]
    fn maxtime_never_escalates_hot_faults() {
        let p = GpsParams {
            lambda_transient: 0.0001,
            lambda_hot: 50.0,
            lambda_permanent: 0.0001,
            ..GpsParams::default()
        };
        let net = gps_network(&p);
        let goal = Goal::in_location(&net, "gps.error_GpsError", "permanent").unwrap();
        let prop = TimedReach::new(goal, 2.0);
        let gen = PathGenerator::new(&net, &prop, 100_000);
        let mut sat = 0;
        for seed in 0..40 {
            let mut rng = StdRng::seed_from_u64(seed);
            if gen.generate(&mut MaxTime, &mut rng).unwrap().verdict == Verdict::Satisfied {
                sat += 1;
            }
        }
        assert!(sat <= 2, "MaxTime escalated {sat}/40");
    }

    #[test]
    fn progressive_escalates_about_half() {
        // Window [0.2, 0.3], cool-down at 0.25 ⇒ uniform repair instant
        // escalates with probability ~0.5.
        let p = GpsParams {
            lambda_transient: 0.0001,
            lambda_hot: 50.0,
            lambda_permanent: 0.0001,
            ..GpsParams::default()
        };
        let net = gps_network(&p);
        let goal = Goal::in_location(&net, "gps.error_GpsError", "permanent").unwrap();
        // Short bound: roughly one fault episode fits (at rate 50 the
        // fault arrives almost immediately; repair/escalation follows in
        // [0.2, 0.3]). Longer bounds let repaired units fault again and
        // escalation becomes near-certain.
        let prop = TimedReach::new(goal, 0.35);
        let gen = PathGenerator::new(&net, &prop, 100_000);
        let mut sat = 0;
        let n = 300;
        for seed in 0..n {
            let mut rng = StdRng::seed_from_u64(seed);
            if gen.generate(&mut Progressive, &mut rng).unwrap().verdict == Verdict::Satisfied {
                sat += 1;
            }
        }
        let frac = sat as f64 / n as f64;
        assert!((frac - 0.47).abs() < 0.15, "Progressive escalation fraction {frac}");
    }

    #[test]
    fn healthy_flag_tracks_error_state() {
        let p = GpsParams { lambda_permanent: 100.0, ..GpsParams::default() };
        let net = gps_network(&p);
        let healthy = net.var_id("gps.healthy").unwrap();
        let s0 = net.initial_state().unwrap();
        assert_eq!(s0.nu.get(healthy).unwrap(), Value::Bool(true));
        // Fire the permanent fault directly.
        let perm = net
            .markovian_candidates(&s0)
            .into_iter()
            .max_by(|a, b| a.rate.partial_cmp(&b.rate).unwrap())
            .unwrap();
        let s1 = net.apply(&s0, &perm.transition).unwrap();
        assert_eq!(s1.nu.get(healthy).unwrap(), Value::Bool(false));
    }
}
