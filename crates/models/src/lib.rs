//! # slim-models
//!
//! The model zoo of the `slimsim` reproduction — every system the paper's
//! evaluation uses:
//!
//! * [`gps`] — the GPS unit of Listings 1–2 / Fig. 2, written in SLIM and
//!   lowered through the full front-end; the §III-B strategy study model.
//! * [`sensor_filter`] — the parameterized sensor–filter redundancy
//!   benchmark of §IV (Fig. 3, Table I), untimed so both the simulator
//!   and the CTMC pipeline can analyze it.
//! * [`launcher`] — the Airbus launcher case study of §V (Fig. 4, Fig. 5)
//!   with permanent and recoverable DPU fault variants.
//! * [`power_system`] — a COMPASS-benchmark-style redundant power
//!   distribution system, written entirely in SLIM (generator wear with
//!   linear voltage decay, battery backup, urgent switch-over).
//! * [`voting`] — a k-of-n majority-voting redundancy benchmark, untimed
//!   with a closed form, for the simulator↔CTMC conformance suite.
//! * [`repair`] — a repairable redundant pair (cyclic CTMC with a
//!   first-passage closed form), also conformance-checkable.
//! * [`slim_sources`] — ready-made SLIM sources for tests and the CLI.

#![forbid(unsafe_code)]

pub mod gps;
pub mod launcher;
pub mod power_system;
pub mod repair;
pub mod sensor_filter;
pub mod slim_sources;
pub mod voting;

pub use gps::{gps_network, gps_slim_source, GpsParams};
pub use launcher::{launcher_network, DpuFaultMode, LauncherParams, FAILURE_VAR};
pub use power_system::{
    power_system_network, power_system_slim_source, PowerSystemParams, POWER_FAILED_VAR,
};
pub use repair::{repair_failure_probability, repair_network, RepairParams, REPAIR_GOAL_VAR};
pub use sensor_filter::{
    analytic_failure_probability, sensor_filter_network, SensorFilterParams, GOAL_VAR,
};
pub use voting::{voting_failure_probability, voting_network, VotingParams, VOTING_GOAL_VAR};
