//! Ready-made SLIM sources for documentation, tests and the CLI.

use slim_automata::prelude::Network;
use slim_lang::{lower, parse};

/// A small sensor–filter instance written in SLIM (redundancy 2),
/// mirroring `crate::sensor_filter` for front-end integration tests.
pub const SENSOR_FILTER_SLIM: &str = r#"
-- Sensor-filter redundancy benchmark (Fig. 3 of the paper), n = 2.
device Unit
  features
    ok: out data port bool := true;
end Unit;

device implementation Unit.Sensor
  modes
    running: initial mode;
    broken: mode;
  transitions
    running -[ rate 0.5 then ok := false ]-> broken;
end Unit.Sensor;

device implementation Unit.Filter
  modes
    running: initial mode;
    broken: mode;
  transitions
    running -[ rate 0.4 then ok := false ]-> broken;
end Unit.Filter;

system Monitor
  features
    failed: out data port bool := false;
end Monitor;

system implementation Monitor.Impl
  subcomponents
    s0: device Unit.Sensor;
    s1: device Unit.Sensor;
    f0: device Unit.Filter;
    f1: device Unit.Filter;
  flows
    failed := (not s0.ok and not s1.ok) or (not f0.ok and not f1.ok);
  modes
    watching: initial mode;
end Monitor.Impl;
"#;

/// Parses and lowers [`SENSOR_FILTER_SLIM`].
///
/// # Panics
/// Panics if the embedded source is invalid — a bug, covered by tests.
pub fn sensor_filter_slim_network() -> Network {
    let model = parse(SENSOR_FILTER_SLIM).expect("embedded source parses");
    lower(&model, "Monitor", "Impl", "sys").expect("embedded source lowers").network
}

/// A tiny two-component handshake in SLIM, used by examples and the CLI
/// quickstart.
pub const HANDSHAKE_SLIM: &str = r#"
device Client
  features
    request: out event port;
end Client;

device implementation Client.Impl
  subcomponents
    t: data clock;
  modes
    idle: initial mode while t <= 5.0;
    waiting: mode;
  transitions
    idle -[ request when t >= 1.0 ]-> waiting;
end Client.Impl;

device Server
  features
    serve: in event port;
    served: out data port bool := false;
end Server;

device implementation Server.Impl
  modes
    ready: initial mode;
    busy: mode;
  transitions
    ready -[ serve then served := true ]-> busy;
end Server.Impl;

system Net end Net;

system implementation Net.Impl
  subcomponents
    client: device Client.Impl;
    server: device Server.Impl;
  connections
    port client.request -> server.serve;
end Net.Impl;
"#;

/// Parses and lowers [`HANDSHAKE_SLIM`].
///
/// # Panics
/// Panics if the embedded source is invalid — a bug, covered by tests.
pub fn handshake_network() -> Network {
    let model = parse(HANDSHAKE_SLIM).expect("embedded source parses");
    lower(&model, "Net", "Impl", "net").expect("embedded source lowers").network
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensor_filter::{analytic_failure_probability, SensorFilterParams};
    use slim_automata::prelude::*;
    use slim_stats::chernoff::Accuracy;
    use slimsim_core::prelude::*;

    #[test]
    fn sensor_filter_slim_matches_builder_model_analytics() {
        let net = sensor_filter_slim_network();
        let failed = net.var_id("sys.failed").unwrap();
        let prop = TimedReach::new(Goal::expr(Expr::var(failed)), 2.0);
        let cfg = SimConfig::default()
            .with_accuracy(Accuracy::new(0.04, 0.1).unwrap())
            .with_strategy(StrategyKind::Asap);
        let r = analyze(&net, &prop, &cfg).unwrap();
        let exact = analytic_failure_probability(
            &SensorFilterParams { redundancy: 2, ..Default::default() },
            2.0,
        );
        assert!(
            (r.probability() - exact).abs() < 0.05,
            "SLIM variant {} vs analytic {exact}",
            r.probability()
        );
    }

    #[test]
    fn handshake_synchronizes_between_one_and_five() {
        let net = handshake_network();
        let served = net.var_id("net.server.served").unwrap();
        let prop = TimedReach::new(Goal::expr(Expr::var(served)), 10.0);
        let gen = PathGenerator::new(&net, &prop, 1000);
        let mut rng = slim_stats::rng::StdRng::seed_from_u64(3);
        let out = gen.generate(&mut Progressive, &mut rng).unwrap();
        assert_eq!(out.verdict, Verdict::Satisfied);
        assert!((1.0..=5.0).contains(&out.end_time), "handshake at {}", out.end_time);
    }
}
