//! The sensor–filter redundancy benchmark of §IV (Fig. 3, Table I).
//!
//! A bank of `n` redundant sensors feeds a bank of `n` redundant filters.
//! The active sensor outputs a value in `1..5`; the filter multiplies it
//! by a constant factor. A failed sensor drives its output out of range
//! (`> 5`); a failed filter outputs `0`. The monitor distinguishes the
//! two failure signatures from the filtered value and switches the
//! affected bank to its next healthy unit. When a bank is exhausted, the
//! whole system has failed. The benchmark property is
//! `P(◇[0,T] system_failed)`.
//!
//! The model is *untimed* (no clocks) so both the simulator and the CTMC
//! pipeline can analyze it — exactly the §IV setup. Its reachable state
//! space grows like `4^n`, which is what blows up the CTMC columns of
//! Table I while the simulator's cost stays flat.
//!
//! All units are powered ("warm redundancy"), so any unit can fail at any
//! time; the system fails once every unit of one bank has failed, giving
//! the closed form used by the tests:
//! `P = 1 − (1 − Ps)(1 − Pf)` with `P_bank = (1 − e^{−λT})^n`.

use slim_automata::automaton::Effect;
use slim_automata::prelude::*;

/// Parameters of the benchmark (time unit: hours).
#[derive(Debug, Clone, Copy)]
pub struct SensorFilterParams {
    /// Redundant units per bank (the paper's "model size" axis).
    pub redundancy: usize,
    /// Sensor failure rate.
    pub lambda_sensor: f64,
    /// Filter failure rate.
    pub lambda_filter: f64,
    /// Nominal sensor reading (1..5).
    pub sensor_value: i64,
    /// Filter gain.
    pub filter_factor: i64,
}

impl Default for SensorFilterParams {
    fn default() -> Self {
        SensorFilterParams {
            redundancy: 2,
            lambda_sensor: 0.5,
            lambda_filter: 0.4,
            sensor_value: 3,
            filter_factor: 2,
        }
    }
}

/// Analytic `P(◇[0,t] system_failed)` for cross-checking both engines.
pub fn analytic_failure_probability(p: &SensorFilterParams, t: f64) -> f64 {
    let ps = (1.0 - (-p.lambda_sensor * t).exp()).powi(p.redundancy as i32);
    let pf = (1.0 - (-p.lambda_filter * t).exp()).powi(p.redundancy as i32);
    1.0 - (1.0 - ps) * (1.0 - pf)
}

/// Builds the sensor–filter network.
///
/// Variables of interest:
/// * `monitor.system_failed` — the goal flag;
/// * `monitor.filtered` — the filtered output the monitor observes;
/// * `sensors.active` / `filters.active` — the switch positions.
///
/// # Panics
/// Panics if `redundancy == 0` or the (internally constructed) model
/// fails validation — a bug, covered by tests.
pub fn sensor_filter_network(p: &SensorFilterParams) -> Network {
    assert!(p.redundancy > 0, "need at least one unit per bank");
    let n = p.redundancy;
    let mut b = NetworkBuilder::new();

    // Per-unit health flags.
    let sensor_ok: Vec<VarId> = (0..n)
        .map(|i| b.var(format!("sensors.s{i}.ok"), VarType::Bool, Value::Bool(true)))
        .collect();
    let filter_ok: Vec<VarId> = (0..n)
        .map(|i| b.var(format!("filters.f{i}.ok"), VarType::Bool, Value::Bool(true)))
        .collect();
    // Switch positions; `n` is the exhausted sentinel.
    let active_s = b.var("sensors.active", VarType::Int { lo: 0, hi: n as i64 }, Value::Int(0));
    let active_f = b.var("filters.active", VarType::Int { lo: 0, hi: n as i64 }, Value::Int(0));
    let failed = b.var("monitor.system_failed", VarType::Bool, Value::Bool(false));

    // Data path (Fig. 3): the active sensor's reading, the filtered value.
    let max_raw = 6.max(p.sensor_value + 1);
    let raw = b.var("sensors.out", VarType::Int { lo: 0, hi: max_raw }, Value::Int(p.sensor_value));
    let filtered = b.var(
        "monitor.filtered",
        VarType::Int { lo: 0, hi: max_raw * p.filter_factor.max(1) },
        Value::Int(0),
    );

    // The active sensor's output: nominal value while healthy, out of
    // range (> 5) when the active sensor has failed, 0 when exhausted.
    let mut raw_expr = Expr::int(0);
    for i in (0..n).rev() {
        raw_expr = Expr::ite(
            Expr::var(active_s).eq(Expr::int(i as i64)),
            Expr::ite(Expr::var(sensor_ok[i]), Expr::int(p.sensor_value), Expr::int(6)),
            raw_expr,
        );
    }
    b.flow(raw, raw_expr);
    // The filter multiplies; a failed active filter outputs 0.
    let mut filter_healthy = Expr::FALSE;
    for i in (0..n).rev() {
        filter_healthy = Expr::ite(
            Expr::var(active_f).eq(Expr::int(i as i64)),
            Expr::var(filter_ok[i]),
            filter_healthy,
        );
    }
    b.flow(
        filtered,
        Expr::ite(filter_healthy, Expr::var(raw).mul(Expr::int(p.filter_factor)), Expr::int(0)),
    );

    // Unit automata: warm-redundant units fail independently.
    for (i, &ok) in sensor_ok.iter().enumerate() {
        let mut a = AutomatonBuilder::new(format!("sensors.s{i}"));
        let l_ok = a.location("ok");
        let l_failed = a.location("failed");
        a.markovian(l_ok, p.lambda_sensor, [Effect::assign(ok, Expr::bool(false))], l_failed);
        b.add_automaton(a);
    }
    for (i, &ok) in filter_ok.iter().enumerate() {
        let mut a = AutomatonBuilder::new(format!("filters.f{i}"));
        let l_ok = a.location("ok");
        let l_failed = a.location("failed");
        a.markovian(l_ok, p.lambda_filter, [Effect::assign(ok, Expr::bool(false))], l_failed);
        b.add_automaton(a);
    }

    // The monitor: detects the failure signature of the *active* units
    // from the filtered value and switches the affected bank (immediate,
    // urgent under every strategy because the guards are delay-free).
    let mut mon = AutomatonBuilder::new("monitor");
    let watch = mon.location("watching");
    let dead = mon.location("dead");
    for i in 0..n {
        // Sensor signature: filtered value too high (raw > 5 times gain)
        // — i.e. the active sensor failed.
        let sig_sensor = Expr::var(filtered).gt(Expr::int(5 * p.filter_factor));
        let guard = Expr::var(active_s).eq(Expr::int(i as i64)).and(sig_sensor);
        let next = next_healthy_expr(&sensor_ok, i, n);
        mon.guarded_urgent(watch, ActionId::TAU, guard, [Effect::assign(active_s, next)], watch);

        // Filter signature: filtered value dropped to 0 while the sensor
        // side still delivers (raw > 0).
        let sig_filter = Expr::var(filtered).eq(Expr::int(0)).and(Expr::var(raw).gt(Expr::int(0)));
        let guard = Expr::var(active_f).eq(Expr::int(i as i64)).and(sig_filter);
        let next = next_healthy_expr(&filter_ok, i, n);
        mon.guarded_urgent(watch, ActionId::TAU, guard, [Effect::assign(active_f, next)], watch);
    }
    // Exhaustion of either bank fails the system.
    let exhausted =
        Expr::var(active_s).ge(Expr::int(n as i64)).or(Expr::var(active_f).ge(Expr::int(n as i64)));
    mon.guarded_urgent(
        watch,
        ActionId::TAU,
        exhausted,
        [Effect::assign(failed, Expr::bool(true))],
        dead,
    );
    b.add_automaton(mon);

    b.build().expect("sensor-filter model is well-formed")
}

/// Expression for the lowest healthy unit index above `from` (sentinel
/// `n` when none remains).
fn next_healthy_expr(ok: &[VarId], from: usize, n: usize) -> Expr {
    let mut e = Expr::int(n as i64);
    for j in ((from + 1)..n).rev() {
        e = Expr::ite(Expr::var(ok[j]), Expr::int(j as i64), e);
    }
    e
}

/// The goal variable name for properties on this model.
pub const GOAL_VAR: &str = "monitor.system_failed";

#[cfg(test)]
mod tests {
    use super::*;
    use slim_ctmc::analysis::{check_timed_reachability, PipelineConfig};
    use slim_stats::chernoff::Accuracy;
    use slimsim_core::prelude::*;

    fn goal_expr(net: &Network) -> Expr {
        Expr::var(net.var_id(GOAL_VAR).unwrap())
    }

    #[test]
    fn shape_scales_with_redundancy() {
        for n in [1, 2, 3] {
            let p = SensorFilterParams { redundancy: n, ..Default::default() };
            let net = sensor_filter_network(&p);
            assert_eq!(net.automata().len(), 2 * n + 1);
        }
    }

    #[test]
    fn initial_data_path_consistent() {
        let net = sensor_filter_network(&SensorFilterParams::default());
        let s = net.initial_state().unwrap();
        let filtered = net.var_id("monitor.filtered").unwrap();
        assert_eq!(s.nu.get(filtered).unwrap(), Value::Int(6), "3 * 2");
    }

    #[test]
    fn monitor_switches_on_sensor_failure() {
        let p = SensorFilterParams::default();
        let net = sensor_filter_network(&p);
        let s0 = net.initial_state().unwrap();
        // Fail sensor 0 by firing its Markovian transition.
        let m = net
            .markovian_candidates(&s0)
            .into_iter()
            .find(|c| net.automata()[c.transition.parts[0].0 .0].name == "sensors.s0")
            .unwrap();
        let s1 = net.apply(&s0, &m.transition).unwrap();
        // The monitor's switch transition is now enabled at delay 0.
        let cands = net.guarded_candidates(&s1).unwrap();
        assert_eq!(cands.len(), 1);
        let s2 = net.apply(&s1, &cands[0].transition).unwrap();
        let active = net.var_id("sensors.active").unwrap();
        assert_eq!(s2.nu.get(active).unwrap(), Value::Int(1));
        // Output restored after the switch.
        let filtered = net.var_id("monitor.filtered").unwrap();
        assert_eq!(s2.nu.get(filtered).unwrap(), Value::Int(6));
    }

    #[test]
    fn ctmc_pipeline_matches_analytic() {
        let p = SensorFilterParams { redundancy: 2, ..Default::default() };
        let net = sensor_filter_network(&p);
        let failed = net.var_id(GOAL_VAR).unwrap();
        let goal = move |s: &NetState| s.nu.get(failed).map(|v| v.as_bool().unwrap_or(false));
        let t = 2.0;
        let r = check_timed_reachability(&net, &goal, t, &PipelineConfig::default()).unwrap();
        let exact = analytic_failure_probability(&p, t);
        assert!((r.probability - exact).abs() < 1e-6, "CTMC {} vs analytic {exact}", r.probability);
    }

    #[test]
    fn simulator_matches_analytic() {
        let p = SensorFilterParams { redundancy: 2, ..Default::default() };
        let net = sensor_filter_network(&p);
        let prop = TimedReach::new(Goal::expr(goal_expr(&net)), 2.0);
        let cfg = SimConfig::default()
            .with_accuracy(Accuracy::new(0.03, 0.05).unwrap())
            .with_strategy(StrategyKind::Asap);
        let r = analyze(&net, &prop, &cfg).unwrap();
        let exact = analytic_failure_probability(&p, 2.0);
        assert!(
            (r.probability() - exact).abs() < 0.04,
            "simulator {} vs analytic {exact}",
            r.probability()
        );
    }

    #[test]
    fn strategies_agree_on_untimed_model() {
        // §V-d (left graph): without timed non-determinism all strategies
        // coincide — this model's guards are delay-free.
        let p = SensorFilterParams { redundancy: 2, ..Default::default() };
        let net = sensor_filter_network(&p);
        let prop = TimedReach::new(Goal::expr(goal_expr(&net)), 2.0);
        let exact = analytic_failure_probability(&p, 2.0);
        for kind in StrategyKind::ALL {
            let cfg = SimConfig::default()
                .with_accuracy(Accuracy::new(0.04, 0.1).unwrap())
                .with_strategy(kind);
            let r = analyze(&net, &prop, &cfg).unwrap();
            assert!(
                (r.probability() - exact).abs() < 0.05,
                "strategy {kind}: {} vs {exact}",
                r.probability()
            );
        }
    }

    #[test]
    fn state_space_grows_exponentially() {
        let count = |n: usize| {
            let p = SensorFilterParams { redundancy: n, ..Default::default() };
            let net = sensor_filter_network(&p);
            let failed = net.var_id(GOAL_VAR).unwrap();
            let goal = move |s: &NetState| s.nu.get(failed).map(|v| v.as_bool().unwrap_or(false));
            slim_ctmc::explore(&net, &goal, &slim_ctmc::ExploreConfig::default()).unwrap().states
        };
        let s2 = count(2);
        let s3 = count(3);
        let s4 = count(4);
        assert!(s3 > 2 * s2, "s2={s2} s3={s3}");
        assert!(s4 > 2 * s3, "s3={s3} s4={s4}");
    }

    #[test]
    fn analytic_formula_sane() {
        let p = SensorFilterParams::default();
        assert_eq!(analytic_failure_probability(&p, 0.0), 0.0);
        let p_small = analytic_failure_probability(&p, 0.5);
        let p_big = analytic_failure_probability(&p, 5.0);
        assert!(p_small < p_big && p_big < 1.0);
        let more = SensorFilterParams { redundancy: 4, ..p };
        assert!(
            analytic_failure_probability(&more, 2.0) < analytic_failure_probability(&p, 2.0),
            "more redundancy, lower failure probability"
        );
    }
}
